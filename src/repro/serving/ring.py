"""Replicated shard ring: leader/follower session state + hedged reads.

The paper's deployment (§4.1) pins every session to one pod via
Kubernetes session affinity. That is the availability weak spot of the
design: kill the pod and its evolving sessions are gone until WAL replay,
and a single straggler pod owns the p99 of every session routed to it.
This module adds the tail-at-scale ingredients on top of the existing
serving stack:

* :class:`HashRing` — a consistent-hash ring with virtual nodes. Each pod
  projects ``virtual_nodes`` points onto a 64-bit circle; a session key
  is owned by the first point at or clockwise of its hash. Adding or
  removing a pod moves only the ring segments that pod's points delimit —
  the minimal-movement property the rebalancer and the router build on.
* :class:`ReplicationPolicy` — per-shard replication factor R: the first
  R distinct pods clockwise of a key form its *preference list*; the
  first is the **leader**, the rest are **followers**.
* :class:`RingCoordinator` — the request path over the ring. Session
  appends execute on the leader and replicate to followers by shipping
  the leader's :class:`~repro.serving.session_store.SessionStore`
  replication log tail (WAL-encoded records, acked byte offsets — the
  same machinery that makes crash recovery work). ``kill_pod`` on a
  leader promotes the in-sync follower at the next request for the key,
  with zero acknowledged clicks lost.

**Hedged reads.** If the leader's prediction has not come back within a
deadline-derived hedge delay (``remaining budget × hedge_fraction``, the
classic tail-at-scale recipe), the same prediction fires at a follower
and the first answer wins. On :class:`~repro.testing.clock.VirtualClock`
the race is resolved arithmetically — the effective service time is
``min(leader_elapsed, hedge_delay + follower_elapsed)`` — so hedging is
bit-deterministic under a seed.

**Fencing.** A follower cut off from its leader (``NetworkPartition``)
stops receiving the tail; every key appended during the partition is
marked *stale* on that link. A stale follower is never hedged to for a
stale key, and if it is promoted (leader dies while partitioned) its
stale sessions are dropped before it serves — a partitioned replica may
lose state (that is the paper's accepted trade-off) but never serves a
stale prefix as if it were current.
"""

from __future__ import annotations

import bisect
import hashlib
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.core.contracts import happens_before
from repro.core.deadline import Clock, Deadline
from repro.core.locking import guarded_by
from repro.core.types import ItemId
from repro.serving.resilience import hedge_delay_seconds
from repro.serving.server import (
    RecommendationRequest,
    RecommendationResponse,
    RecommendationServer,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (app imports ring)
    from repro.serving.app import ServingCluster

#: Points each pod projects onto the ring. More points = smoother load
#: split and smaller moved segments per membership change, at O(V·P·logVP)
#: ring-maintenance cost. 128 keeps the per-pod load within ~±20% of even.
DEFAULT_VIRTUAL_NODES = 128

_RING_BITS = 64
RING_SIZE = 1 << _RING_BITS


def _hash64(data: str) -> int:
    digest = hashlib.blake2b(data.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Consistent-hash ring with virtual nodes over a 64-bit keyspace.

    A key belongs to the pod owning the first virtual point at or
    clockwise of ``hash(key)``. The *preference list* of a key is the
    first ``n`` distinct pods encountered clockwise — replica placement
    à la Dynamo, so replicas of one shard land on distinct pods.
    """

    def __init__(self, virtual_nodes: int = DEFAULT_VIRTUAL_NODES) -> None:
        if virtual_nodes < 1:
            raise ValueError("virtual_nodes must be >= 1")
        self.virtual_nodes = virtual_nodes
        self._pods: list[str] = []  # insertion-ordered, for introspection
        self._points: list[tuple[int, str]] = []  # sorted (point, pod_id)

    # -- membership -----------------------------------------------------------

    @property
    def pods(self) -> list[str]:
        """Registered pod ids, insertion-ordered."""
        return list(self._pods)

    def __len__(self) -> int:
        return len(self._pods)

    def __contains__(self, pod_id: str) -> bool:
        return pod_id in self._pods

    def _pod_points(self, pod_id: str) -> list[int]:
        return [
            _hash64(f"{pod_id}#{replica}")
            for replica in range(self.virtual_nodes)
        ]

    def add_pod(self, pod_id: str) -> None:
        """Project the pod's virtual points onto the ring."""
        if pod_id in self._pods:
            raise ValueError(f"pod {pod_id!r} already registered")
        self._pods.append(pod_id)
        for point in self._pod_points(pod_id):
            bisect.insort(self._points, (point, pod_id))

    def remove_pod(self, pod_id: str) -> None:
        """Withdraw the pod's points; its segments fall to their clockwise
        successors, and no other segment moves."""
        if pod_id not in self._pods:
            raise ValueError(f"pod {pod_id!r} is not registered")
        self._pods.remove(pod_id)
        self._points = [
            entry for entry in self._points if entry[1] != pod_id
        ]

    # -- lookup ---------------------------------------------------------------

    def key_point(self, session_key: str) -> int:
        """Where the key lands on the circle."""
        return _hash64(session_key)

    def primary(self, session_key: str) -> str:
        """The leader pod for this key."""
        return self.preference_list(session_key, 1)[0]

    def preference_list(self, session_key: str, n: int) -> list[str]:
        """The first ``n`` distinct pods clockwise of the key's point.

        Fewer than ``n`` pods registered returns them all; an empty ring
        raises ``RuntimeError`` (the router's no-pods contract).
        """
        if not self._pods:
            raise RuntimeError("no pods registered")
        point = _hash64(session_key)
        start = bisect.bisect_left(self._points, (point, ""))
        prefs: list[str] = []
        total = len(self._points)
        for step in range(total):
            _, pod_id = self._points[(start + step) % total]
            if pod_id not in prefs:
                prefs.append(pod_id)
                if len(prefs) == n:
                    break
        return prefs

    # -- introspection --------------------------------------------------------

    def owned_fraction(self, pod_id: str) -> float:
        """Fraction of the keyspace whose *primary* is this pod.

        This is exactly the expected fraction of sessions that move when
        the pod joins or leaves — the bound the minimal-movement property
        test asserts against.
        """
        if pod_id not in self._pods:
            raise ValueError(f"pod {pod_id!r} is not registered")
        if len(self._pods) == 1:
            return 1.0
        owned = 0
        total = len(self._points)
        for index, (point, owner) in enumerate(self._points):
            if owner != pod_id:
                continue
            prev_point = self._points[index - 1][0]
            # Arc (prev_point, point], wrapping at index 0.
            owned += (point - prev_point) % RING_SIZE
        return owned / RING_SIZE


@dataclass(frozen=True)
class ReplicationPolicy:
    """Knobs of the replicated ring (defaults match the paper's 50 ms SLA)."""

    #: copies per shard: one leader + R-1 followers. 1 disables
    #: replication (ring routing and rebalancing still apply).
    replication_factor: int = 2
    #: virtual points per pod on the ring.
    virtual_nodes: int = DEFAULT_VIRTUAL_NODES
    #: fire a follower read when the leader is slower than the hedge delay.
    hedge_enabled: bool = True
    #: hedge delay = remaining budget × this fraction. 0.25 of a fresh
    #: 50 ms budget fires at 12.5 ms — late enough to spare followers the
    #: common case, early enough to beat a 200 ms straggler by 10x.
    hedge_fraction: float = 0.25
    #: request budget used when the caller did not bring a deadline.
    budget_ms: float = 50.0

    def __post_init__(self) -> None:
        if self.replication_factor < 1:
            raise ValueError("replication_factor must be >= 1")
        if self.virtual_nodes < 1:
            raise ValueError("virtual_nodes must be >= 1")
        if not 0.0 < self.hedge_fraction < 1.0:
            raise ValueError("hedge_fraction must be in (0, 1)")
        if self.budget_ms <= 0.0:
            raise ValueError("budget_ms must be > 0")


@dataclass
class ReplicationLink:
    """Leader→follower shipping state for one ordered pod pair."""

    leader_id: str
    follower_id: str
    #: byte offset in the leader's replication log the follower has
    #: applied; the next ship sends ``tail_bytes(acked_offset)``.
    acked_offset: int = 0
    #: True while a NetworkPartition cuts this link: nothing ships.
    partitioned: bool = False
    #: keys appended at the leader while the link was cut. The follower's
    #: copy of these is a stale prefix — fenced from hedges and dropped
    #: on promotion until the link heals and the tail catches up.
    stale_keys: set[str] = field(default_factory=set)

    def lag(self, leader_offset: int) -> int:
        return max(0, leader_offset - self.acked_offset)


@happens_before("update_session", "predict")
@guarded_by(
    "_lock",
    "hedges_fired",
    "hedge_wins",
    "fenced_hedges",
    "fenced_sessions",
    "failovers",
    "rebalanced_sessions",
    "drained_sessions",
)
class RingCoordinator:
    """The replicated request path over a :class:`ServingCluster`'s ring.

    The coordinator owns no session state itself: leaders and followers
    are ordinary :class:`RecommendationServer` pods, and all state flows
    through their :class:`~repro.serving.session_store.SessionStore`
    replication logs. What the coordinator holds is the *link* state
    (acked offsets, partition flags, stale-key fences) and the tail
    counters exported at ``/metrics``.
    """

    def __init__(
        self,
        cluster: "ServingCluster",
        policy: ReplicationPolicy,
        perf_clock: Clock | None = None,
    ) -> None:
        self._cluster = cluster
        self.policy = policy
        self._links: dict[tuple[str, str], ReplicationLink] = {}
        self._lock = threading.Lock()
        # Injectable so hedge races resolve on virtual time in simulation.
        self._perf: Clock = (
            perf_clock if perf_clock is not None else time.perf_counter
        )
        self.hedges_fired = 0
        self.hedge_wins = 0
        self.fenced_hedges = 0
        self.fenced_sessions = 0
        self.failovers = 0
        self.rebalanced_sessions = 0
        self.drained_sessions = 0

    # -- link state -----------------------------------------------------------

    def _link(self, leader_id: str, follower_id: str) -> ReplicationLink:
        key = (leader_id, follower_id)
        link = self._links.get(key)
        if link is None:
            # A fresh link acks from offset 0, so the first ship replays
            # the leader's snapshot + full log: a (re)joined follower
            # catches up without a dedicated bootstrap path.
            link = ReplicationLink(leader_id, follower_id)
            self._links[key] = link
        return link

    def _drop_links(self, pod_id: str) -> None:
        for key in [k for k in self._links if pod_id in k]:
            del self._links[key]

    def partition(self, pod_a: str, pod_b: str) -> None:
        """Cut the replication link between two pods (both directions)."""
        for leader_id, follower_id in ((pod_a, pod_b), (pod_b, pod_a)):
            self._link(leader_id, follower_id).partitioned = True

    def heal_partition(self, pod_a: str, pod_b: str) -> None:
        """Restore the link; the next append ships the catch-up tail."""
        for key in ((pod_a, pod_b), (pod_b, pod_a)):
            link = self._links.get(key)
            if link is not None:
                link.partitioned = False

    # -- membership / failover ------------------------------------------------

    def live_preferences(self, session_key: str) -> list[str]:
        """The key's preference list over *live* pods, healing the ring.

        A dead pod discovered here is removed from the ring (lazy
        healing, as the seed's ``route_live`` did). When the dead pod was
        the key's leader, the next live pod in the preference list is
        promoted; if its link to the dead leader had fenced stale keys,
        those sessions are dropped before the promoted pod serves.
        """
        cluster = self._cluster
        router = cluster.router
        prefs = router.preference_list(
            session_key, self.policy.replication_factor
        )
        while any(pod_id not in cluster.pods for pod_id in prefs):
            dead = next(p for p in prefs if p not in cluster.pods)
            was_leader = dead == prefs[0]
            router.remove_pod(dead)
            cluster.rerouted_requests += 1
            prefs = router.preference_list(
                session_key, self.policy.replication_factor
            )
            if was_leader:
                with self._lock:
                    self.failovers += 1
                promoted = prefs[0]
                if promoted in cluster.pods:
                    self._fence_promoted(dead, promoted)
            self._drop_links(dead)
        return prefs

    def _fence_promoted(self, dead_leader: str, promoted: str) -> None:
        """Drop the promoted follower's stale sessions (fencing rule).

        Keys the dead leader appended while its link to ``promoted`` was
        partitioned exist on the follower only as a stale prefix. Serving
        that prefix as current state would silently rewind the session,
        so the copy is dropped: the session restarts empty, which is
        honest data loss instead of wrong data.
        """
        link = self._links.get((dead_leader, promoted))
        if link is None or not link.stale_keys:
            return
        store = self._cluster.pods[promoted].sessions
        for stale_key in sorted(link.stale_keys):
            if store.drop_session(stale_key):
                with self._lock:
                    self.fenced_sessions += 1
        link.stale_keys.clear()

    # -- replication ----------------------------------------------------------

    def _owned_by(self, follower_id: str) -> Callable[[str], bool]:
        router = self._cluster.router
        factor = self.policy.replication_factor

        def owns(session_key: str) -> bool:
            return follower_id in router.preference_list(session_key, factor)

        return owns

    def _replicate(self, leader_id: str, session_key: str) -> None:
        """Ship the leader's log tail to each live follower of the key."""
        cluster = self._cluster
        leader = cluster.pods[leader_id]
        prefs = cluster.router.preference_list(
            session_key, self.policy.replication_factor
        )
        for follower_id in prefs[1:]:
            follower = cluster.pods.get(follower_id)
            if follower is None:
                continue  # dead follower heals lazily at its next lookup
            link = self._link(leader_id, follower_id)
            if link.partitioned:
                link.stale_keys.add(session_key)
                continue
            tail = leader.sessions.tail_bytes(link.acked_offset)
            if tail:
                follower.sessions.apply_tail(
                    tail, key_filter=self._owned_by(follower_id)
                )
            link.acked_offset = leader.sessions.replication_offset
            # Fully caught up: everything appended during any earlier
            # partition has now shipped, so the fence lifts.
            link.stale_keys.clear()

    # -- request path ---------------------------------------------------------

    def handle(
        self,
        request: RecommendationRequest,
        deadline: Deadline | None = None,
    ) -> RecommendationResponse:
        """Serve one request through the ring: leader write, replicate,
        predict with a deadline-derived hedge against a follower.

        The hedge race is resolved arithmetically so it is exact on
        virtual clocks: the hedged response costs
        ``hedge_delay + follower_elapsed`` (the follower started late),
        and whichever of that and ``leader_elapsed`` is smaller is the
        response the caller would have seen first.
        """
        if deadline is None:
            deadline = Deadline(self.policy.budget_ms / 1000.0, clock=self._perf)
        cluster = self._cluster
        perf = self._perf
        prefs = self.live_preferences(request.session_key)
        leader = cluster.pods[prefs[0]]

        started = perf()
        visible = leader.update_session(request)
        if request.consent:
            self._replicate(prefs[0], request.session_key)
        store_done = perf()

        # The hedge delay is fixed *before* the leader runs — it models
        # the timer armed when the request is dispatched.
        hedge_delay = hedge_delay_seconds(deadline, self.policy.hedge_fraction)
        items, degraded, stage = leader.predict(
            visible, request.how_many, deadline=deadline
        )
        leader_elapsed = perf() - store_done
        winner = leader
        effective = leader_elapsed

        if (
            self.policy.hedge_enabled
            and len(prefs) > 1
            and leader_elapsed > hedge_delay
        ):
            follower_id = self._hedge_target(
                prefs[0], prefs[1:], request.session_key
            )
            if follower_id is not None:
                with self._lock:
                    self.hedges_fired += 1
                follower = cluster.pods[follower_id]
                hedge_started = perf()
                hedged = follower.predict(
                    visible, request.how_many, deadline=deadline
                )
                hedged_elapsed = hedge_delay + (perf() - hedge_started)
                if hedged_elapsed < leader_elapsed:
                    with self._lock:
                        self.hedge_wins += 1
                    items, degraded, stage = hedged
                    winner = follower
                    effective = hedged_elapsed

        elapsed = (store_done - started) + effective
        winner.record_service(elapsed)
        return RecommendationResponse(
            session_key=request.session_key,
            items=tuple(items),
            served_by=winner.pod_id,
            service_seconds=elapsed,
            degraded=degraded,
            served_stage=stage,
        )

    def _hedge_target(
        self, leader_id: str, follower_ids: list[str], session_key: str
    ) -> str | None:
        """First live follower safe to serve this key, honouring fences."""
        for follower_id in follower_ids:
            if follower_id not in self._cluster.pods:
                continue
            link = self._links.get((leader_id, follower_id))
            if link is not None and (
                link.partitioned or session_key in link.stale_keys
            ):
                with self._lock:
                    self.fenced_hedges += 1
                continue
            return follower_id
        return None

    # -- rebalancing ----------------------------------------------------------

    def rebalance(self) -> int:
        """Move session copies to match the current ring (pod join path).

        For every live session, the longest copy held anywhere is
        installed on preference-list members that lack it (snapshot +
        catch-up in one shot, since replication records are full-value
        puts), and copies on pods outside the preference list are
        dropped. Only keys whose preference list actually changed do any
        work — the consistent-hash ring guarantees that is just the keys
        in moved segments. Returns the number of copies installed.
        """
        cluster = self._cluster
        router = cluster.router
        if not router.pods:
            return 0
        holders = {
            pod_id: server.sessions.as_dict()
            for pod_id, server in cluster.pods.items()
        }
        moved = 0
        all_keys: set[str] = set()
        for sessions in holders.values():
            all_keys.update(sessions)
        for session_key in sorted(all_keys):
            prefs = [
                pod_id
                for pod_id in router.preference_list(
                    session_key, self.policy.replication_factor
                )
                if pod_id in cluster.pods
            ]
            best: list[ItemId] = []
            for sessions in holders.values():
                items = sessions.get(session_key)
                if items is not None and len(items) > len(best):
                    best = items
            for pod_id in prefs:
                current = holders[pod_id].get(session_key)
                if current is None or len(current) < len(best):
                    cluster.pods[pod_id].sessions.put_session(session_key, best)
                    moved += 1
            for pod_id, sessions in holders.items():
                if session_key in sessions and pod_id not in prefs:
                    cluster.pods[pod_id].sessions.drop_session(session_key)
        # Rebase every store's replication log onto its post-rebalance
        # live state. Without this, a fresh link's full-log resync would
        # replay pre-rebalance records — placement drops and stale puts
        # for keys that have since moved and advanced on another pod —
        # over the new owner's authoritative copy.
        for server in cluster.pods.values():
            server.sessions.snapshot()
        with self._lock:
            self.rebalanced_sessions += moved
        return moved

    def decommission(self, pod_id: str) -> int:
        """Graceful drain for planned scale-down (runs *before* deletion).

        The pod is taken off the ring first, then every session it holds
        is handed to the key's new preference-list members that lack an
        equally long copy. Only after the drain does the caller close the
        store with ``delete_wal=True`` — the drain-then-delete ordering
        the decommission regression test pins. Returns handed-off copies.
        """
        cluster = self._cluster
        server = cluster.pods[pod_id]
        if pod_id in cluster.router.pods:
            cluster.router.remove_pod(pod_id)
        drained = 0
        sessions = server.sessions.as_dict()
        for session_key in sorted(sessions):
            items = sessions[session_key]
            if not cluster.router.pods:
                break
            for target_id in cluster.router.preference_list(
                session_key, self.policy.replication_factor
            ):
                target = cluster.pods.get(target_id)
                if target is None or target_id == pod_id:
                    continue
                existing = target.sessions.get_session(session_key)
                if existing is None or len(existing) < len(items):
                    target.sessions.put_session(session_key, items)
                    drained += 1
        self._drop_links(pod_id)
        with self._lock:
            self.drained_sessions += drained
        return drained

    # -- introspection --------------------------------------------------------

    def info(self) -> dict:
        """Ring state for ``/metrics``, ``/healthz`` and the serve CLI."""
        cluster = self._cluster
        router = cluster.router
        factor = self.policy.replication_factor
        leader_sessions = {pod_id: 0 for pod_id in cluster.pods}
        follower_sessions = {pod_id: 0 for pod_id in cluster.pods}
        if router.pods:
            for pod_id, server in cluster.pods.items():
                for session_key in server.sessions.session_keys():
                    prefs = router.preference_list(session_key, factor)
                    if prefs[0] == pod_id:
                        leader_sessions[pod_id] += 1
                    elif pod_id in prefs:
                        follower_sessions[pod_id] += 1
        lags: dict[str, int] = {}
        partitioned: list[str] = []
        for (leader_id, follower_id), link in sorted(self._links.items()):
            leader = cluster.pods.get(leader_id)
            if leader is None:
                continue
            label = f"{leader_id}->{follower_id}"
            lags[label] = link.lag(leader.sessions.replication_offset)
            if link.partitioned:
                partitioned.append(label)
        with self._lock:
            counters = {
                "hedges_fired": self.hedges_fired,
                "hedge_wins": self.hedge_wins,
                "fenced_hedges": self.fenced_hedges,
                "fenced_sessions": self.fenced_sessions,
                "failovers": self.failovers,
                "rebalanced_sessions": self.rebalanced_sessions,
                "drained_sessions": self.drained_sessions,
            }
        return {
            "enabled": True,
            "replication_factor": factor,
            "virtual_nodes": self.policy.virtual_nodes,
            "hedge_enabled": self.policy.hedge_enabled,
            "hedge_fraction": self.policy.hedge_fraction,
            "ring_pods": router.pods,
            "leader_sessions": leader_sessions,
            "follower_sessions": follower_sessions,
            "replication_lag": lags,
            "max_replication_lag": max(lags.values(), default=0),
            "partitioned_links": partitioned,
            **counters,
        }
