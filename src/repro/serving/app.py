"""The Serenade application: a routed cluster of stateful pods (Figure 1).

``ServingCluster`` wires the sticky-session router to a set of
:class:`RecommendationServer` pods that each hold a replica of the session
similarity index. It is the in-process equivalent of the Kubernetes
deployment: the shop frontend calls :meth:`handle`, the router picks the
pod owning the session, and the pod answers from machine-local state.

Two batch-engine integrations sit on top of the Figure 1 path:

* ``cache_size > 0`` wraps every pod's recommender in a
  :class:`~repro.core.batch.BatchPredictionEngine` so the single-query
  path answers hot sessions from the LRU result cache;
* :meth:`handle_batch` serves whole batches of raw sessions (offline
  consumers: email campaigns, cache warmers, evaluation replays) through
  a cluster-level engine, bypassing the sticky router and the per-user
  session stores.

SLA guardrails (:mod:`repro.serving.resilience`) are opt-in via a
:class:`~repro.serving.resilience.ResiliencePolicy`:

* every pod's recommender is wrapped in a deadline-budgeted
  :class:`~repro.serving.resilience.ResilientRecommender` with a fallback
  chain and per-stage circuit breakers;
* :meth:`handle` runs behind an
  :class:`~repro.serving.resilience.AdmissionController` that sheds
  oldest-first with :class:`~repro.serving.resilience.Overloaded` (a 429)
  when the cluster is saturated;
* requests routed to a pod that died without deregistering are re-routed
  over the surviving pods (the hash ring is healed lazily, the way a
  health check would);
* with a ``wal_dir``, each pod's session store writes a WAL and a
  restarted pod (:meth:`restart_pod`) recovers its evolving sessions.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.core.batch import BatchPredictionEngine
from repro.core.colindex import ColumnarSessionIndex, VMISKNNColumnar
from repro.core.index import SessionIndex
from repro.core.predictor import SessionRecommender
from repro.core.types import ItemId, ScoredItem
from repro.core.vmis import VMISKNN
from repro.kvstore.store import Clock
from repro.serving.resilience import (
    AdmissionController,
    CircuitBreaker,
    FallbackChain,
    FallbackStage,
    Overloaded,
    ResiliencePolicy,
    ResilientRecommender,
    StaticRecommender,
    popularity_from_index,
)
from repro.serving.ring import ReplicationPolicy, RingCoordinator
from repro.serving.router import StickySessionRouter
from repro.serving.rules import BusinessRules
from repro.serving.server import (
    RecommendationRequest,
    RecommendationResponse,
    RecommendationServer,
)

RecommenderFactory = Callable[[], SessionRecommender]


class ServingCluster:
    """A fleet of stateful recommendation servers behind sticky routing."""

    def __init__(
        self,
        recommender_factory: RecommenderFactory,
        num_pods: int = 2,
        rules: BusinessRules | None = None,
        clock: Clock | None = None,
        record_service_times: bool = True,
        cache_size: int = 0,
        batch_workers: int = 4,
        resilience: ResiliencePolicy | None = None,
        fallback_factory: RecommenderFactory | None = None,
        static_items: Sequence[ScoredItem] = (),
        wal_dir: str | Path | None = None,
        index_version: str | None = None,
        perf_clock: Clock | None = None,
        replication: ReplicationPolicy | None = None,
    ) -> None:
        """Build the cluster.

        Args:
            recommender_factory: called once per pod — every pod holds its
                *own replica* of the index, the paper's replication choice.
            num_pods: pod count (the production deployment uses two).
            rules: business rules shared by all pods.
            clock: injectable time source for the session TTLs.
            cache_size: per-pod LRU result cache capacity on the
                single-query path; 0 disables caching (seed behaviour).
            batch_workers: thread-pool size of the ``handle_batch`` engine.
            resilience: enable the SLA guardrail layer with this policy;
                ``None`` keeps the raw path (seed behaviour).
            fallback_factory: builds the mid-chain degraded-mode model per
                pod (e.g. popularity); only used when ``resilience`` is on.
            static_items: the terminal static ranked list; only used when
                ``resilience`` is on.
            wal_dir: directory for per-pod session WALs; ``None`` keeps
                sessions memory-only (state dies with the pod, §4.2).
            index_version: label of the index version the factory builds
                (e.g. a registry version id); surfaced per pod in
                ``rollout_info()`` and ``/metrics``.
            perf_clock: injectable time source for service-time
                measurement and the guardrail machinery (deadlines,
                breakers, admission control). ``None`` keeps real
                monotonic clocks; the deterministic simulation layer
                (:mod:`repro.testing.simulation`) injects a
                :class:`~repro.testing.clock.VirtualClock` here.
            replication: enable the replicated shard ring with this
                policy: each session gets one leader and R-1 followers on
                the consistent-hash ring, leader appends tail-ship to the
                followers, leader death promotes an in-sync follower, and
                slow leaders are hedged against a follower within the
                deadline budget. ``None`` keeps single-copy sticky
                routing (seed behaviour).
        """
        if num_pods < 1:
            raise ValueError("num_pods must be >= 1")
        self._factory = recommender_factory
        self.replication = replication
        self.router = (
            StickySessionRouter(virtual_nodes=replication.virtual_nodes)
            if replication is not None
            else StickySessionRouter()
        )
        self.pods: dict[str, RecommendationServer] = {}
        self._cache_size = cache_size
        self._batch_workers = batch_workers
        self._batch_engine: BatchPredictionEngine | None = None
        self.resilience = resilience
        self._fallback_factory = fallback_factory
        self._static_items = tuple(static_items)
        self._perf_clock = perf_clock
        self._guard_clock: Clock = (
            perf_clock if perf_clock is not None else time.monotonic
        )
        self.wal_dir = Path(wal_dir) if wal_dir is not None else None
        if self.wal_dir is not None:
            self.wal_dir.mkdir(parents=True, exist_ok=True)
        self.admission: AdmissionController | None = (
            AdmissionController(resilience.queue_capacity, clock=self._guard_clock)
            if resilience is not None
            else None
        )
        self.recovered_sessions = 0
        self.rerouted_requests = 0
        #: optional streaming ingestion pipeline (see repro.streaming);
        #: attached via :meth:`attach_streaming`, surfaced in /healthz
        #: and /metrics, and allowed to resize admission under lag.
        self.streaming: Any | None = None
        # -- index lifecycle state (see repro.index.lifecycle.rollout) --
        #: the committed version label: what new/restarted pods load.
        self.index_version = index_version
        #: which version each live pod is actually serving.
        self.pod_versions: dict[str, str | None] = {}
        #: completed automatic rollbacks (exported at /metrics).
        self.rollback_count = 0
        #: "idle" | "canary" | "rolling" | "completed" | "rolled_back".
        self.rollout_state = "idle"
        self._rules = rules
        self._clock = clock
        self._record_service_times = record_service_times
        #: the replicated-ring request coordinator (None = seed routing).
        self.coordinator: RingCoordinator | None = (
            RingCoordinator(self, replication, perf_clock=perf_clock)
            if replication is not None
            else None
        )
        for pod_number in range(num_pods):
            self._spawn_pod(f"pod-{pod_number}", rules, clock, record_service_times)

    @property
    def committed_factory(self) -> RecommenderFactory:
        """The factory new and restarted pods currently build from."""
        return self._factory

    def _pod_recommender(
        self, base_factory: RecommenderFactory | None = None
    ) -> SessionRecommender:
        """One pod's recommender: cache-wrapped, then guardrail-wrapped."""
        recommender = (base_factory or self._factory)()
        if self._cache_size > 0:
            recommender = BatchPredictionEngine(
                recommender, num_workers=0, cache_size=self._cache_size
            )
        if self.resilience is not None:
            recommender = ResilientRecommender(
                self._build_chain(recommender),
                self.resilience,
                clock=self._guard_clock,
            )
        return recommender

    def _build_chain(self, primary: SessionRecommender) -> FallbackChain:
        policy = self.resilience
        assert policy is not None
        clock = self._guard_clock
        stages = [
            FallbackStage(
                "primary", primary, CircuitBreaker.from_policy(policy, clock)
            )
        ]
        if self._fallback_factory is not None:
            stages.append(
                FallbackStage(
                    "fallback",
                    self._fallback_factory(),
                    CircuitBreaker.from_policy(policy, clock),
                )
            )
        return FallbackChain(
            stages,
            terminal=StaticRecommender(self._static_items),
            reserve_seconds=policy.fallback_reserve_ms / 1000.0,
            stage_workers=policy.stage_workers,
            clock=clock,
            inline_stages=policy.inline_stages,
        )

    def _pod_wal_path(self, pod_id: str) -> str | None:
        if self.wal_dir is None:
            return None
        return str(self.wal_dir / f"{pod_id}.wal")

    def _spawn_pod(
        self,
        pod_id: str,
        rules: BusinessRules | None,
        clock: Clock | None,
        record_service_times: bool,
    ) -> None:
        server = RecommendationServer(
            pod_id,
            self._pod_recommender(),
            rules=rules,
            clock=clock,
            record_service_times=record_service_times,
            wal_path=self._pod_wal_path(pod_id),
            perf_clock=self._perf_clock,
            replicate_sessions=self.replication is not None,
            # Chaos stalls must burn *virtual* time when a virtual perf
            # clock is injected, so the hedge race stays deterministic.
            stall_sleep=getattr(self._perf_clock, "sleep", None),
        )
        self.pods[pod_id] = server
        self.pod_versions[pod_id] = self.index_version
        # A crashed pod may have died without deregistering; its ring entry
        # is still there and must not be duplicated on restart.
        if pod_id not in self.router.pods:
            self.router.add_pod(pod_id)

    @classmethod
    def with_index(
        cls,
        index: SessionIndex,
        num_pods: int = 2,
        m: int = 500,
        k: int = 100,
        engine: str = "columnar",
        **kwargs: Any,
    ) -> "ServingCluster":
        """Cluster of VMIS-kNN pods sharing one prebuilt index object.

        In production every pod loads its own copy; in-process we can share
        the immutable index structure safely. ``engine`` selects the
        scorer: ``"columnar"`` (default) converts the heap index into a
        frozen :class:`~repro.core.colindex.ColumnarSessionIndex` once and
        serves through the vectorized scorer; ``"heap"`` keeps the
        original per-item-heap :class:`~repro.core.vmis.VMISKNN` — the
        differential oracle, bit-identical by contract. When a
        :class:`ResiliencePolicy` is passed, the fallback chain is derived
        from the same index: VMIS-kNN → index popularity → static top list.
        """
        if kwargs.get("resilience") is not None:
            popularity = popularity_from_index(index)
            kwargs.setdefault("fallback_factory", lambda: popularity)
            kwargs.setdefault(
                "static_items", popularity.recommend([], how_many=50)
            )
        if engine == "columnar":
            columnar = ColumnarSessionIndex.from_session_index(index)
            factory: RecommenderFactory = lambda: VMISKNNColumnar(
                columnar, m=m, k=k, exclude_current_items=True
            )
        elif engine == "heap":
            factory = lambda: VMISKNN(
                index, m=m, k=k, exclude_current_items=True
            )
        else:
            raise ValueError(
                f"unknown engine {engine!r}; expected 'columnar' or 'heap'"
            )
        return cls(factory, num_pods=num_pods, **kwargs)

    # -- request path --------------------------------------------------------

    def route_live(self, session_key: str) -> str:
        """The live pod owning this session, healing the ring as needed.

        A pod that died abruptly (machine failure) never deregistered; the
        first request routed to it discovers the death, removes the stale
        ring entry and re-routes — rendezvous hashing guarantees only the
        dead pod's sessions move.
        """
        pod_id = self.router.route(session_key)
        while pod_id not in self.pods:
            self.router.remove_pod(pod_id)
            self.rerouted_requests += 1
            pod_id = self.router.route(session_key)
        return pod_id

    def _serve(self, request: RecommendationRequest) -> RecommendationResponse:
        """Dispatch to the ring coordinator or the single-copy pod path."""
        if self.coordinator is not None:
            return self.coordinator.handle(request)
        return self.pods[self.route_live(request.session_key)].handle(request)

    def handle(self, request: RecommendationRequest) -> RecommendationResponse:
        """Route a frontend request to the owning pod and serve it.

        With guardrails on, the request first takes a slot in the bounded
        admission queue; if the cluster is saturated the oldest queued
        request (possibly this one) is shed with :class:`Overloaded`.
        """
        if self.admission is None:
            return self._serve(request)
        token = self.admission.submit(request.session_key)
        try:
            if token.shed:
                raise Overloaded()
            return self._serve(request)
        finally:
            self.admission.release(token)

    def handle_batch(
        self, sessions: Sequence[Sequence[ItemId]], how_many: int = 21
    ) -> list[list[ScoredItem]]:
        """Serve a batch of raw evolving sessions through the batch engine.

        Unlike :meth:`handle`, this does not touch per-user session state
        or business rules — it is the bulk prediction surface, returning
        one ranked list per input session in order.
        """
        return self.batch_engine().recommend_batch(sessions, how_many=how_many)

    def batch_engine(self) -> BatchPredictionEngine:
        """The lazily built cluster-level batch engine."""
        if self._batch_engine is None:
            self._batch_engine = BatchPredictionEngine(
                self._factory(),
                num_workers=self._batch_workers,
                cache_size=self._cache_size or 4096,
            )
        return self._batch_engine

    # -- failure injection / recovery ----------------------------------------

    def kill_pod(self, pod_id: str) -> RecommendationServer:
        """Abruptly kill a pod (machine failure).

        The pod is dropped without deregistering from the router — a dead
        machine does not announce its death — and without closing its
        session store, so buffered-but-unflushed state behaves exactly as
        a crash would leave it. Returns the dead server for inspection.
        """
        if pod_id not in self.pods:
            raise ValueError(f"cannot kill unknown pod {pod_id!r}")
        self.pod_versions.pop(pod_id, None)
        return self.pods.pop(pod_id)

    def restart_pod(self, pod_id: str) -> RecommendationServer:
        """Restart a killed pod on the same volume.

        With a ``wal_dir``, the fresh session store replays the pod's WAL
        and recovers every evolving session the crash did not lose;
        without one, the pod comes back empty (the paper's trade-off).
        Returns the new server; recovered sessions are counted on the
        cluster.
        """
        if pod_id in self.pods:
            raise ValueError(f"pod {pod_id!r} is already running")
        self._spawn_pod(pod_id, self._rules, self._clock, self._record_service_times)
        server = self.pods[pod_id]
        self.recovered_sessions += len(server.sessions)
        if self.coordinator is not None:
            # The pod's virtual points are back on the ring: move the
            # sessions in its segments onto it (snapshot + catch-up).
            self.coordinator.rebalance()
        return server

    def scale_to(self, num_pods: int) -> None:
        """Elastically add/remove pods. Planned scale-down is graceful:
        the pod deregisters and deletes its WAL. Without replication,
        sessions on removed pods are lost (the trade-off the paper accepts
        and discusses in §4.2); with the ring, scale-up triggers a
        minimal-movement rebalance and scale-down drains every session to
        its new owners *before* the WAL is deleted."""
        if num_pods < 1:
            raise ValueError("num_pods must be >= 1")
        current = len(self.pods)
        for pod_number in range(current, num_pods):
            self._spawn_pod(
                f"pod-{pod_number}",
                self._rules,
                self._clock,
                self._record_service_times,
            )
        if self.coordinator is not None and num_pods > current:
            self.coordinator.rebalance()
        for pod_number in range(num_pods, current):
            pod_id = f"pod-{pod_number}"
            if self.coordinator is not None:
                # Drain-then-delete: hand the WAL tail to the new owners
                # first, only then close and delete the store.
                self.coordinator.decommission(pod_id)
            else:
                self.router.remove_pod(pod_id)
            server = self.pods.pop(pod_id)
            self.pod_versions.pop(pod_id, None)
            server.sessions.close(delete_wal=True)
            self._close_recommender(server.recommender)

    def commit_index(
        self, recommender_factory: RecommenderFactory, version: str | None = None
    ) -> None:
        """Make ``recommender_factory`` the cluster's committed index.

        New pods (scale-up) and restarted pods build from the committed
        factory, so after a commit the fleet *converges* to this version
        regardless of kills and restarts mid-rollout. The cluster batch
        engine belongs to the previous index and is dropped.
        """
        self._factory = recommender_factory
        self.index_version = version
        if self._batch_engine is not None:
            self._batch_engine.close()
            self._batch_engine = None

    def swap_pod_recommender(
        self,
        pod_id: str,
        recommender_factory: RecommenderFactory | None = None,
        version: str | None = None,
    ) -> None:
        """Swap one pod onto a new index replica (one rollout step).

        The pod's result caches are invalidated with the swap (the old
        recommender is closed by ``replace_recommender``) — cached
        recommendations must not outlive the index they came from. With
        no explicit factory the committed one is used.
        """
        if pod_id not in self.pods:
            raise ValueError(f"cannot swap unknown pod {pod_id!r}")
        factory = recommender_factory or self._factory
        self.pods[pod_id].replace_recommender(self._pod_recommender(factory))
        self.pod_versions[pod_id] = (
            version if recommender_factory is not None else self.index_version
        )

    def rollout_index(
        self, recommender_factory: RecommenderFactory, version: str | None = None
    ) -> None:
        """Replicate a freshly built index to every pod (daily refresh).

        The all-at-once path: commit the factory and swap every pod.
        Cached results and the batch engine belong to the old index, so
        both are dropped — stale recommendations must not outlive it.
        For the canary-gated staged path, see
        :class:`repro.index.lifecycle.rollout.RolloutController`.
        """
        self.commit_index(recommender_factory, version)
        for pod_id in list(self.pods):
            self.swap_pod_recommender(pod_id)

    @staticmethod
    def _close_recommender(recommender: SessionRecommender) -> None:
        close = getattr(recommender, "close", None)
        if callable(close):
            close()

    # -- streaming ingestion -------------------------------------------------

    def attach_streaming(self, pipeline: Any) -> None:
        """Attach a :class:`~repro.streaming.pipeline.StreamingIndexer`.

        The pipeline's consumer lag then shows up in ``/metrics`` and
        ``/healthz``; when the cluster has an admission controller, the
        pipeline should have been built with ``admission=cluster.admission``
        so lag feeds backpressure into the serving path.
        """
        self.streaming = pipeline

    def streaming_info(self) -> dict:
        """Streaming ingestion health for ``/healthz`` and operators."""
        if self.streaming is None:
            return {"enabled": False}
        return {"enabled": True, **self.streaming.health()}

    # -- replication ring ----------------------------------------------------

    def partition(self, pod_a: str, pod_b: str) -> None:
        """Cut the replication link between two pods (NetworkPartition).

        Requests keep flowing to both pods; only leader→follower tail
        shipping stops, so the follower's copies of keys appended during
        the partition go stale and are fenced.
        """
        if self.coordinator is None:
            raise RuntimeError("partition requires a replicated ring")
        self.coordinator.partition(pod_a, pod_b)

    def heal_partition(self, pod_a: str, pod_b: str) -> None:
        """Restore a cut link; the next append ships the catch-up tail."""
        if self.coordinator is None:
            raise RuntimeError("heal_partition requires a replicated ring")
        self.coordinator.heal_partition(pod_a, pod_b)

    def ring_info(self) -> dict:
        """Replicated-ring state for ``/metrics``, ``/healthz``, operators."""
        if self.coordinator is None:
            return {"enabled": False}
        return self.coordinator.info()

    # -- introspection -------------------------------------------------------

    def rollout_info(self) -> dict:
        """Index lifecycle state for ``/metrics`` and operators.

        ``consistent`` is True when every live pod serves the committed
        version — the convergence condition the chaos tests assert after
        a rollout survives kills and rollbacks.
        """
        versions = {
            pod_id: self.pod_versions.get(pod_id)
            for pod_id in sorted(self.pods)
        }
        distinct = {version for version in versions.values()}
        return {
            "committed_version": self.index_version,
            "pod_versions": versions,
            "rollout_state": self.rollout_state,
            "rollback_count": self.rollback_count,
            "consistent": len(distinct) <= 1
            and (not distinct or distinct == {self.index_version}),
        }

    def cache_info(self) -> dict[str, float]:
        """Aggregated result-cache counters across pods and batch engine."""
        totals = {"hits": 0, "misses": 0, "size": 0, "maxsize": 0}
        engines = []
        for server in self.pods.values():
            recommender = server.recommender
            if isinstance(recommender, ResilientRecommender):
                recommender = recommender.primary
            if isinstance(recommender, BatchPredictionEngine):
                engines.append(recommender)
        if self._batch_engine is not None:
            engines.append(self._batch_engine)
        for engine in engines:
            info = engine.cache_info()
            for field in totals:
                totals[field] += info[field]
        lookups = totals["hits"] + totals["misses"]
        return {
            **totals,
            "hit_rate": totals["hits"] / lookups if lookups else 0.0,
        }

    def resilience_info(self) -> dict:
        """Aggregated guardrail counters across pods.

        Keys mirror the ``/metrics`` series: degraded/shed request counts,
        deadline timeouts, breaker states per pod and stage, WAL-recovered
        sessions and corrupt-session reads.
        """
        info = {
            "enabled": self.resilience is not None,
            "requests": 0,
            "degraded_requests": 0,
            "deadline_timeouts": 0,
            "stage_errors": 0,
            "breaker_short_circuits": 0,
            "shed_requests": (
                self.admission.shed_count if self.admission is not None else 0
            ),
            "rerouted_requests": self.rerouted_requests,
            "recovered_sessions": self.recovered_sessions,
            "corrupt_sessions": sum(
                server.sessions.corrupt_sessions for server in self.pods.values()
            ),
            "served_by_stage": {},
            "breaker_states": {},
        }
        for pod_id, server in sorted(self.pods.items()):
            recommender = server.recommender
            if not isinstance(recommender, ResilientRecommender):
                continue
            pod_info = recommender.info()
            for key in (
                "requests",
                "degraded_requests",
                "deadline_timeouts",
                "stage_errors",
                "breaker_short_circuits",
            ):
                info[key] += pod_info[key]
            for stage, count in pod_info["served_by_stage"].items():
                info["served_by_stage"][stage] = (
                    info["served_by_stage"].get(stage, 0) + count
                )
            for stage, state in recommender.breaker_states().items():
                info["breaker_states"][f"{pod_id}/{stage}"] = state.value
        return info

    def total_requests(self) -> int:
        return sum(server.stats.requests for server in self.pods.values())

    def all_service_times(self) -> list[float]:
        """Service times across pods (for latency percentile reporting)."""
        times: list[float] = []
        for server in self.pods.values():
            times.extend(server.stats.service_times)
        return times
