"""The Serenade application: a routed cluster of stateful pods (Figure 1).

``ServingCluster`` wires the sticky-session router to a set of
:class:`RecommendationServer` pods that each hold a replica of the session
similarity index. It is the in-process equivalent of the Kubernetes
deployment: the shop frontend calls :meth:`handle`, the router picks the
pod owning the session, and the pod answers from machine-local state.

Two batch-engine integrations sit on top of the Figure 1 path:

* ``cache_size > 0`` wraps every pod's recommender in a
  :class:`~repro.core.batch.BatchPredictionEngine` so the single-query
  path answers hot sessions from the LRU result cache;
* :meth:`handle_batch` serves whole batches of raw sessions (offline
  consumers: email campaigns, cache warmers, evaluation replays) through
  a cluster-level engine, bypassing the sticky router and the per-user
  session stores.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.batch import BatchPredictionEngine
from repro.core.index import SessionIndex
from repro.core.predictor import SessionRecommender
from repro.core.types import ItemId, ScoredItem
from repro.core.vmis import VMISKNN
from repro.kvstore.store import Clock
from repro.serving.router import StickySessionRouter
from repro.serving.rules import BusinessRules
from repro.serving.server import (
    RecommendationRequest,
    RecommendationResponse,
    RecommendationServer,
)

RecommenderFactory = Callable[[], SessionRecommender]


class ServingCluster:
    """A fleet of stateful recommendation servers behind sticky routing."""

    def __init__(
        self,
        recommender_factory: RecommenderFactory,
        num_pods: int = 2,
        rules: BusinessRules | None = None,
        clock: Clock | None = None,
        record_service_times: bool = True,
        cache_size: int = 0,
        batch_workers: int = 4,
    ) -> None:
        """Build the cluster.

        Args:
            recommender_factory: called once per pod — every pod holds its
                *own replica* of the index, the paper's replication choice.
            num_pods: pod count (the production deployment uses two).
            rules: business rules shared by all pods.
            clock: injectable time source for the session TTLs.
            cache_size: per-pod LRU result cache capacity on the
                single-query path; 0 disables caching (seed behaviour).
            batch_workers: thread-pool size of the ``handle_batch`` engine.
        """
        if num_pods < 1:
            raise ValueError("num_pods must be >= 1")
        self._factory = recommender_factory
        self.router = StickySessionRouter()
        self.pods: dict[str, RecommendationServer] = {}
        self._cache_size = cache_size
        self._batch_workers = batch_workers
        self._batch_engine: BatchPredictionEngine | None = None
        for pod_number in range(num_pods):
            self._spawn_pod(f"pod-{pod_number}", rules, clock, record_service_times)
        self._rules = rules
        self._clock = clock
        self._record_service_times = record_service_times

    def _pod_recommender(self) -> SessionRecommender:
        """One pod's recommender, cache-wrapped when caching is on."""
        recommender = self._factory()
        if self._cache_size > 0:
            recommender = BatchPredictionEngine(
                recommender, num_workers=0, cache_size=self._cache_size
            )
        return recommender

    def _spawn_pod(
        self,
        pod_id: str,
        rules: BusinessRules | None,
        clock: Clock | None,
        record_service_times: bool,
    ) -> None:
        server = RecommendationServer(
            pod_id,
            self._pod_recommender(),
            rules=rules,
            clock=clock,
            record_service_times=record_service_times,
        )
        self.pods[pod_id] = server
        self.router.add_pod(pod_id)

    @classmethod
    def with_index(
        cls,
        index: SessionIndex,
        num_pods: int = 2,
        m: int = 500,
        k: int = 100,
        **kwargs,
    ) -> "ServingCluster":
        """Cluster of VMIS-kNN pods sharing one prebuilt index object.

        In production every pod loads its own copy; in-process we can share
        the immutable index structure safely.
        """
        return cls(
            lambda: VMISKNN(index, m=m, k=k, exclude_current_items=True),
            num_pods=num_pods,
            **kwargs,
        )

    def handle(self, request: RecommendationRequest) -> RecommendationResponse:
        """Route a frontend request to the owning pod and serve it."""
        pod_id = self.router.route(request.session_key)
        return self.pods[pod_id].handle(request)

    def handle_batch(
        self, sessions: Sequence[Sequence[ItemId]], how_many: int = 21
    ) -> list[list[ScoredItem]]:
        """Serve a batch of raw evolving sessions through the batch engine.

        Unlike :meth:`handle`, this does not touch per-user session state
        or business rules — it is the bulk prediction surface, returning
        one ranked list per input session in order.
        """
        return self.batch_engine().recommend_batch(sessions, how_many=how_many)

    def batch_engine(self) -> BatchPredictionEngine:
        """The lazily built cluster-level batch engine."""
        if self._batch_engine is None:
            self._batch_engine = BatchPredictionEngine(
                self._factory(),
                num_workers=self._batch_workers,
                cache_size=self._cache_size or 4096,
            )
        return self._batch_engine

    def cache_info(self) -> dict[str, float]:
        """Aggregated result-cache counters across pods and batch engine."""
        totals = {"hits": 0, "misses": 0, "size": 0, "maxsize": 0}
        engines = [
            server.recommender
            for server in self.pods.values()
            if isinstance(server.recommender, BatchPredictionEngine)
        ]
        if self._batch_engine is not None:
            engines.append(self._batch_engine)
        for engine in engines:
            info = engine.cache_info()
            for field in totals:
                totals[field] += info[field]
        lookups = totals["hits"] + totals["misses"]
        return {
            **totals,
            "hit_rate": totals["hits"] / lookups if lookups else 0.0,
        }

    def scale_to(self, num_pods: int) -> None:
        """Elastically add/remove pods (sessions on removed pods are lost,
        the trade-off the paper accepts and discusses in §4.2)."""
        if num_pods < 1:
            raise ValueError("num_pods must be >= 1")
        current = len(self.pods)
        for pod_number in range(current, num_pods):
            self._spawn_pod(
                f"pod-{pod_number}",
                self._rules,
                self._clock,
                self._record_service_times,
            )
        for pod_number in range(num_pods, current):
            pod_id = f"pod-{pod_number}"
            self.router.remove_pod(pod_id)
            del self.pods[pod_id]

    def rollout_index(self, recommender_factory: RecommenderFactory) -> None:
        """Replicate a freshly built index to every pod (daily refresh).

        Cached results and the batch engine belong to the old index, so
        both are dropped — stale recommendations must not outlive it.
        """
        self._factory = recommender_factory
        for server in self.pods.values():
            server.replace_recommender(self._pod_recommender())
        if self._batch_engine is not None:
            self._batch_engine.close()
            self._batch_engine = None

    def total_requests(self) -> int:
        return sum(server.stats.requests for server in self.pods.values())

    def all_service_times(self) -> list[float]:
        """Service times across pods (for latency percentile reporting)."""
        times: list[float] = []
        for server in self.pods.values():
            times.extend(server.stats.service_times)
        return times
