"""Operational metrics for the serving layer.

Serenade runs in production behind Kubernetes with istio sidecars; its
operators watch request rates, latency percentiles and core usage
(Figures 3b/3c are rendered from exactly these series). This module
provides the in-process metrics primitives the HTTP service exports:

* :class:`Counter` — monotonically increasing counts with labels;
* :class:`Histogram` — fixed-bucket latency histogram with quantile
  estimation (upper-bound interpolation, like Prometheus');
* :class:`MetricsRegistry` — named metrics rendered in the Prometheus
  text exposition format.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Callable, Iterable, TypeVar

from repro.core.locking import guarded_by

#: metric class resolved by MetricsRegistry._get_or_create.
_M = TypeVar("_M")

# Default latency buckets in seconds: 100 µs .. 1 s, roughly log-spaced.
DEFAULT_BUCKETS = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.0075,
    0.010,
    0.025,
    0.050,
    0.100,
    0.250,
    0.500,
    1.0,
)


@guarded_by("_lock", "_values")
class Counter:
    """A monotonic counter with optional label sets."""

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help_text = help_text
        self._values: dict[tuple[tuple[str, str], ...], float] = {}
        self._lock = threading.Lock()

    def increment(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = tuple(sorted(labels.items()))
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        key = tuple(sorted(labels.items()))
        with self._lock:
            return self._values.get(key, 0.0)

    def render(self) -> list[str]:
        lines = [f"# HELP {self.name} {self.help_text}", f"# TYPE {self.name} counter"]
        with self._lock:
            if not self._values:
                lines.append(f"{self.name} 0")
            for key, value in sorted(self._values.items()):
                label_text = ",".join(f'{k}="{v}"' for k, v in key)
                suffix = f"{{{label_text}}}" if label_text else ""
                lines.append(f"{self.name}{suffix} {value:g}")
        return lines


@guarded_by("_lock", "_values")
class Gauge:
    """A value that can go up and down (breaker states, queue depths)."""

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help_text = help_text
        self._values: dict[tuple[tuple[str, str], ...], float] = {}
        self._lock = threading.Lock()

    def set(self, value: float, **labels: str) -> None:
        key = tuple(sorted(labels.items()))
        with self._lock:
            self._values[key] = value

    def value(self, **labels: str) -> float:
        key = tuple(sorted(labels.items()))
        with self._lock:
            return self._values.get(key, 0.0)

    def render(self) -> list[str]:
        lines = [f"# HELP {self.name} {self.help_text}", f"# TYPE {self.name} gauge"]
        with self._lock:
            if not self._values:
                lines.append(f"{self.name} 0")
            for key, value in sorted(self._values.items()):
                label_text = ",".join(f'{k}="{v}"' for k, v in key)
                suffix = f"{{{label_text}}}" if label_text else ""
                lines.append(f"{self.name}{suffix} {value:g}")
        return lines


@guarded_by("_lock", "_counts", "_sum", "_total")
class Histogram:
    """A fixed-bucket histogram of observations (typically seconds)."""

    def __init__(
        self,
        name: str,
        help_text: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.help_text = help_text
        self.buckets = sorted(buckets)
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket")
        self._counts = [0] * (len(self.buckets) + 1)  # +inf tail bucket
        self._sum = 0.0
        self._total = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._total += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._total

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> float:
        """Estimate a quantile from the bucket counts.

        Returns the upper bound of the bucket containing the q-quantile
        observation — the same conservative estimate Prometheus produces.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        with self._lock:
            if self._total == 0:
                raise ValueError("histogram is empty")
            target = q * self._total
            running = 0
            for index, count in enumerate(self._counts):
                running += count
                if running >= target:
                    if index < len(self.buckets):
                        return self.buckets[index]
                    return float("inf")
        return float("inf")

    def render(self) -> list[str]:
        lines = [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} histogram",
        ]
        with self._lock:
            cumulative = 0
            for bound, count in zip(self.buckets, self._counts):
                cumulative += count
                lines.append(f'{self.name}_bucket{{le="{bound:g}"}} {cumulative}')
            cumulative += self._counts[-1]
            lines.append(f'{self.name}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{self.name}_sum {self._sum:g}")
            lines.append(f"{self.name}_count {self._total}")
        return lines


@guarded_by("_lock", "_metrics")
class MetricsRegistry:
    """Holds the service's metrics and renders the exposition text."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get_or_create(name, lambda: Counter(name, help_text), Counter)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name, help_text), Gauge)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(name, help_text, buckets), Histogram
        )

    def _get_or_create(
        self, name: str, factory: Callable[[], _M], expected_type: type[_M]
    ) -> _M:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif not isinstance(metric, expected_type):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}"
                )
            return metric

    def render_prometheus(self) -> str:
        with self._lock:
            metrics = list(self._metrics.values())
        lines: list[str] = []
        for metric in metrics:
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"
