"""The stateful recommendation server (one Serenade pod, §4.1-4.2).

A :class:`RecommendationServer` owns a replica of the session-similarity
index (wrapped in a recommender), a colocated :class:`SessionStore` for
the evolving sessions of the users routed to it, and the business-rule
engine. Handling a request is the paper's steps 2 and 3 in Figure 1:
update the evolving session in the local store, run VMIS-kNN over the
variant's view of the session, apply business rules, return 21 items.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.core.deadline import Deadline
from repro.core.predictor import SessionRecommender
from repro.core.types import ItemId, ScoredItem
from repro.kvstore.store import Clock
from repro.serving.resilience import ResilientRecommender
from repro.serving.rules import BusinessRules
from repro.serving.session_store import SessionStore
from repro.serving.variants import ServingVariant, session_view

SleepFn = Callable[[float], None]

FRONTEND_SLOT_SIZE = 21  # items required by the product-detail-page UI
OVERFETCH_FACTOR = 2  # fetch extra so business rules can drop some


@dataclass(frozen=True)
class RecommendationRequest:
    """One frontend call: a session update plus a recommendation ask."""

    session_key: str
    item_id: ItemId
    consent: bool = True
    variant: ServingVariant = ServingVariant.HIST
    how_many: int = FRONTEND_SLOT_SIZE


@dataclass(frozen=True)
class RecommendationResponse:
    """The server's answer, including the measured compute time.

    ``degraded``/``served_stage`` report how the guardrail layer answered:
    ``primary`` means the full model ran inside its budget; any other
    stage name means a fallback served the request.
    """

    session_key: str
    items: tuple[ScoredItem, ...]
    served_by: str
    service_seconds: float
    degraded: bool = False
    served_stage: str = "primary"


@dataclass
class ServerStats:
    """Running counters for one pod.

    ``store_seconds`` vs ``predict_seconds`` decomposes the request time
    into the session read-modify-write against the local KV store and the
    VMIS-kNN prediction — the measurement behind the paper's colocation
    argument (§4.2: local session access is microseconds, so prediction
    dominates; a networked store at ~15 ms would dwarf it).
    """

    requests: int = 0
    depersonalised_requests: int = 0
    busy_seconds: float = 0.0
    store_seconds: float = 0.0
    predict_seconds: float = 0.0
    service_times: list[float] = field(default_factory=list)


class RecommendationServer:
    """One stateful serving pod."""

    def __init__(
        self,
        pod_id: str,
        recommender: SessionRecommender,
        rules: BusinessRules | None = None,
        session_ttl: float = 30 * 60,
        clock: Clock | None = None,
        record_service_times: bool = True,
        wal_path: str | None = None,
        perf_clock: Clock | None = None,
        replicate_sessions: bool = False,
        stall_sleep: SleepFn | None = None,
    ) -> None:
        self.pod_id = pod_id
        self.recommender = recommender
        self.rules = rules or BusinessRules()
        self.sessions = SessionStore(
            ttl_seconds=session_ttl,
            clock=clock,
            wal_path=wal_path,
            replicate=replicate_sessions,
        )
        self.stats = ServerStats()
        self._record_service_times = record_service_times
        # Service-time measurement clock. Injectable so the deterministic
        # simulation layer can measure *virtual* elapsed time instead of
        # real CPU time, making latency assertions exact.
        self._perf = perf_clock if perf_clock is not None else time.perf_counter
        #: chaos fault-injection knob (PodSlowdown): every prediction on
        #: this pod first stalls this long, modelling a straggler replica
        #: (GC pause, noisy neighbour). 0.0 = healthy.
        self.injected_stall_seconds = 0.0
        self._stall_sleep = stall_sleep if stall_sleep is not None else time.sleep

    def replace_recommender(self, recommender: SessionRecommender) -> None:
        """Swap in a freshly built index replica (the daily rollout).

        The outgoing recommender is closed: its result caches and worker
        pools belong to the old index, and a cached recommendation must
        not outlive the index it was computed from. Making this the
        server's job (not the caller's) keeps the invariant under every
        swap path — full rollout, staged rollout, rollback.
        """
        old = self.recommender
        self.recommender = recommender
        if old is not recommender:
            close = getattr(old, "close", None)
            if callable(close):
                close()

    def update_session(self, request: RecommendationRequest) -> list[ItemId]:
        """Step 2 of Figure 1: the session read-modify-write.

        Returns the variant's view of the (possibly updated) session —
        the input to :meth:`predict`. Exposed separately so the ring
        coordinator can run the leader's state update, replicate it, and
        only then race the prediction against a hedge.
        """
        perf = self._perf
        started = perf()
        if request.consent:
            items = self.sessions.append_click(request.session_key, request.item_id)
            visible = session_view(items, request.variant, request.item_id)
        else:
            # No consent: do not touch stored state, recommend from the
            # currently displayed item only (§4.2 depersonalisation).
            self.stats.depersonalised_requests += 1
            visible = session_view(
                [], ServingVariant.DEPERSONALISED, request.item_id
            )
        self.stats.store_seconds += perf() - started
        return visible

    def predict(
        self,
        visible: list[ItemId],
        how_many: int,
        deadline: Deadline | None = None,
    ) -> tuple[list[ScoredItem], bool, str]:
        """Step 3: model + business rules over a session view.

        Honours an injected chaos stall first (a straggler pod is slow at
        *prediction*, not at its local state read). Returns the final item
        list plus the ``(degraded, stage)`` annotation from the guardrail
        layer. A caller-supplied deadline is propagated to a resilient
        recommender so hedged follower calls run under the *remaining*
        request budget instead of a fresh one.
        """
        perf = self._perf
        started = perf()
        if self.injected_stall_seconds > 0.0:
            self._stall_sleep(self.injected_stall_seconds)
        if isinstance(self.recommender, ResilientRecommender):
            raw = self.recommender.recommend(
                visible,
                how_many=how_many * OVERFETCH_FACTOR,
                deadline=deadline,
            )
        else:
            raw = self.recommender.recommend(
                visible, how_many=how_many * OVERFETCH_FACTOR
            )
        final = self.rules.apply(raw, visible, how_many)
        self.stats.predict_seconds += perf() - started
        # When the resilience layer wraps the recommender, annotate the
        # response with how the request was actually served.
        degraded, stage = False, "primary"
        outcome_probe = getattr(self.recommender, "last_outcome", None)
        if callable(outcome_probe):
            outcome = outcome_probe()
            if outcome is not None:
                degraded, stage = outcome.degraded, outcome.stage
        return final, degraded, stage

    def record_service(self, elapsed: float) -> None:
        """Account one served request against this pod's counters."""
        self.stats.requests += 1
        self.stats.busy_seconds += elapsed
        if self._record_service_times:
            self.stats.service_times.append(elapsed)

    def handle(self, request: RecommendationRequest) -> RecommendationResponse:
        """Process one request: update state, predict, filter."""
        perf = self._perf
        started = perf()
        visible = self.update_session(request)
        final, degraded, stage = self.predict(visible, request.how_many)
        elapsed = perf() - started
        self.record_service(elapsed)
        return RecommendationResponse(
            session_key=request.session_key,
            items=tuple(final),
            served_by=self.pod_id,
            service_seconds=elapsed,
            degraded=degraded,
            served_stage=stage,
        )

    def revoke_consent(self, session_key: str) -> None:
        """Forget a session when the user revokes personalisation consent."""
        self.sessions.drop_session(session_key)
