"""Online serving: stateful pods, sticky routing, rules, variants, guardrails."""

from repro.serving.app import ServingCluster
from repro.serving.http import SerenadeHTTPServer, SerenadeService
from repro.serving.monitoring import Counter, Gauge, Histogram, MetricsRegistry
from repro.serving.resilience import (
    AdmissionController,
    BreakerState,
    CircuitBreaker,
    FallbackChain,
    FallbackStage,
    Overloaded,
    ResiliencePolicy,
    ResilientRecommender,
    StageOutcome,
    StaticRecommender,
    hedge_delay_seconds,
    popularity_from_index,
)
from repro.serving.ring import (
    HashRing,
    ReplicationLink,
    ReplicationPolicy,
    RingCoordinator,
)
from repro.serving.router import StickySessionRouter
from repro.serving.rules import (
    BusinessRules,
    exclude_adult,
    exclude_seen_in_session,
    exclude_unavailable,
)
from repro.serving.server import (
    FRONTEND_SLOT_SIZE,
    RecommendationRequest,
    RecommendationResponse,
    RecommendationServer,
)
from repro.serving.session_store import SessionStore, decode_items, encode_items
from repro.serving.variants import ServingVariant, session_view

__all__ = [
    "AdmissionController",
    "BreakerState",
    "BusinessRules",
    "CircuitBreaker",
    "Counter",
    "FallbackChain",
    "FallbackStage",
    "Gauge",
    "HashRing",
    "Histogram",
    "MetricsRegistry",
    "Overloaded",
    "ReplicationLink",
    "ReplicationPolicy",
    "ResiliencePolicy",
    "ResilientRecommender",
    "RingCoordinator",
    "SerenadeHTTPServer",
    "SerenadeService",
    "FRONTEND_SLOT_SIZE",
    "RecommendationRequest",
    "RecommendationResponse",
    "RecommendationServer",
    "ServingCluster",
    "ServingVariant",
    "SessionStore",
    "StageOutcome",
    "StaticRecommender",
    "StickySessionRouter",
    "decode_items",
    "encode_items",
    "exclude_adult",
    "exclude_seen_in_session",
    "exclude_unavailable",
    "hedge_delay_seconds",
    "popularity_from_index",
    "session_view",
]
