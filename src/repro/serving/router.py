"""Sticky-session request routing (§4.1).

Serenade partitions evolving sessions *and* their requests over the
serving pods by session identifier, relying on Kubernetes session affinity
so that every request of a session lands on the pod that holds its state.

The affinity is implemented by the consistent-hash ring of
:class:`~repro.serving.ring.HashRing` (virtual nodes on a 64-bit circle);
this router is the thin session→pod façade over it. The ring gives the
two invariants the design needs:

* stability — the same session key always maps to the same pod while the
  pod set is unchanged;
* minimal disruption — removing a pod only remaps the sessions in that
  pod's ring segments; adding a pod only steals the segments its virtual
  points now delimit. (An earlier revision used rendezvous hashing, which
  has the same properties for single-owner routing but no natural replica
  placement; the ring's clockwise preference list is what the replicated
  shard layer builds on.)
"""

from __future__ import annotations

from repro.serving.ring import DEFAULT_VIRTUAL_NODES, HashRing


class StickySessionRouter:
    """Consistent-hash router over a mutable set of pod identifiers."""

    def __init__(
        self,
        pod_ids: list[str] | None = None,
        virtual_nodes: int = DEFAULT_VIRTUAL_NODES,
    ) -> None:
        self.ring = HashRing(virtual_nodes=virtual_nodes)
        for pod_id in pod_ids or []:
            self.add_pod(pod_id)

    @property
    def pods(self) -> list[str]:
        """Live pod ids, insertion-ordered."""
        return self.ring.pods

    def add_pod(self, pod_id: str) -> None:
        """Register a pod; duplicate ids are rejected."""
        self.ring.add_pod(pod_id)

    def remove_pod(self, pod_id: str) -> None:
        """Deregister a pod (machine failure or scale-down)."""
        self.ring.remove_pod(pod_id)

    def route(self, session_key: str) -> str:
        """The pod that owns this session's state."""
        if not self.ring.pods:
            raise RuntimeError("no pods registered")
        return self.ring.primary(session_key)

    def preference_list(self, session_key: str, n: int) -> list[str]:
        """The session's replica placement: leader first, then followers."""
        return self.ring.preference_list(session_key, n)

    def assignment_counts(self, session_keys: list[str]) -> dict[str, int]:
        """How many of the given sessions each pod would receive."""
        counts = {pod: 0 for pod in self.pods}
        for key in session_keys:
            counts[self.route(key)] += 1
        return counts
