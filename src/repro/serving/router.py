"""Sticky-session request routing (§4.1).

Serenade partitions evolving sessions *and* their requests over the
serving pods by session identifier, relying on Kubernetes session affinity
so that every request of a session lands on the pod that holds its state.

We implement the affinity with **rendezvous (highest-random-weight)
hashing**: each (session, pod) pair gets a deterministic weight, and a
session routes to the live pod with the highest weight. This gives the two
invariants the design needs:

* stability — the same session key always maps to the same pod while the
  pod set is unchanged;
* minimal disruption — removing a pod only remaps the sessions that were
  on that pod; adding a pod only steals the sessions that now rank it first.
"""

from __future__ import annotations

import hashlib


def _weight(session_key: str, pod_id: str) -> int:
    digest = hashlib.blake2b(
        f"{session_key}\x00{pod_id}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class StickySessionRouter:
    """Rendezvous-hash router over a mutable set of pod identifiers."""

    def __init__(self, pod_ids: list[str] | None = None) -> None:
        self._pods: list[str] = []
        for pod_id in pod_ids or []:
            self.add_pod(pod_id)

    @property
    def pods(self) -> list[str]:
        """Live pod ids, insertion-ordered."""
        return list(self._pods)

    def add_pod(self, pod_id: str) -> None:
        """Register a pod; duplicate ids are rejected."""
        if pod_id in self._pods:
            raise ValueError(f"pod {pod_id!r} already registered")
        self._pods.append(pod_id)

    def remove_pod(self, pod_id: str) -> None:
        """Deregister a pod (machine failure or scale-down)."""
        try:
            self._pods.remove(pod_id)
        except ValueError:
            raise ValueError(f"pod {pod_id!r} is not registered") from None

    def route(self, session_key: str) -> str:
        """The pod that owns this session's state."""
        if not self._pods:
            raise RuntimeError("no pods registered")
        return max(self._pods, key=lambda pod: _weight(session_key, pod))

    def assignment_counts(self, session_keys: list[str]) -> dict[str, int]:
        """How many of the given sessions each pod would receive."""
        counts = {pod: 0 for pod in self._pods}
        for key in session_keys:
            counts[self.route(key)] += 1
        return counts
