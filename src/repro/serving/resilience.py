"""SLA guardrails for the serving path: deadlines, fallbacks, breakers, shedding.

The paper's operational promise is an answer within 50 ms for *every*
request (§4.2). The raw serving path cannot keep that promise by itself: a
slow or crashing recommender takes the request down with it. This module
wraps the recommender call in the machinery a production deployment needs
to degrade instead of failing:

* :class:`Deadline` budgets (re-exported from :mod:`repro.core.deadline`)
  bound every stage on a monotonic clock;
* a :class:`FallbackChain` tries progressively cheaper models —
  VMIS-kNN → popularity → a static ranked list — and each stage runs under
  the request's *remaining* budget via a worker pool, so a 200 ms stall in
  the primary burns at most the budget, never the request;
* a per-stage :class:`CircuitBreaker` (closed → open → half-open) stops a
  sick model from consuming budget at all once its failure rate crosses a
  threshold, probing it again after a cool-down;
* an :class:`AdmissionController` bounds the number of requests inside the
  cluster and sheds **oldest-first** when saturated — the queued request
  that has waited longest has the least chance of meeting its SLA, so it
  is the one turned into a fast 429 (:class:`Overloaded`).

The terminal stage of every chain is assumed to be O(µs) (a precomputed
static list) and is executed directly, outside the pool, so even a fully
exhausted budget produces *some* answer — degraded, never over-deadline.
"""

from __future__ import annotations

import enum
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.deadline import DEFAULT_BUDGET_SECONDS, Clock, Deadline
from repro.core.index import SessionIndex
from repro.core.locking import guarded_by, holds_lock
from repro.core.predictor import SessionRecommender, batch_via_loop
from repro.core.types import ItemId, ScoredItem


class Overloaded(RuntimeError):
    """The cluster shed this request (HTTP 429 semantics)."""

    def __init__(
        self, message: str = "overloaded", retry_after_ms: float = 100.0
    ) -> None:
        super().__init__(message)
        self.retry_after_ms = retry_after_ms


@dataclass(frozen=True)
class ResiliencePolicy:
    """Tunable knobs of the guardrail layer (defaults match the paper's SLA)."""

    budget_ms: float = 50.0
    #: budget kept in reserve for the terminal static stage + bookkeeping,
    #: so the *total* request time stays under ``budget_ms``.
    fallback_reserve_ms: float = 8.0
    breaker_failure_threshold: float = 0.5
    breaker_window: int = 20
    breaker_min_calls: int = 5
    breaker_probe_seconds: float = 5.0
    #: admission-control capacity: requests inside the cluster at once.
    queue_capacity: int = 256
    #: worker threads per pod that execute deadline-bounded stage calls.
    stage_workers: int = 8
    #: run stages synchronously on the caller thread instead of the worker
    #: pool. A stage that stalls then *burns* budget rather than being
    #: abandoned at its timeout — only safe with recommenders that cannot
    #: block on real time, which is exactly the deterministic-simulation
    #: configuration (:mod:`repro.testing.simulation`): stages "stall" by
    #: advancing a virtual clock, and the chain observes the burned budget
    #: after the call returns.
    inline_stages: bool = False

    def budget(self, clock: Clock = time.monotonic) -> Deadline:
        return Deadline(self.budget_ms / 1000.0, clock=clock)


def hedge_delay_seconds(deadline: Deadline, fraction: float) -> float:
    """How long to wait on a primary before hedging to a replica.

    The tail-at-scale recipe: fire the backup request after a fixed
    fraction of the request's *remaining* budget. Deriving the delay from
    the deadline (not a constant) means a request that arrives with most
    of its budget already burned hedges sooner — the hedge exists to
    protect the SLA, so it scales with what is left of it.
    """
    if not 0.0 < fraction < 1.0:
        raise ValueError("hedge fraction must be in (0, 1)")
    return deadline.remaining() * fraction


# -- circuit breaker ---------------------------------------------------------


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


@guarded_by(
    "_lock",
    "_window",
    "_state",
    "_opened_at",
    "_probe_in_flight",
    "short_circuits",
)
class CircuitBreaker:
    """Failure-rate circuit breaker with a half-open probe.

    CLOSED: calls flow; outcomes feed a sliding window. When the window
    holds at least ``min_calls`` outcomes and the failure rate reaches
    ``failure_threshold``, the breaker OPENs.

    OPEN: every call is short-circuited (no budget spent) until
    ``probe_seconds`` have passed, then the breaker turns HALF_OPEN.

    HALF_OPEN: exactly one probe call is let through; success closes the
    breaker (window reset), failure re-opens it for another cool-down.
    """

    def __init__(
        self,
        failure_threshold: float = 0.5,
        window: int = 20,
        min_calls: int = 5,
        probe_seconds: float = 5.0,
        clock: Clock = time.monotonic,
    ) -> None:
        if not 0.0 < failure_threshold <= 1.0:
            raise ValueError("failure_threshold must be in (0, 1]")
        if window < 1 or min_calls < 1:
            raise ValueError("window and min_calls must be >= 1")
        self.failure_threshold = failure_threshold
        self.min_calls = min_calls
        self.probe_seconds = probe_seconds
        self._clock = clock
        self._window: deque[bool] = deque(maxlen=window)
        self._state = BreakerState.CLOSED
        self._opened_at = 0.0
        self._probe_in_flight = False
        self._lock = threading.Lock()
        self.short_circuits = 0

    @classmethod
    def from_policy(
        cls, policy: ResiliencePolicy, clock: Clock = time.monotonic
    ) -> "CircuitBreaker":
        return cls(
            failure_threshold=policy.breaker_failure_threshold,
            window=policy.breaker_window,
            min_calls=policy.breaker_min_calls,
            probe_seconds=policy.breaker_probe_seconds,
            clock=clock,
        )

    @property
    def state(self) -> BreakerState:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def allow(self) -> bool:
        """May a call proceed right now? (Counts short-circuits.)"""
        with self._lock:
            self._maybe_half_open()
            if self._state is BreakerState.CLOSED:
                return True
            if self._state is BreakerState.HALF_OPEN and not self._probe_in_flight:
                self._probe_in_flight = True
                return True
            self.short_circuits += 1
            return False

    def record_success(self) -> None:
        with self._lock:
            if self._state is BreakerState.HALF_OPEN:
                self._state = BreakerState.CLOSED
                self._window.clear()
                self._probe_in_flight = False
                return
            self._window.append(True)

    def cancel(self) -> None:
        """The allowed call never ran (e.g. no budget): release the probe
        slot without recording an outcome — the model's health is unknown."""
        with self._lock:
            if self._state is BreakerState.HALF_OPEN:
                self._probe_in_flight = False

    def record_failure(self) -> None:
        with self._lock:
            if self._state is BreakerState.HALF_OPEN:
                self._trip()
                return
            self._window.append(False)
            if len(self._window) >= self.min_calls:
                failures = sum(1 for ok in self._window if not ok)
                if failures / len(self._window) >= self.failure_threshold:
                    self._trip()

    @holds_lock("_lock")
    def _trip(self) -> None:
        self._state = BreakerState.OPEN
        self._opened_at = self._clock()
        self._probe_in_flight = False
        self._window.clear()

    @holds_lock("_lock")
    def _maybe_half_open(self) -> None:
        if (
            self._state is BreakerState.OPEN
            and self._clock() >= self._opened_at + self.probe_seconds
        ):
            self._state = BreakerState.HALF_OPEN
            self._probe_in_flight = False


# -- fallback recommenders ---------------------------------------------------


class StaticRecommender:
    """A precomputed ranked list; the chain's always-available terminal.

    This is the in-process equivalent of the paper routing hard failures
    to static business rules: zero computation, just a slice of a list
    (minus items already in the session).
    """

    name = "static-rules"

    def __init__(self, ranked: Sequence[ScoredItem] = ()) -> None:
        self._ranked: tuple[ScoredItem, ...] = tuple(ranked)

    def recommend(
        self, session_items: Sequence[ItemId], how_many: int = 21
    ) -> list[ScoredItem]:
        if not session_items:
            return list(self._ranked[:how_many])
        current = set(session_items)
        return [s for s in self._ranked if s.item_id not in current][:how_many]

    def recommend_batch(
        self, sessions: Sequence[Sequence[ItemId]], how_many: int = 21
    ) -> list[list[ScoredItem]]:
        return batch_via_loop(self, sessions, how_many=how_many)


def popularity_from_index(
    index: SessionIndex, how_many: int = 100
) -> StaticRecommender:
    """A popularity fallback derived from the index's session frequencies.

    ``item_session_counts`` is exactly the data a popularity baseline
    trains on (Ludewig & Jannach show popularity/co-occurrence are strong
    cheap predictors), and it ships with every built index — no separate
    training pass, no click log needed at serving time.
    """
    total = sum(index.item_session_counts.values()) or 1
    ranked = [
        ScoredItem(item, count / total)
        for item, count in sorted(
            index.item_session_counts.items(), key=lambda kv: (-kv[1], kv[0])
        )[:how_many]
    ]
    return StaticRecommender(ranked)


# -- the fallback chain ------------------------------------------------------


@dataclass
class FallbackStage:
    """One model in the chain, guarded by its own breaker."""

    name: str
    recommender: SessionRecommender
    breaker: CircuitBreaker

    #: running counters (reads are monitoring-only; single writer per call)
    calls: int = 0
    successes: int = 0
    failures: int = 0
    timeouts: int = 0


@dataclass
class StageOutcome:
    """How one request made it through the chain."""

    items: list[ScoredItem]
    stage: str
    degraded: bool
    deadline_exceeded: bool = False
    errors: int = 0


@dataclass
class ResilienceCounters:
    """Aggregated guardrail counters for one chain."""

    requests: int = 0
    degraded_requests: int = 0
    deadline_timeouts: int = 0
    stage_errors: int = 0
    breaker_short_circuits: int = 0
    served_by_stage: dict[str, int] = field(default_factory=dict)


class FallbackChain:
    """Ordered degradation: try each stage under the remaining budget.

    Stages run on a worker pool so the caller can abandon a stalled call
    at its timeout (the worker thread finishes in the background and its
    result is discarded — Python cannot preempt it, but the *request*
    never waits past the budget). The terminal stage runs inline and must
    be effectively free; it is the floor that makes the chain total.
    """

    def __init__(
        self,
        stages: Sequence[FallbackStage],
        terminal: SessionRecommender,
        reserve_seconds: float = 0.008,
        stage_workers: int = 8,
        clock: Clock = time.monotonic,
        inline_stages: bool = False,
    ) -> None:
        if not stages:
            raise ValueError("a fallback chain needs at least one stage")
        self.stages: list[FallbackStage] = list(stages)
        self.terminal = terminal
        self.terminal_name = getattr(terminal, "name", "static-rules")
        self.reserve_seconds = reserve_seconds
        self._clock = clock
        self.inline_stages = inline_stages
        self._stage_workers = stage_workers
        # Lazily built: an inline chain (deterministic simulation) never
        # spins up threads at all.
        self._pool: ThreadPoolExecutor | None = None

    def _get_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self._stage_workers,
                thread_name_prefix="repro-resilience",
            )
        return self._pool

    @classmethod
    def from_index(
        cls,
        primary: SessionRecommender,
        index: SessionIndex,
        policy: ResiliencePolicy | None = None,
        clock: Clock = time.monotonic,
    ) -> "FallbackChain":
        """The canonical chain: primary → index popularity → static top list.

        The static terminal is the head of the popularity ranking — the
        cheapest defensible answer when everything else failed or the
        budget is gone.
        """
        policy = policy or ResiliencePolicy()
        popularity = popularity_from_index(index)
        terminal = StaticRecommender(popularity.recommend([], how_many=50))
        return cls(
            stages=[
                FallbackStage(
                    "primary", primary, CircuitBreaker.from_policy(policy, clock)
                ),
                FallbackStage(
                    "popularity",
                    popularity,
                    CircuitBreaker.from_policy(policy, clock),
                ),
            ],
            terminal=terminal,
            reserve_seconds=policy.fallback_reserve_ms / 1000.0,
            stage_workers=policy.stage_workers,
            clock=clock,
            inline_stages=policy.inline_stages,
        )

    def run(
        self,
        session_items: Sequence[ItemId],
        how_many: int,
        deadline: Deadline,
    ) -> StageOutcome:
        """Serve one request, degrading through the chain as needed."""
        items = list(session_items)
        errors = 0
        deadline_exceeded = False
        for position, stage in enumerate(self.stages):
            if not stage.breaker.allow():
                continue
            budget = deadline.remaining() - self.reserve_seconds
            if budget <= 0:
                # Budget gone before this stage could start; not the
                # model's fault, so no breaker outcome is recorded.
                stage.breaker.cancel()
                deadline_exceeded = True
                break
            stage.calls += 1
            if self.inline_stages:
                # Synchronous execution: the stage cannot be abandoned
                # mid-call, so a timeout is detected *after* the call — the
                # stage "took too long" iff it burned the budget down past
                # the reserve, the same condition the pooled path enforces
                # with ``future.result(timeout=remaining - reserve)``.
                try:
                    result = stage.recommender.recommend(items, how_many)
                except Exception:
                    stage.failures += 1
                    errors += 1
                    stage.breaker.record_failure()
                    continue
                if deadline.remaining() < self.reserve_seconds:
                    stage.timeouts += 1
                    stage.breaker.record_failure()
                    deadline_exceeded = True
                    continue
                stage.successes += 1
                stage.breaker.record_success()
                return StageOutcome(
                    items=result,
                    stage=stage.name,
                    degraded=position > 0,
                    deadline_exceeded=deadline_exceeded,
                    errors=errors,
                )
            future = self._get_pool().submit(
                stage.recommender.recommend, items, how_many
            )
            try:
                result = future.result(timeout=budget)
            except FutureTimeout:
                future.cancel()
                stage.timeouts += 1
                stage.breaker.record_failure()
                deadline_exceeded = True
                continue
            except Exception:
                stage.failures += 1
                errors += 1
                stage.breaker.record_failure()
                continue
            stage.successes += 1
            stage.breaker.record_success()
            return StageOutcome(
                items=result,
                stage=stage.name,
                degraded=position > 0,
                deadline_exceeded=deadline_exceeded,
                errors=errors,
            )
        # Terminal: inline, effectively free, always answers.
        try:
            result = self.terminal.recommend(items, how_many=how_many)
        except Exception:
            errors += 1
            result = []
        return StageOutcome(
            items=result,
            stage=self.terminal_name,
            degraded=True,
            deadline_exceeded=deadline_exceeded,
            errors=errors,
        )

    def breaker_states(self) -> dict[str, BreakerState]:
        return {stage.name: stage.breaker.state for stage in self.stages}

    def close(self) -> None:
        # wait=False: abandoned stage calls may still be sleeping; the
        # request path must never block on them, and neither should close.
        if self._pool is not None:
            self._pool.shutdown(wait=False)


@guarded_by("_lock", "counters")
class ResilientRecommender:
    """The deadline-budget wrapper installed as a pod's recommender.

    Satisfies :class:`~repro.core.predictor.SessionRecommender`, so the
    :class:`~repro.serving.server.RecommendationServer` needs no changes
    to its call site; the outcome of the most recent call on *this thread*
    is available via :meth:`last_outcome` for response annotation.
    """

    def __init__(
        self,
        chain: FallbackChain,
        policy: ResiliencePolicy | None = None,
        clock: Clock = time.monotonic,
    ) -> None:
        self.chain = chain
        self.policy = policy or ResiliencePolicy()
        self._clock = clock
        self._local = threading.local()
        self._lock = threading.Lock()
        self.counters = ResilienceCounters()

    @property
    def primary(self) -> SessionRecommender:
        """The first stage's recommender (for cache introspection)."""
        return self.chain.stages[0].recommender

    def recommend(
        self,
        session_items: Sequence[ItemId],
        how_many: int = 21,
        deadline: Deadline | None = None,
    ) -> list[ScoredItem]:
        if deadline is None:
            deadline = Deadline(
                self.policy.budget_ms / 1000.0
                if self.policy
                else DEFAULT_BUDGET_SECONDS,
                clock=self._clock,
            )
        outcome = self.chain.run(session_items, how_many, deadline)
        self._local.outcome = outcome
        with self._lock:
            counters = self.counters
            counters.requests += 1
            if outcome.degraded:
                counters.degraded_requests += 1
            if outcome.deadline_exceeded:
                counters.deadline_timeouts += 1
            counters.stage_errors += outcome.errors
            counters.served_by_stage[outcome.stage] = (
                counters.served_by_stage.get(outcome.stage, 0) + 1
            )
        return outcome.items

    def recommend_batch(
        self, sessions: Sequence[Sequence[ItemId]], how_many: int = 21
    ) -> list[list[ScoredItem]]:
        return batch_via_loop(self, sessions, how_many=how_many)

    def last_outcome(self) -> StageOutcome | None:
        """The outcome of this thread's most recent call (or None)."""
        return getattr(self._local, "outcome", None)

    def breaker_states(self) -> dict[str, BreakerState]:
        return self.chain.breaker_states()

    def info(self) -> dict[str, float]:
        """Counter snapshot including breaker short-circuits."""
        with self._lock:
            counters = self.counters
            info = {
                "requests": counters.requests,
                "degraded_requests": counters.degraded_requests,
                "deadline_timeouts": counters.deadline_timeouts,
                "stage_errors": counters.stage_errors,
                "served_by_stage": dict(counters.served_by_stage),
            }
        info["breaker_short_circuits"] = sum(
            stage.breaker.short_circuits for stage in self.chain.stages
        )
        return info

    def close(self) -> None:
        self.chain.close()


# -- admission control / load shedding ---------------------------------------


class AdmissionToken:
    """One admitted request's place in the bounded queue."""

    __slots__ = ("session_key", "entered_at", "_shed")

    def __init__(self, session_key: str, entered_at: float) -> None:
        self.session_key = session_key
        self.entered_at = entered_at
        self._shed = False

    @property
    def shed(self) -> bool:
        return self._shed


@guarded_by("_lock", "_queue", "capacity", "shed_count", "admitted_count")
class AdmissionController:
    """A bounded queue in front of the cluster, shedding oldest-first.

    Every request obtains a token before any work happens and releases it
    when done. When the queue exceeds ``capacity``, the *oldest* waiting
    token is marked shed: it has been inside the system longest, so it is
    the least likely to still meet its SLA — turning it into an immediate
    429 frees budget for requests that can. A shed token's owner observes
    ``token.shed`` at its next checkpoint and aborts with
    :class:`Overloaded`.
    """

    def __init__(self, capacity: int, clock: Clock = time.monotonic) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._clock = clock
        self._queue: deque[AdmissionToken] = deque()
        self._lock = threading.Lock()
        self.shed_count = 0
        self.admitted_count = 0

    def submit(self, session_key: str) -> AdmissionToken:
        """Enter the queue; may shed older requests (or this one) to fit."""
        token = AdmissionToken(session_key, self._clock())
        with self._lock:
            self._queue.append(token)
            self.admitted_count += 1
            while len(self._queue) > self.capacity:
                oldest = self._queue.popleft()
                oldest._shed = True
                self.shed_count += 1
        return token

    def resize(self, capacity: int) -> None:
        """Change capacity at runtime (streaming backpressure drives this).

        Shrinking below the current queue depth sheds oldest-first
        immediately, exactly as :meth:`submit` would — backpressure from
        a lagging index consumer turns into fast 429s rather than stale
        recommendations.
        """
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        with self._lock:
            self.capacity = capacity
            while len(self._queue) > self.capacity:
                oldest = self._queue.popleft()
                oldest._shed = True
                self.shed_count += 1

    def release(self, token: AdmissionToken) -> None:
        with self._lock:
            try:
                self._queue.remove(token)
            except ValueError:
                pass  # already shed out of the queue

    @property
    def inflight(self) -> int:
        with self._lock:
            return len(self._queue)

    def info(self) -> dict[str, float]:
        with self._lock:
            return {
                "capacity": self.capacity,
                "inflight": len(self._queue),
                "shed": self.shed_count,
                "admitted": self.admitted_count,
            }
