"""Business rules applied to raw recommendations (§4.2).

"We additionally apply business rules to the recommendations to remove
unavailable products and to filter for adult products." Rules run after
VMIS-kNN scoring; because filtering can shrink the list below the 21 items
the frontend needs, callers over-fetch and the rule engine truncates last.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.core.types import ItemId, ScoredItem

Rule = Callable[[ScoredItem, Sequence[ItemId]], bool]
"""A rule keeps an item if it returns True given (candidate, session items)."""


def exclude_unavailable(unavailable: Iterable[ItemId]) -> Rule:
    """Drop items that are out of stock or delisted."""
    blocked = frozenset(unavailable)

    def rule(candidate: ScoredItem, _session: Sequence[ItemId]) -> bool:
        return candidate.item_id not in blocked

    return rule


def exclude_adult(adult_items: Iterable[ItemId]) -> Rule:
    """Drop adult-catalog items from the default slot."""
    blocked = frozenset(adult_items)

    def rule(candidate: ScoredItem, _session: Sequence[ItemId]) -> bool:
        return candidate.item_id not in blocked

    return rule


def exclude_seen_in_session(candidate: ScoredItem, session: Sequence[ItemId]) -> bool:
    """Drop items the user already interacted with in this session."""
    return candidate.item_id not in set(session)


class BusinessRules:
    """An ordered conjunction of rules with final truncation."""

    def __init__(self, rules: Sequence[Rule] = ()) -> None:
        self._rules: list[Rule] = list(rules)

    def add(self, rule: Rule) -> "BusinessRules":
        self._rules.append(rule)
        return self

    def apply(
        self,
        recommendations: Sequence[ScoredItem],
        session_items: Sequence[ItemId],
        how_many: int,
    ) -> list[ScoredItem]:
        """Filter by every rule, preserving order, then truncate."""
        kept = [
            candidate
            for candidate in recommendations
            if all(rule(candidate, session_items) for rule in self._rules)
        ]
        return kept[:how_many]

    def __len__(self) -> int:
        return len(self._rules)
