"""The REST serving application (§4.2's Actix web app, on the stdlib).

Serenade's online component is a web application: the shop frontend POSTs
a session update and receives 21 recommended items. This module exposes a
:class:`ServingCluster` over HTTP with the same contract:

* ``POST /v1/recommend`` — body
  ``{"session_id": "abc", "item_id": 42, "consent": true,
  "variant": "serenade-hist", "count": 21}``;
  responds ``{"items": [{"item_id": ..., "score": ...}, ...],
  "pod": "pod-0", "latency_ms": ...}``.
* ``POST /v1/recommend_batch`` — body
  ``{"sessions": [[42, 7], [13]], "count": 21}``; responds
  ``{"results": [[{"item_id": ..., "score": ...}, ...], ...],
  "latency_ms": ..., "cache": {"hits": ..., "hit_rate": ...}}``.
  Served by the cluster's batch engine, not the sticky router.
* ``GET /healthz`` — liveness probe (Kubernetes-style).
* ``GET /metrics`` — Prometheus text exposition of request counts and
  latency histograms, plus the SLA-guardrail series
  (``serenade_degraded_requests_total``, ``serenade_shed_requests_total``,
  ``serenade_breaker_state``, ``serenade_recovered_sessions_total``,
  ``serenade_corrupt_sessions_total``).

When the cluster runs with guardrails, a saturated admission queue turns
into HTTP 429 with a ``Retry-After`` header, and successful responses
carry ``"degraded"``/``"stage"`` reporting which fallback stage answered.

The server is threaded; the underlying KV store and metrics registry are
thread-safe, so concurrent frontend requests behave like the paper's
multi-core pods.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.core.deadline import Clock
from repro.serving.app import ServingCluster
from repro.serving.monitoring import MetricsRegistry
from repro.serving.resilience import BreakerState, Overloaded
from repro.serving.server import RecommendationRequest
from repro.serving.variants import ServingVariant

_BREAKER_STATE_VALUES = {
    BreakerState.CLOSED: 0.0,
    BreakerState.HALF_OPEN: 1.0,
    BreakerState.OPEN: 2.0,
}

_VARIANTS = {variant.value: variant for variant in ServingVariant}

# Rollout states as exported at /metrics (serenade_rollout_state).
_ROLLOUT_STATE_VALUES = {
    "idle": 0.0,
    "canary": 1.0,
    "rolling": 2.0,
    "completed": 3.0,
    "rolled_back": 4.0,
}


def _version_number(version: str | None) -> float:
    """Numeric form of a registry version id (v000042 -> 42; unknown -> 0)."""
    if version and version.startswith("v") and version[1:].isdigit():
        return float(version[1:])
    return 0.0


class BadRequest(ValueError):
    """The request body was malformed; reported back as HTTP 400."""


def parse_recommend_payload(payload: dict) -> RecommendationRequest:
    """Validate and convert a JSON body into a typed request."""
    if not isinstance(payload, dict):
        raise BadRequest("body must be a JSON object")
    session_id = payload.get("session_id")
    if not isinstance(session_id, str) or not session_id:
        raise BadRequest("session_id must be a non-empty string")
    item_id = payload.get("item_id")
    if not isinstance(item_id, int) or isinstance(item_id, bool):
        raise BadRequest("item_id must be an integer")
    consent = payload.get("consent", True)
    if not isinstance(consent, bool):
        raise BadRequest("consent must be a boolean")
    variant_name = payload.get("variant", ServingVariant.HIST.value)
    variant = _VARIANTS.get(variant_name)
    if variant is None:
        raise BadRequest(
            f"unknown variant {variant_name!r}; known: {sorted(_VARIANTS)}"
        )
    count = payload.get("count", 21)
    if not isinstance(count, int) or isinstance(count, bool) or not 1 <= count <= 100:
        raise BadRequest("count must be an integer in [1, 100]")
    return RecommendationRequest(
        session_key=session_id,
        item_id=item_id,
        consent=consent,
        variant=variant,
        how_many=count,
    )


def parse_batch_payload(payload: dict) -> tuple[list[list[int]], int]:
    """Validate a /v1/recommend_batch body into (sessions, count)."""
    if not isinstance(payload, dict):
        raise BadRequest("body must be a JSON object")
    sessions = payload.get("sessions")
    if not isinstance(sessions, list):
        raise BadRequest("sessions must be a list of item-id lists")
    if len(sessions) > 10_000:
        raise BadRequest("at most 10000 sessions per batch")
    for session in sessions:
        if not isinstance(session, list):
            raise BadRequest("each session must be a list of item ids")
        for item_id in session:
            if not isinstance(item_id, int) or isinstance(item_id, bool):
                raise BadRequest("item ids must be integers")
    count = payload.get("count", 21)
    if not isinstance(count, int) or isinstance(count, bool) or not 1 <= count <= 100:
        raise BadRequest("count must be an integer in [1, 100]")
    return sessions, count


class SerenadeService:
    """The application object behind the HTTP handler (testable directly).

    ``perf_clock`` is the latency clock seam: tests drive it with a
    ``VirtualClock`` so reported ``latency_ms`` is deterministic.
    """

    def __init__(
        self, cluster: ServingCluster, perf_clock: Clock | None = None
    ) -> None:
        self.cluster = cluster
        self._perf: Clock = perf_clock if perf_clock is not None else time.perf_counter
        self.metrics = MetricsRegistry()
        self._requests = self.metrics.counter(
            "serenade_requests_total", "Recommendation requests by status"
        )
        self._latency = self.metrics.histogram(
            "serenade_request_latency_seconds", "End-to-end request latency"
        )
        self._batch_requests = self.metrics.counter(
            "serenade_batch_requests_total", "Batch recommendation requests"
        )
        self._batch_sessions = self.metrics.counter(
            "serenade_batch_sessions_total", "Sessions served through batches"
        )
        # SLA guardrail series; monotonic counters mirror the cluster's
        # running totals (synced on scrape), the gauge is point-in-time.
        self._degraded = self.metrics.counter(
            "serenade_degraded_requests_total",
            "Requests served by a fallback stage instead of the primary",
        )
        self._shed = self.metrics.counter(
            "serenade_shed_requests_total",
            "Requests shed by admission control (HTTP 429)",
        )
        self._recovered = self.metrics.counter(
            "serenade_recovered_sessions_total",
            "Sessions restored by WAL replay after pod restarts",
        )
        self._corrupt = self.metrics.counter(
            "serenade_corrupt_sessions_total",
            "Corrupt session values read as empty",
        )
        self._breaker_state = self.metrics.gauge(
            "serenade_breaker_state",
            "Circuit breaker state per pod/stage (0 closed, 1 half-open, 2 open)",
        )
        # Index lifecycle series (daily rollout / rollback observability).
        self._index_version = self.metrics.gauge(
            "serenade_index_version",
            "Active index version per pod (numeric registry version; 0 unknown)",
        )
        self._rollout_state = self.metrics.gauge(
            "serenade_rollout_state",
            "Rollout state (0 idle, 1 canary, 2 rolling, 3 completed, "
            "4 rolled back)",
        )
        self._rollbacks = self.metrics.counter(
            "serenade_index_rollbacks_total",
            "Automatic index rollbacks (canary or rolling stage failures)",
        )
        # Streaming ingestion series (repro.streaming): gauges are
        # point-in-time snapshots of the attached pipeline on scrape.
        self._streaming_lag = self.metrics.gauge(
            "serenade_streaming_lag_events",
            "Acknowledged clicks not yet visible in the index "
            "(unread backlog + buffered unsealed sessions)",
        )
        self._streaming_watermark = self.metrics.gauge(
            "serenade_streaming_watermark_seconds",
            "Event-time watermark of the streaming consumer group",
        )
        self._index_staleness = self.metrics.gauge(
            "serenade_index_staleness_seconds",
            "Event-time gap between the log head and the indexed head",
        )
        # Replicated-ring series: per-shard placement gauges plus the
        # hedge/failover counters of the coordinator (synced on scrape).
        self._ring_leader_sessions = self.metrics.gauge(
            "serenade_ring_leader_sessions",
            "Sessions this pod leads on the replicated ring",
        )
        self._ring_follower_sessions = self.metrics.gauge(
            "serenade_ring_follower_sessions",
            "Sessions this pod follows on the replicated ring",
        )
        self._ring_replication_lag = self.metrics.gauge(
            "serenade_ring_replication_lag_bytes",
            "Unacked replication-log bytes per leader->follower link",
        )
        self._ring_hedges = self.metrics.counter(
            "serenade_ring_hedges_fired_total",
            "Hedged follower reads fired after the hedge delay",
        )
        self._ring_hedge_wins = self.metrics.counter(
            "serenade_ring_hedge_wins_total",
            "Hedged reads that beat the leader's response",
        )
        self._ring_fenced_hedges = self.metrics.counter(
            "serenade_ring_fenced_hedges_total",
            "Hedge attempts refused because the follower was stale/partitioned",
        )
        self._ring_failovers = self.metrics.counter(
            "serenade_ring_failovers_total",
            "Leader deaths that promoted a follower",
        )

    def recommend(self, payload: dict) -> dict:
        """Handle one /v1/recommend call; raises BadRequest on bad input
        and Overloaded (HTTP 429) when admission control sheds the call."""
        request = parse_recommend_payload(payload)
        started = self._perf()
        try:
            response = self.cluster.handle(request)
        except Overloaded:
            self._requests.increment(status="shed")
            raise
        elapsed = self._perf() - started
        self._requests.increment(status="ok")
        self._latency.observe(elapsed)
        return {
            "items": [
                {"item_id": scored.item_id, "score": scored.score}
                for scored in response.items
            ],
            "pod": response.served_by,
            "latency_ms": elapsed * 1e3,
            "degraded": response.degraded,
            "stage": response.served_stage,
        }

    def recommend_batch(self, payload: dict) -> dict:
        """Handle one /v1/recommend_batch call via the cluster batch engine."""
        sessions, count = parse_batch_payload(payload)
        started = self._perf()
        results = self.cluster.handle_batch(sessions, how_many=count)
        elapsed = self._perf() - started
        self._batch_requests.increment(status="ok")
        self._batch_sessions.increment(amount=len(sessions))
        cache = self.cluster.batch_engine().cache_info()
        return {
            "results": [
                [
                    {"item_id": scored.item_id, "score": scored.score}
                    for scored in ranked
                ]
                for ranked in results
            ],
            "latency_ms": elapsed * 1e3,
            "cache": {"hits": cache["hits"], "hit_rate": cache["hit_rate"]},
        }

    def record_bad_request(self) -> None:
        self._requests.increment(status="bad_request")

    def render_metrics(self) -> str:
        """Sync guardrail counters from the cluster, then render."""
        info = self.cluster.resilience_info()
        for counter, key in (
            (self._degraded, "degraded_requests"),
            (self._shed, "shed_requests"),
            (self._recovered, "recovered_sessions"),
            (self._corrupt, "corrupt_sessions"),
        ):
            delta = info[key] - counter.value()
            if delta > 0:
                counter.increment(delta)
        for target, state_name in info["breaker_states"].items():
            pod_id, _, stage = target.partition("/")
            self._breaker_state.set(
                _BREAKER_STATE_VALUES[BreakerState(state_name)],
                pod=pod_id,
                stage=stage,
            )
        rollout = self.cluster.rollout_info()
        for pod_id, version in rollout["pod_versions"].items():
            self._index_version.set(_version_number(version), pod=pod_id)
        self._rollout_state.set(
            _ROLLOUT_STATE_VALUES.get(rollout["rollout_state"], 0.0)
        )
        rollback_delta = rollout["rollback_count"] - self._rollbacks.value()
        if rollback_delta > 0:
            self._rollbacks.increment(rollback_delta)
        streaming = self.cluster.streaming
        if streaming is not None:
            self._streaming_lag.set(float(streaming.lag_events()))
            self._streaming_watermark.set(streaming.watermark_seconds())
            self._index_staleness.set(streaming.staleness_seconds())
        ring = self.cluster.ring_info()
        if ring["enabled"]:
            for pod_id, count in ring["leader_sessions"].items():
                self._ring_leader_sessions.set(float(count), pod=pod_id)
            for pod_id, count in ring["follower_sessions"].items():
                self._ring_follower_sessions.set(float(count), pod=pod_id)
            for link, lag in ring["replication_lag"].items():
                self._ring_replication_lag.set(float(lag), link=link)
            for counter, key in (
                (self._ring_hedges, "hedges_fired"),
                (self._ring_hedge_wins, "hedge_wins"),
                (self._ring_fenced_hedges, "fenced_hedges"),
                (self._ring_failovers, "failovers"),
            ):
                ring_delta = ring[key] - counter.value()
                if ring_delta > 0:
                    counter.increment(ring_delta)
        return self.metrics.render_prometheus()

    def health(self) -> dict:
        return {
            "status": "ok",
            "pods": self.cluster.router.pods,
            "index": self.cluster.rollout_info(),
            "streaming": self.cluster.streaming_info(),
            "ring": self.cluster.ring_info(),
            "requests_served": self.cluster.total_requests(),
            "result_cache": self.cluster.cache_info(),
            "resilience": {
                key: value
                for key, value in self.cluster.resilience_info().items()
                if key
                in (
                    "enabled",
                    "degraded_requests",
                    "shed_requests",
                    "recovered_sessions",
                    "corrupt_sessions",
                )
            },
        }


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP calls to the :class:`SerenadeService` on the server."""

    server_version = "Serenade/1.0"

    @property
    def service(self) -> SerenadeService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass  # keep test output quiet; metrics carry the signal

    def _send_json(self, status: int, body: dict) -> None:
        encoded = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(encoded)))
        self.end_headers()
        self.wfile.write(encoded)

    def do_GET(self) -> None:  # noqa: N802 (stdlib API)
        if self.path == "/healthz":
            self._send_json(200, self.service.health())
        elif self.path == "/metrics":
            text = self.service.render_metrics().encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; version=0.0.4")
            self.send_header("Content-Length", str(len(text)))
            self.end_headers()
            self.wfile.write(text)
        else:
            self._send_json(404, {"error": f"no route {self.path}"})

    def do_POST(self) -> None:  # noqa: N802 (stdlib API)
        routes = {
            "/v1/recommend": self.service.recommend,
            "/v1/recommend_batch": self.service.recommend_batch,
        }
        route = routes.get(self.path)
        if route is None:
            self._send_json(404, {"error": f"no route {self.path}"})
            return
        length = int(self.headers.get("Content-Length", "0"))
        raw = self.rfile.read(length) if length else b""
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else {}
        except (json.JSONDecodeError, UnicodeDecodeError):
            self.service.record_bad_request()
            self._send_json(400, {"error": "body is not valid JSON"})
            return
        try:
            self._send_json(200, route(payload))
        except BadRequest as error:
            self.service.record_bad_request()
            self._send_json(400, {"error": str(error)})
        except Overloaded as error:
            self.send_response(429)
            body = json.dumps(
                {"error": "overloaded", "retry_after_ms": error.retry_after_ms}
            ).encode("utf-8")
            self.send_header("Content-Type", "application/json")
            self.send_header(
                "Retry-After", str(max(1, round(error.retry_after_ms / 1000)))
            )
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)


class _Server(ThreadingHTTPServer):
    """Threaded server with a deep accept backlog.

    The stdlib default ``request_queue_size`` of 5 drops connections under
    the bursty frontend traffic this service exists to absorb.
    """

    request_queue_size = 128
    daemon_threads = True


class SerenadeHTTPServer:
    """A threaded HTTP server wrapping a serving cluster.

    Usage::

        server = SerenadeHTTPServer(cluster, port=0)  # 0 = ephemeral port
        server.start()
        ... requests against f"http://127.0.0.1:{server.port}" ...
        server.stop()
    """

    def __init__(
        self,
        cluster: ServingCluster,
        host: str = "127.0.0.1",
        port: int = 0,
        perf_clock: Clock | None = None,
    ) -> None:
        self.service = SerenadeService(cluster, perf_clock=perf_clock)
        self._httpd = _Server((host, port), _Handler)
        self._httpd.service = self.service  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    def start(self) -> "SerenadeHTTPServer":
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="serenade-http", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "SerenadeHTTPServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
