"""Colocated evolving-session storage (§4.1/§4.2).

Each recommendation server keeps the evolving sessions of *its* users in a
machine-local :class:`~repro.kvstore.KVStore`, so session reads and writes
never cross the network — the colocation decision at the heart of
Serenade's latency budget. Sessions expire after 30 minutes of inactivity,
exactly the paper's RocksDB configuration; every update refreshes the TTL.

Values are struct-packed item-id arrays, keyed by the external session key.

Robustness properties layered on the seed behaviour:

* **WAL-backed crash recovery** — give the store a ``wal_path`` and every
  update is logged before it is acknowledged; a pod that crashes and
  restarts on the same volume replays the log and recovers its evolving
  sessions (entries past their TTL are dropped during replay). The paper
  accepts losing this state; the WAL makes the trade-off a knob instead
  of a constant. :meth:`snapshot` compacts the log to the live set.
* **Corruption tolerance** — a corrupt stored value must never take the
  request path down. It is treated as an empty session, counted in
  :attr:`corrupt_sessions`, and logged once per store.
* **Replication tail** (``replicate=True``) — every mutation is also
  mirrored as a WAL-encoded record into an in-memory replication log with
  monotonically increasing byte offsets. A leader ships
  :meth:`tail_bytes` since a follower's acked offset; the follower
  :meth:`apply_tail`-s them. Records are full-value puts, so re-applying
  any suffix is idempotent, TTL-expired entries in a shipped tail are
  dropped at apply time, and a torn final record is truncated away —
  the same recovery matrix the on-disk WAL honours. :meth:`snapshot`
  rebases the log onto a snapshot of the live set so a follower that
  acked before the rebase resyncs from the snapshot instead of a lost
  byte range.
"""

from __future__ import annotations

import logging
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

from repro.core.types import ItemId
from repro.kvstore.store import Clock, KVStore
from repro.kvstore.wal import OP_DELETE, OP_PUT, WalRecord, iter_records

logger = logging.getLogger(__name__)

SESSION_TTL_SECONDS = 30 * 60  # the paper's 30-minute inactivity window

_ITEM = struct.Struct("<q")


def encode_items(items: Sequence[ItemId]) -> bytes:
    """Pack an item sequence into a fixed-width binary value."""
    return b"".join(_ITEM.pack(item) for item in items)


def decode_items(value: bytes) -> list[ItemId]:
    """Unpack a binary value back into the item sequence."""
    if len(value) % _ITEM.size:
        raise ValueError(f"corrupt session value of {len(value)} bytes")
    return [
        _ITEM.unpack_from(value, offset)[0]
        for offset in range(0, len(value), _ITEM.size)
    ]


@dataclass
class TailApplyReport:
    """What :meth:`SessionStore.apply_tail` did with a shipped byte range."""

    #: records applied to the local store (puts + deletes).
    applied: int = 0
    #: puts whose TTL had already expired when the tail arrived; dropped.
    expired_dropped: int = 0
    #: records for keys outside this replica's ownership filter; skipped.
    filtered: int = 0
    #: True when the range ended in a torn/corrupt record (truncated away).
    torn: bool = False


class SessionStore:
    """Evolving sessions in a local KV store with inactivity expiry."""

    def __init__(
        self,
        ttl_seconds: float = SESSION_TTL_SECONDS,
        max_items: int = 100,
        clock: Clock | None = None,
        wal_path: str | Path | None = None,
        sync_every: int = 0,
        replicate: bool = False,
    ) -> None:
        """Create a store for one serving pod.

        Args:
            ttl_seconds: inactivity window before a session is dropped.
            max_items: cap on stored history per session (the paper caps
                the evolving session length to bound prediction cost).
            clock: injectable time source for simulations.
            wal_path: write-ahead log for crash recovery; an existing log
                at this path is replayed on open. ``None`` = memory-only
                (the seed behaviour, and the paper's durability stance).
            sync_every: fsync the WAL every N appends (0 = flush only).
            replicate: mirror every mutation into the in-memory
                replication log so a ring leader can tail-ship state to
                its followers (see :mod:`repro.serving.ring`).
        """
        kwargs = {"default_ttl": ttl_seconds}
        if clock is not None:
            kwargs["clock"] = clock
        if wal_path is not None:
            kwargs["wal_path"] = wal_path
            kwargs["sync_every"] = sync_every
        self._store = KVStore(**kwargs)
        self.max_items = max_items
        self.wal_path = Path(wal_path) if wal_path is not None else None
        self.corrupt_sessions = 0
        self._corruption_logged = False
        # -- replication log (leader side of the tail-shipping protocol) --
        self._replicating = replicate
        #: records appended after the last rebase, WAL-encoded.
        self._repl_log = bytearray()
        #: offset where ``_repl_log`` starts in the global offset stream.
        self._repl_base = 0
        #: snapshot of the live set at the last rebase (served to any
        #: follower whose acked offset predates ``_repl_base``).
        self._repl_snapshot = b""

    # -- decoding -------------------------------------------------------------

    def _decode_tolerant(self, session_key: str, value: bytes) -> list[ItemId]:
        """Decode a stored value; a corrupt one reads as an empty session."""
        try:
            return decode_items(value)
        except ValueError:
            self.corrupt_sessions += 1
            if not self._corruption_logged:
                self._corruption_logged = True
                logger.warning(
                    "corrupt session value for %r (%d bytes); treating as "
                    "empty (further corruptions counted, not logged)",
                    session_key,
                    len(value),
                )
            return []

    # -- mutation -------------------------------------------------------------

    def _mirror(self, record: WalRecord) -> None:
        if self._replicating:
            self._repl_log += record.encode()

    def append_click(self, session_key: str, item_id: ItemId) -> list[ItemId]:
        """Record one interaction and return the updated item history.

        This is the read-modify-write executed for every incoming request
        (step 2 in Figure 1); it refreshes the session's TTL.
        """
        key = session_key.encode("utf-8")
        value = self._store.get(key)
        items = (
            self._decode_tolerant(session_key, value) if value is not None else []
        )
        items.append(item_id)
        if len(items) > self.max_items:
            del items[: len(items) - self.max_items]
        encoded = encode_items(items)
        expire_at = self._store.put(key, encoded)
        self._mirror(WalRecord(OP_PUT, key, encoded, expire_at))
        return items

    def put_session(
        self, session_key: str, items: Sequence[ItemId]
    ) -> list[ItemId]:
        """Install a full session value (rebalance / drain snapshot path).

        Unlike :meth:`append_click` this replaces the whole history at
        once — the "WAL snapshot" half of snapshot-plus-catch-up-tail
        state transfer. The ``max_items`` cap and TTL refresh apply as
        they would have on the source pod.
        """
        kept = list(items)[-self.max_items :]
        key = session_key.encode("utf-8")
        encoded = encode_items(kept)
        expire_at = self._store.put(key, encoded)
        self._mirror(WalRecord(OP_PUT, key, encoded, expire_at))
        return kept

    def drop_session(self, session_key: str) -> bool:
        """Forget a session immediately (e.g., consent revocation)."""
        key = session_key.encode("utf-8")
        existed = self._store.delete(key)
        self._mirror(WalRecord(OP_DELETE, key))
        return existed

    # -- replication tail -----------------------------------------------------

    @property
    def replication_offset(self) -> int:
        """Byte offset at the head of the replication log (monotonic)."""
        return self._repl_base + len(self._repl_log)

    def tail_bytes(self, since: int) -> bytes:
        """The WAL-encoded record range from ``since`` to the head.

        ``since`` is the follower's acked offset. A follower that acked
        before the last :meth:`snapshot` rebase receives the snapshot
        plus everything after it — a full resync, correct because every
        record is a full-value put (last-writer-wins by byte order).
        """
        if since >= self.replication_offset:
            return b""
        if since >= self._repl_base:
            return bytes(self._repl_log[since - self._repl_base :])
        return self._repl_snapshot + bytes(self._repl_log)

    def apply_tail(
        self,
        data: bytes,
        key_filter: Callable[[str], bool] | None = None,
    ) -> TailApplyReport:
        """Apply a shipped record range to this (follower) store.

        The apply contract mirrors WAL replay:

        * records are full-value puts, so duplicate delivery at the
          replication-offset boundary re-applies idempotently;
        * a put whose ``expire_at`` has already passed is dropped (the
          session died of inactivity while the tail was in flight);
        * a torn final record truncates silently — the shipped prefix is
          applied, the torn suffix re-ships on the next round;
        * ``key_filter`` keeps only the keys this replica owns on the
          ring (other leaders' keys flow through the same per-pod log).

        Applied records are mirrored into this store's own replication
        log, so a promoted follower can in turn tail-ship to *its*
        followers without a rebuild.
        """
        report = TailApplyReport()
        consumed = 0
        now = self._store.now()
        for record in iter_records(data):
            consumed += len(record.encode())
            key_str = record.key.decode("utf-8")
            if key_filter is not None and not key_filter(key_str):
                report.filtered += 1
                continue
            if record.op == OP_DELETE:
                self._store.delete(record.key)
                self._mirror(record)
                report.applied += 1
                continue
            if record.expire_at != 0.0 and record.expire_at <= now:
                report.expired_dropped += 1
                continue
            ttl = record.expire_at - now if record.expire_at != 0.0 else None
            self._store.put(record.key, record.value, ttl=ttl)
            self._mirror(
                WalRecord(OP_PUT, record.key, record.value, record.expire_at)
            )
            report.applied += 1
        report.torn = consumed < len(data)
        return report

    # -- reads ----------------------------------------------------------------

    def get_session(self, session_key: str) -> list[ItemId] | None:
        """Current item history, or None if unknown/expired.

        A corrupt stored value is returned as an empty history rather than
        raising — the request path must survive bad bytes on disk.
        """
        value = self._store.get(session_key.encode("utf-8"))
        if value is None:
            return None
        return self._decode_tolerant(session_key, value)

    def sweep_expired(self) -> int:
        """Evict idle sessions; returns how many were dropped."""
        return self._store.sweep()

    def session_keys(self) -> list[str]:
        """Live session keys (decoded)."""
        return [key.decode("utf-8") for key in self._store.keys()]

    def as_dict(self) -> dict[str, list[ItemId]]:
        """Snapshot of all live sessions (for recovery verification)."""
        out: dict[str, list[ItemId]] = {}
        for key in self.session_keys():
            items = self.get_session(key)
            if items is not None:
                out[key] = items
        return out

    # -- maintenance ----------------------------------------------------------

    def snapshot(self) -> int:
        """Compact the WAL down to the live session set.

        Returns the number of live sessions in the snapshot. A no-op for
        memory-only stores. With replication on, the in-memory log is
        rebased onto the same live-set snapshot, bounding its growth:
        in-sync followers keep tailing from the new base; lagging ones
        resync from the snapshot.
        """
        self._store.compact()
        keys = self.session_keys()
        if self._replicating:
            snapshot = bytearray()
            for session_key in keys:
                key = session_key.encode("utf-8")
                value = self._store.get(key)
                if value is None:
                    continue
                expire_at = self._store.put(key, value)
                snapshot += WalRecord(OP_PUT, key, value, expire_at).encode()
            self._repl_base = self.replication_offset
            self._repl_log = bytearray()
            self._repl_snapshot = bytes(snapshot)
        return len(keys)

    def close(self, delete_wal: bool = False) -> None:
        """Release the WAL handle; optionally delete the log.

        ``delete_wal=True`` is the graceful-decommission path (planned
        scale-down): the pod's sessions are gone for good, so a later pod
        with the same id must not resurrect them. In a replicated ring
        the coordinator hands the session state to the new owners
        *before* calling this (see ``RingCoordinator.decommission``).
        """
        self._store.close()
        if delete_wal and self.wal_path is not None:
            self.wal_path.unlink(missing_ok=True)

    def __len__(self) -> int:
        return len(self._store)
