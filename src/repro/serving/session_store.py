"""Colocated evolving-session storage (§4.1/§4.2).

Each recommendation server keeps the evolving sessions of *its* users in a
machine-local :class:`~repro.kvstore.KVStore`, so session reads and writes
never cross the network — the colocation decision at the heart of
Serenade's latency budget. Sessions expire after 30 minutes of inactivity,
exactly the paper's RocksDB configuration; every update refreshes the TTL.

Values are struct-packed item-id arrays, keyed by the external session key.
"""

from __future__ import annotations

import struct
from typing import Sequence

from repro.core.types import ItemId
from repro.kvstore.store import Clock, KVStore

SESSION_TTL_SECONDS = 30 * 60  # the paper's 30-minute inactivity window

_ITEM = struct.Struct("<q")


def encode_items(items: Sequence[ItemId]) -> bytes:
    """Pack an item sequence into a fixed-width binary value."""
    return b"".join(_ITEM.pack(item) for item in items)


def decode_items(value: bytes) -> list[ItemId]:
    """Unpack a binary value back into the item sequence."""
    if len(value) % _ITEM.size:
        raise ValueError(f"corrupt session value of {len(value)} bytes")
    return [
        _ITEM.unpack_from(value, offset)[0]
        for offset in range(0, len(value), _ITEM.size)
    ]


class SessionStore:
    """Evolving sessions in a local KV store with inactivity expiry."""

    def __init__(
        self,
        ttl_seconds: float = SESSION_TTL_SECONDS,
        max_items: int = 100,
        clock: Clock | None = None,
    ) -> None:
        """Create a store for one serving pod.

        Args:
            ttl_seconds: inactivity window before a session is dropped.
            max_items: cap on stored history per session (the paper caps
                the evolving session length to bound prediction cost).
            clock: injectable time source for simulations.
        """
        kwargs = {"default_ttl": ttl_seconds}
        if clock is not None:
            kwargs["clock"] = clock
        self._store = KVStore(**kwargs)
        self.max_items = max_items

    def append_click(self, session_key: str, item_id: ItemId) -> list[ItemId]:
        """Record one interaction and return the updated item history.

        This is the read-modify-write executed for every incoming request
        (step 2 in Figure 1); it refreshes the session's TTL.
        """
        key = session_key.encode("utf-8")
        value = self._store.get(key)
        items = decode_items(value) if value is not None else []
        items.append(item_id)
        if len(items) > self.max_items:
            del items[: len(items) - self.max_items]
        self._store.put(key, encode_items(items))
        return items

    def get_session(self, session_key: str) -> list[ItemId] | None:
        """Current item history, or None if unknown/expired."""
        value = self._store.get(session_key.encode("utf-8"))
        return decode_items(value) if value is not None else None

    def drop_session(self, session_key: str) -> bool:
        """Forget a session immediately (e.g., consent revocation)."""
        return self._store.delete(session_key.encode("utf-8"))

    def sweep_expired(self) -> int:
        """Evict idle sessions; returns how many were dropped."""
        return self._store.sweep()

    def __len__(self) -> int:
        return len(self._store)
