"""Colocated evolving-session storage (§4.1/§4.2).

Each recommendation server keeps the evolving sessions of *its* users in a
machine-local :class:`~repro.kvstore.KVStore`, so session reads and writes
never cross the network — the colocation decision at the heart of
Serenade's latency budget. Sessions expire after 30 minutes of inactivity,
exactly the paper's RocksDB configuration; every update refreshes the TTL.

Values are struct-packed item-id arrays, keyed by the external session key.

Two robustness properties layered on the seed behaviour:

* **WAL-backed crash recovery** — give the store a ``wal_path`` and every
  update is logged before it is acknowledged; a pod that crashes and
  restarts on the same volume replays the log and recovers its evolving
  sessions (entries past their TTL are dropped during replay). The paper
  accepts losing this state; the WAL makes the trade-off a knob instead
  of a constant. :meth:`snapshot` compacts the log to the live set.
* **Corruption tolerance** — a corrupt stored value must never take the
  request path down. It is treated as an empty session, counted in
  :attr:`corrupt_sessions`, and logged once per store.
"""

from __future__ import annotations

import logging
import struct
from pathlib import Path
from typing import Sequence

from repro.core.types import ItemId
from repro.kvstore.store import Clock, KVStore

logger = logging.getLogger(__name__)

SESSION_TTL_SECONDS = 30 * 60  # the paper's 30-minute inactivity window

_ITEM = struct.Struct("<q")


def encode_items(items: Sequence[ItemId]) -> bytes:
    """Pack an item sequence into a fixed-width binary value."""
    return b"".join(_ITEM.pack(item) for item in items)


def decode_items(value: bytes) -> list[ItemId]:
    """Unpack a binary value back into the item sequence."""
    if len(value) % _ITEM.size:
        raise ValueError(f"corrupt session value of {len(value)} bytes")
    return [
        _ITEM.unpack_from(value, offset)[0]
        for offset in range(0, len(value), _ITEM.size)
    ]


class SessionStore:
    """Evolving sessions in a local KV store with inactivity expiry."""

    def __init__(
        self,
        ttl_seconds: float = SESSION_TTL_SECONDS,
        max_items: int = 100,
        clock: Clock | None = None,
        wal_path: str | Path | None = None,
        sync_every: int = 0,
    ) -> None:
        """Create a store for one serving pod.

        Args:
            ttl_seconds: inactivity window before a session is dropped.
            max_items: cap on stored history per session (the paper caps
                the evolving session length to bound prediction cost).
            clock: injectable time source for simulations.
            wal_path: write-ahead log for crash recovery; an existing log
                at this path is replayed on open. ``None`` = memory-only
                (the seed behaviour, and the paper's durability stance).
            sync_every: fsync the WAL every N appends (0 = flush only).
        """
        kwargs = {"default_ttl": ttl_seconds}
        if clock is not None:
            kwargs["clock"] = clock
        if wal_path is not None:
            kwargs["wal_path"] = wal_path
            kwargs["sync_every"] = sync_every
        self._store = KVStore(**kwargs)
        self.max_items = max_items
        self.wal_path = Path(wal_path) if wal_path is not None else None
        self.corrupt_sessions = 0
        self._corruption_logged = False

    def _decode_tolerant(self, session_key: str, value: bytes) -> list[ItemId]:
        """Decode a stored value; a corrupt one reads as an empty session."""
        try:
            return decode_items(value)
        except ValueError:
            self.corrupt_sessions += 1
            if not self._corruption_logged:
                self._corruption_logged = True
                logger.warning(
                    "corrupt session value for %r (%d bytes); treating as "
                    "empty (further corruptions counted, not logged)",
                    session_key,
                    len(value),
                )
            return []

    def append_click(self, session_key: str, item_id: ItemId) -> list[ItemId]:
        """Record one interaction and return the updated item history.

        This is the read-modify-write executed for every incoming request
        (step 2 in Figure 1); it refreshes the session's TTL.
        """
        key = session_key.encode("utf-8")
        value = self._store.get(key)
        items = (
            self._decode_tolerant(session_key, value) if value is not None else []
        )
        items.append(item_id)
        if len(items) > self.max_items:
            del items[: len(items) - self.max_items]
        self._store.put(key, encode_items(items))
        return items

    def get_session(self, session_key: str) -> list[ItemId] | None:
        """Current item history, or None if unknown/expired.

        A corrupt stored value is returned as an empty history rather than
        raising — the request path must survive bad bytes on disk.
        """
        value = self._store.get(session_key.encode("utf-8"))
        if value is None:
            return None
        return self._decode_tolerant(session_key, value)

    def drop_session(self, session_key: str) -> bool:
        """Forget a session immediately (e.g., consent revocation)."""
        return self._store.delete(session_key.encode("utf-8"))

    def sweep_expired(self) -> int:
        """Evict idle sessions; returns how many were dropped."""
        return self._store.sweep()

    def session_keys(self) -> list[str]:
        """Live session keys (decoded)."""
        return [key.decode("utf-8") for key in self._store.keys()]

    def as_dict(self) -> dict[str, list[ItemId]]:
        """Snapshot of all live sessions (for recovery verification)."""
        out: dict[str, list[ItemId]] = {}
        for key in self.session_keys():
            items = self.get_session(key)
            if items is not None:
                out[key] = items
        return out

    def snapshot(self) -> int:
        """Compact the WAL down to the live session set.

        Returns the number of live sessions in the snapshot. A no-op for
        memory-only stores.
        """
        self._store.compact()
        return len(self.session_keys())

    def close(self, delete_wal: bool = False) -> None:
        """Release the WAL handle; optionally delete the log.

        ``delete_wal=True`` is the graceful-decommission path (planned
        scale-down): the pod's sessions are gone for good, so a later pod
        with the same id must not resurrect them.
        """
        self._store.close()
        if delete_wal and self.wal_path is not None:
            self.wal_path.unlink(missing_ok=True)

    def __len__(self) -> int:
        return len(self._store)
