"""Serving variants: how much session history feeds the prediction.

The A/B test of §5.2.3 compares two Serenade variants — *serenade-hist*
uses the last two interactions of the evolving session, *serenade-recent*
only the most recent one. Depersonalised serving (§4.2, for users who
withhold consent) uses only the item currently displayed, ignoring stored
state entirely. Variants are pure view functions over the session history,
so a single stateful server can serve all of them per-request.
"""

from __future__ import annotations

import enum
from typing import Sequence

from repro.core.types import ItemId


class ServingVariant(enum.Enum):
    """Which slice of the evolving session the recommender sees."""

    FULL = "full"
    HIST = "serenade-hist"
    RECENT = "serenade-recent"
    DEPERSONALISED = "depersonalised"


def session_view(
    items: Sequence[ItemId],
    variant: ServingVariant,
    current_item: ItemId | None = None,
) -> list[ItemId]:
    """Project the stored session onto the variant's visible history.

    ``current_item`` is the item of the triggering request; it is the only
    input for DEPERSONALISED serving (stored state must not be used without
    consent).
    """
    if variant is ServingVariant.DEPERSONALISED:
        if current_item is None:
            raise ValueError("depersonalised serving needs the current item")
        return [current_item]
    if variant is ServingVariant.RECENT:
        return list(items[-1:])
    if variant is ServingVariant.HIST:
        return list(items[-2:])
    return list(items)
