"""Operational cost model (§7: "less than 30 euros per day").

The paper closes on economics: Serenade's serving fleet is two pods on
shared-core instances plus a 40-minute daily Spark job on 75 machines —
under 30 €/day — while a neural ranker costs "at least an order of
magnitude more" and needs GPUs. This module prices a deployment from the
same ingredients so the comparison can be recomputed under different
cloud prices.

Prices default to public GCP on-demand list prices of the paper's era
(eur/hour, europe-west): they are parameters, not facts baked into code.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MachinePrices:
    """Hourly prices for the machine types the paper names."""

    serving_core_hour: float = 0.04  # one vCPU on n1-standard (shared pods)
    index_build_machine_hour: float = 0.47  # n1-highmem-8
    gpu_machine_hour: float = 2.50  # GPU training node

    def validate(self) -> None:
        if min(
            self.serving_core_hour,
            self.index_build_machine_hour,
            self.gpu_machine_hour,
        ) <= 0:
            raise ValueError("prices must be positive")


@dataclass(frozen=True)
class DeploymentCost:
    """Daily cost of one recommender deployment, by component."""

    name: str
    serving_eur_per_day: float
    training_eur_per_day: float

    @property
    def total_eur_per_day(self) -> float:
        return self.serving_eur_per_day + self.training_eur_per_day

    def render(self) -> str:
        return (
            f"{self.name}: serving {self.serving_eur_per_day:.2f} eur/day + "
            f"training {self.training_eur_per_day:.2f} eur/day = "
            f"{self.total_eur_per_day:.2f} eur/day"
        )


def serenade_cost(
    prices: MachinePrices = MachinePrices(),
    serving_pods: int = 2,
    cores_per_pod: int = 3,
    index_build_machines: int = 75,
    index_build_minutes: float = 40.0,
) -> DeploymentCost:
    """Price the paper's deployment: stateful pods + daily batch build."""
    prices.validate()
    if serving_pods < 1 or cores_per_pod < 1 or index_build_machines < 0:
        raise ValueError("deployment shape values must be positive")
    serving = serving_pods * cores_per_pod * 24.0 * prices.serving_core_hour
    training = (
        index_build_machines
        * (index_build_minutes / 60.0)
        * prices.index_build_machine_hour
    )
    return DeploymentCost(
        name="serenade",
        serving_eur_per_day=serving,
        training_eur_per_day=training,
    )


def neural_ranker_cost(
    prices: MachinePrices = MachinePrices(),
    serving_pods: int = 4,
    cores_per_pod: int = 8,
    gpu_machines: int = 8,
    training_hours: float = 12.0,
) -> DeploymentCost:
    """Price a daily-retrained neural ranker.

    Default shape: model inference is an order of magnitude heavier per
    request than a kNN lookup (bigger CPU fleet), and daily retraining
    occupies a GPU fleet for half a day — the regime the paper describes
    for its neural learning-to-rank comparison point.
    """
    prices.validate()
    serving = serving_pods * cores_per_pod * 24.0 * prices.serving_core_hour
    training = gpu_machines * training_hours * prices.gpu_machine_hour
    return DeploymentCost(
        name="neural-ranker",
        serving_eur_per_day=serving,
        training_eur_per_day=training,
    )


def cost_comparison(
    prices: MachinePrices = MachinePrices(), **neural_kwargs
) -> str:
    """The §7 comparison as a small report."""
    serenade = serenade_cost(prices)
    neural = neural_ranker_cost(prices, **neural_kwargs)
    ratio = neural.total_eur_per_day / serenade.total_eur_per_day
    return "\n".join(
        [
            serenade.render(),
            neural.render(),
            f"neural / serenade cost ratio: {ratio:.1f}x "
            "(paper: at least an order of magnitude)",
        ]
    )
