"""Load generation: request streams for the load test and the A/B test.

The paper's load test replays historical traffic at more than 1,000
requests per second for several hours (§5.2.2); the A/B test sees a
diurnal load between 200 and 600 requests per second for three weeks
(§5.2.3, Figure 3c). This module produces both shapes as deterministic
streams of :class:`TimedRequest` events.

Executing three weeks of traffic request-for-request is pointless on one
machine, so generators support a ``sample_fraction``: the *nominal* rate
drives the arrival process, but only a thinned sample is emitted; the
timeline aggregator scales reported throughput back up while latency
percentiles are estimated from the executed sample.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from repro.core.types import ItemId
from repro.data.clicklog import ClickLog
from repro.serving.server import RecommendationRequest
from repro.serving.variants import ServingVariant


@dataclass(frozen=True)
class TimedRequest:
    """A recommendation request with its (simulated) arrival time."""

    arrival_time: float
    request: RecommendationRequest


RateProfile = Callable[[float], float]
"""Nominal requests-per-second as a function of simulated time (seconds)."""


def constant_rate(rps: float) -> RateProfile:
    """A flat load profile."""
    return lambda _t: rps


def ramp_rate(start_rps: float, end_rps: float, duration: float) -> RateProfile:
    """Linear ramp from start to end over ``duration`` (the load test)."""

    def profile(t: float) -> float:
        if t >= duration:
            return end_rps
        return start_rps + (end_rps - start_rps) * t / duration

    return profile


def spike_rate(
    base_rps: float, spike_rps: float, spike_start: float, spike_duration: float
) -> RateProfile:
    """A flash-crowd profile: flat base load with one rectangular spike.

    The shape that exercises admission control — a televised ad or a
    push notification multiplies traffic for a short window, and the
    cluster must shed rather than queue itself past the SLA.
    """

    def profile(t: float) -> float:
        if spike_start <= t < spike_start + spike_duration:
            return spike_rps
        return base_rps

    return profile


def diurnal_rate(
    low_rps: float, high_rps: float, peak_hour: float = 20.0
) -> RateProfile:
    """A day-periodic profile between ``low_rps`` and ``high_rps``.

    Follows the Figure 3(c) shape: quiet at night, peaking in the evening.
    """

    def profile(t: float) -> float:
        hour = (t / 3600.0) % 24.0
        # Cosine bump centred on the peak hour.
        phase = math.cos((hour - peak_hour) / 24.0 * 2.0 * math.pi)
        return low_rps + (high_rps - low_rps) * (phase + 1.0) / 2.0

    return profile


class TrafficGenerator:
    """Synthesizes request arrivals from a rate profile and a click source.

    Sessions are drawn from a click log (replayed traffic): each generated
    "user" walks one historical session's items in order, issuing one
    request per click. Deterministic given the seed.
    """

    def __init__(
        self,
        source: ClickLog,
        variant: ServingVariant = ServingVariant.HIST,
        seed: int = 7,
    ) -> None:
        sequences = [
            items
            for items in source.session_item_sequences().values()
            if len(items) >= 2
        ]
        if not sequences:
            raise ValueError("click source has no usable sessions")
        self._sequences: list[list[ItemId]] = sequences
        self._variant = variant
        self._rng = np.random.default_rng(seed)

    def generate(
        self,
        profile: RateProfile,
        duration: float,
        sample_fraction: float = 1.0,
        time_step: float = 1.0,
    ) -> Iterator[TimedRequest]:
        """Yield arrivals over ``[0, duration)`` seconds of simulated time.

        Poisson arrivals at the (thinned) nominal rate; each arrival either
        starts a fresh session or continues an active one, mirroring how
        real traffic interleaves sessions.
        """
        if not 0.0 < sample_fraction <= 1.0:
            raise ValueError("sample_fraction must be in (0, 1]")
        rng = self._rng
        active: dict[str, tuple[list[ItemId], int]] = {}
        session_counter = 0
        now = 0.0
        while now < duration:
            rate = profile(now) * sample_fraction
            expected = rate * time_step
            arrivals = rng.poisson(expected) if expected > 0 else 0
            offsets = np.sort(rng.uniform(0.0, time_step, size=arrivals))
            for offset in offsets:
                arrival_time = now + float(offset)
                # Continue an active session 70% of the time if any exist.
                if active and rng.random() < 0.7:
                    session_key = str(
                        rng.choice(np.fromiter(active, dtype=object))
                    )
                else:
                    sequence = self._sequences[
                        int(rng.integers(len(self._sequences)))
                    ]
                    session_key = f"s{session_counter}"
                    session_counter += 1
                    active[session_key] = (sequence, 0)
                sequence, position = active[session_key]
                yield TimedRequest(
                    arrival_time,
                    RecommendationRequest(
                        session_key=session_key,
                        item_id=sequence[position],
                        variant=self._variant,
                    ),
                )
                position += 1
                if position >= len(sequence):
                    del active[session_key]
                else:
                    active[session_key] = (sequence, position)
            now += time_step
