"""Statistical significance testing for A/B outcomes (§5.2.3).

The paper reports that both Serenade variants' engagement uplifts over the
legacy system are "statistically significant". We use the standard
two-proportion z-test on conversion counts, plus Wilson confidence
intervals for per-arm rates — implemented directly (no scipy dependency in
the library; scipy is only used to cross-check in the test suite).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def _normal_sf(z: float) -> float:
    """Survival function of the standard normal, via erfc."""
    return 0.5 * math.erfc(z / math.sqrt(2.0))


@dataclass(frozen=True)
class ZTestResult:
    """Outcome of a two-proportion z-test."""

    z_score: float
    p_value: float
    rate_a: float
    rate_b: float

    @property
    def relative_uplift(self) -> float:
        """(rate_b - rate_a) / rate_a — how the paper quotes +2.85 %."""
        if self.rate_a == 0:
            raise ZeroDivisionError("control arm has zero conversion rate")
        return (self.rate_b - self.rate_a) / self.rate_a

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha


def two_proportion_ztest(
    conversions_a: int, exposures_a: int, conversions_b: int, exposures_b: int
) -> ZTestResult:
    """Two-sided two-proportion z-test (pooled variance).

    Arm A is the control (legacy), arm B the treatment (Serenade).
    """
    if exposures_a <= 0 or exposures_b <= 0:
        raise ValueError("both arms need at least one exposure")
    if not 0 <= conversions_a <= exposures_a:
        raise ValueError("conversions_a out of range")
    if not 0 <= conversions_b <= exposures_b:
        raise ValueError("conversions_b out of range")
    rate_a = conversions_a / exposures_a
    rate_b = conversions_b / exposures_b
    pooled = (conversions_a + conversions_b) / (exposures_a + exposures_b)
    variance = pooled * (1.0 - pooled) * (1.0 / exposures_a + 1.0 / exposures_b)
    if variance == 0.0:
        return ZTestResult(0.0, 1.0, rate_a, rate_b)
    z = (rate_b - rate_a) / math.sqrt(variance)
    p = 2.0 * _normal_sf(abs(z))
    return ZTestResult(z_score=z, p_value=p, rate_a=rate_a, rate_b=rate_b)


def wilson_interval(
    conversions: int, exposures: int, confidence: float = 0.95
) -> tuple[float, float]:
    """Wilson score interval for a conversion rate."""
    if exposures <= 0:
        raise ValueError("exposures must be positive")
    if not 0 <= conversions <= exposures:
        raise ValueError("conversions out of range")
    # z for the two-sided confidence level (0.95 -> 1.9600).
    z = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}.get(confidence)
    if z is None:
        raise ValueError("confidence must be one of 0.90, 0.95, 0.99")
    rate = conversions / exposures
    denominator = 1.0 + z * z / exposures
    centre = rate + z * z / (2.0 * exposures)
    margin = z * math.sqrt(
        rate * (1.0 - rate) / exposures + z * z / (4.0 * exposures * exposures)
    )
    return ((centre - margin) / denominator, (centre + margin) / denominator)
