"""Fault injection for the serving cluster (§4.2's fault-tolerance story).

The paper's colocation design trades durability of session state for
latency: "the session data could be temporarily lost in cases of machine
failures or elastic scaling", which is acceptable because sessions are
short-lived and the recommender "would quickly collect new interactions".

This module makes that claim testable. A :class:`ChaosSchedule` injects
pod kills and restarts at chosen points of a simulated load test, and the
:class:`ChaosReport` quantifies exactly what the paper argues is tolerable:

* how many live sessions were on the killed pod (lost state);
* how routing redistributes those sessions to surviving pods;
* how quickly re-routed sessions rebuild enough history to receive
  session-aware recommendations again (the "recovery horizon").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.cluster.loadgen import TimedRequest
from repro.cluster.metrics import LatencyRecorder
from repro.serving.app import ServingCluster


@dataclass(frozen=True)
class PodKill:
    """Kill (and optionally later restart) one pod at a point in time."""

    at_time: float
    pod_id: str
    restart_at: float | None = None

    def validate(self) -> None:
        if self.restart_at is not None and self.restart_at <= self.at_time:
            raise ValueError("restart_at must be after at_time")


@dataclass
class ChaosEventOutcome:
    """What one injected failure actually did."""

    at_time: float
    pod_id: str
    sessions_lost: int
    restarted_at: float | None = None


@dataclass
class ChaosReport:
    """Aggregate outcome of a chaos run."""

    total_requests: int
    failed_requests: int
    events: list[ChaosEventOutcome]
    latency: LatencyRecorder
    # Requests whose session state was lost and that were answered with
    # less history than the client had actually generated.
    degraded_requests: int = 0
    # Of those, how many had already re-accumulated >= 2 items of history
    # (i.e. full serenade-hist context) by the time they were served.
    recovered_requests: int = 0
    session_moves: dict[str, str] = field(default_factory=dict)

    @property
    def availability(self) -> float:
        if self.total_requests == 0:
            return 1.0
        return 1.0 - self.failed_requests / self.total_requests


class ChaosInjector:
    """Drives a cluster through arrivals while killing/restarting pods.

    Unlike :class:`~repro.cluster.simulation.ClusterSimulator`, which
    models queueing, the injector focuses on state: every request is
    served for real, and the injector tracks per-session history length
    to detect degradation after a kill.
    """

    def __init__(self, cluster: ServingCluster, kills: Iterable[PodKill]) -> None:
        self.cluster = cluster
        self.kills = sorted(kills, key=lambda kill: kill.at_time)
        for kill in self.kills:
            kill.validate()

    def run(self, arrivals: Iterable[TimedRequest]) -> ChaosReport:
        pending = list(self.kills)
        restarts: list[tuple[float, str]] = []
        latency = LatencyRecorder()
        report = ChaosReport(
            total_requests=0, failed_requests=0, events=[], latency=latency
        )
        # Ground truth: how many clicks each session has actually issued.
        true_history: dict[str, int] = {}
        owner_before_kill: dict[str, str] = {}

        for timed in arrivals:
            now = timed.arrival_time
            self._apply_due_restarts(restarts, now, report)
            self._apply_due_kills(pending, restarts, now, report, owner_before_kill)

            request = timed.request
            true_history[request.session_key] = (
                true_history.get(request.session_key, 0) + 1
            )
            report.total_requests += 1
            try:
                pod_id = self.cluster.router.route(request.session_key)
                response = self.cluster.pods[pod_id].handle(request)
            except Exception:
                report.failed_requests += 1
                continue
            latency.record(response.service_seconds)

            # Detect lost state: the pod's stored history is shorter than
            # what the session actually generated.
            stored = self.cluster.pods[pod_id].sessions.get_session(
                request.session_key
            )
            stored_length = len(stored) if stored else 0
            if stored_length < min(
                true_history[request.session_key],
                self.cluster.pods[pod_id].sessions.max_items,
            ):
                report.degraded_requests += 1
                if stored_length >= 2:
                    report.recovered_requests += 1
            if request.session_key in owner_before_kill:
                report.session_moves[request.session_key] = pod_id
        return report

    def _apply_due_kills(
        self, pending, restarts, now, report, owner_before_kill
    ) -> None:
        while pending and pending[0].at_time <= now:
            kill = pending.pop(0)
            if kill.pod_id not in self.cluster.pods:
                raise ValueError(f"cannot kill unknown pod {kill.pod_id!r}")
            victim = self.cluster.pods[kill.pod_id]
            sessions_lost = len(victim.sessions)
            for session_key in list(self._sessions_of(victim)):
                owner_before_kill[session_key] = kill.pod_id
            self.cluster.router.remove_pod(kill.pod_id)
            del self.cluster.pods[kill.pod_id]
            report.events.append(
                ChaosEventOutcome(
                    at_time=kill.at_time,
                    pod_id=kill.pod_id,
                    sessions_lost=sessions_lost,
                    restarted_at=kill.restart_at,
                )
            )
            if kill.restart_at is not None:
                restarts.append((kill.restart_at, kill.pod_id))
                restarts.sort()

    def _apply_due_restarts(self, restarts, now, report) -> None:
        del report
        while restarts and restarts[0][0] <= now:
            _, pod_id = restarts.pop(0)
            # A restarted pod comes back empty (state was machine-local).
            self.cluster._spawn_pod(  # noqa: SLF001 - deliberate: chaos is
                pod_id,  # part of the cluster's own test surface
                self.cluster._rules,
                self.cluster._clock,
                self.cluster._record_service_times,
            )

    @staticmethod
    def _sessions_of(server) -> list[str]:
        return [key.decode("utf-8") for key in server.sessions._store.keys()]
