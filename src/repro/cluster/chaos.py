"""Fault injection for the serving cluster (§4.2's fault-tolerance story).

The paper's colocation design trades durability of session state for
latency: "the session data could be temporarily lost in cases of machine
failures or elastic scaling", which is acceptable because sessions are
short-lived and the recommender "would quickly collect new interactions".

This module makes that claim testable — and, with the WAL-backed session
stores, measurable in both directions. A :class:`ChaosSchedule` injects
pod kills and restarts at chosen points of a simulated load test, and the
:class:`ChaosReport` quantifies exactly what the paper argues is tolerable:

* how many live sessions were on the killed pod (lost state);
* how routing redistributes those sessions to surviving pods (kills go
  through :meth:`ServingCluster.kill_pod`, so the dead pod's ring entry
  is healed lazily by the re-routing request path, like production);
* how quickly re-routed sessions rebuild enough history to receive
  session-aware recommendations again (the "recovery horizon");
* with a cluster ``wal_dir``, how many sessions a restarted pod recovers
  by WAL replay (``recovered_sessions``) — run the same schedule with and
  without the WAL to price the durability knob.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.cluster.loadgen import TimedRequest
from repro.cluster.metrics import LatencyRecorder
from repro.serving.app import ServingCluster
from repro.serving.resilience import Overloaded


@dataclass(frozen=True)
class PodKill:
    """Kill (and optionally later restart) one pod at a point in time."""

    at_time: float
    pod_id: str
    restart_at: float | None = None

    def validate(self) -> None:
        if self.restart_at is not None and self.restart_at <= self.at_time:
            raise ValueError("restart_at must be after at_time")


@dataclass(frozen=True)
class PodSlowdown:
    """Make one pod a straggler: its predictions stall for a fixed delay.

    Models the tail-at-scale reality (GC pause, noisy neighbour, cold
    cache) that request hedging exists to absorb. The stall applies from
    ``at_time`` until ``until`` (forever if ``None``) and burns virtual
    time under simulation, so hedge races stay deterministic.
    """

    at_time: float
    pod_id: str
    delay_seconds: float
    until: float | None = None

    def validate(self) -> None:
        if self.delay_seconds <= 0.0:
            raise ValueError("delay_seconds must be > 0")
        if self.until is not None and self.until <= self.at_time:
            raise ValueError("until must be after at_time")


@dataclass(frozen=True)
class NetworkPartition:
    """Cut the replication link between two pods (requires a ring cluster).

    Both pods keep serving; only leader↔follower tail shipping across the
    pair stops. Keys appended during the partition make the follower's
    copy stale, which the coordinator fences: the stale replica is never
    hedged to for those keys, and loses them on promotion rather than
    serving a rewound session.
    """

    at_time: float
    pod_a: str
    pod_b: str
    heal_at: float | None = None

    def validate(self) -> None:
        if self.pod_a == self.pod_b:
            raise ValueError("cannot partition a pod from itself")
        if self.heal_at is not None and self.heal_at <= self.at_time:
            raise ValueError("heal_at must be after at_time")


@dataclass(frozen=True)
class ConsumerCrash:
    """Crash the cluster's streaming index consumer (and restart it later).

    The crash kills the consumer mid-whatever-it-was-doing: buffered
    unsealed sessions and uncommitted poll progress are lost, exactly the
    state the commit low-watermark protects. On restart the consumer
    rejoins its group and replays from the committed offsets.
    """

    at_time: float
    restart_at: float | None = None

    def validate(self) -> None:
        if self.restart_at is not None and self.restart_at <= self.at_time:
            raise ValueError("restart_at must be after at_time")


@dataclass(frozen=True)
class ChaosSchedule:
    """A validated plan of kills, stragglers, partitions and stream faults."""

    kills: tuple[PodKill, ...]
    stream_faults: tuple[ConsumerCrash, ...]
    slowdowns: tuple[PodSlowdown, ...]
    partitions: tuple[NetworkPartition, ...]

    def __init__(
        self,
        kills: Iterable[PodKill] = (),
        stream_faults: Iterable[ConsumerCrash] = (),
        slowdowns: Iterable[PodSlowdown] = (),
        partitions: Iterable[NetworkPartition] = (),
    ) -> None:
        ordered = tuple(sorted(kills, key=lambda kill: kill.at_time))
        for kill in ordered:
            kill.validate()
        object.__setattr__(self, "kills", ordered)
        crashes = tuple(sorted(stream_faults, key=lambda fault: fault.at_time))
        for fault in crashes:
            fault.validate()
        object.__setattr__(self, "stream_faults", crashes)
        stalls = tuple(sorted(slowdowns, key=lambda fault: fault.at_time))
        for fault in stalls:
            fault.validate()
        object.__setattr__(self, "slowdowns", stalls)
        cuts = tuple(sorted(partitions, key=lambda fault: fault.at_time))
        for fault in cuts:
            fault.validate()
        object.__setattr__(self, "partitions", cuts)

    def __iter__(self) -> Iterator[PodKill]:
        return iter(self.kills)

    def __len__(self) -> int:
        return (
            len(self.kills)
            + len(self.stream_faults)
            + len(self.slowdowns)
            + len(self.partitions)
        )


@dataclass
class ChaosEventOutcome:
    """What one injected failure actually did."""

    at_time: float
    pod_id: str
    sessions_lost: int
    restarted_at: float | None = None
    #: sessions the restarted pod recovered by WAL replay (0 without WAL).
    sessions_recovered: int = 0

    @property
    def recovery_rate(self) -> float:
        """Fraction of the killed pod's live sessions that came back."""
        if self.sessions_lost == 0:
            return 1.0
        return self.sessions_recovered / self.sessions_lost


@dataclass
class ChaosReport:
    """Aggregate outcome of a chaos run."""

    total_requests: int
    failed_requests: int
    events: list[ChaosEventOutcome]
    latency: LatencyRecorder
    # Requests whose session state was lost and that were answered with
    # less history than the client had actually generated.
    degraded_requests: int = 0
    # Of those, how many had already re-accumulated >= 2 items of history
    # (i.e. full serenade-hist context) by the time they were served.
    recovered_requests: int = 0
    # Requests shed by admission control (not failures: the 429 is the
    # guardrail doing its job).
    shed_requests: int = 0
    # Sessions restored from the WAL across all restarts.
    recovered_sessions: int = 0
    session_moves: dict[str, str] = field(default_factory=dict)
    # Per displaced session: seconds from the kill until a request saw
    # >= 2 items of stored history again (the paper's recovery claim).
    recovery_horizon: dict[str, float] = field(default_factory=dict)
    # Streaming-ingestion faults applied (ConsumerCrash events).
    consumer_crashes: int = 0
    consumer_restarts: int = 0
    # Straggler / partition faults applied (and partitions later healed).
    slowdowns_applied: int = 0
    partitions_applied: int = 0
    partitions_healed: int = 0
    # Final replicated-ring snapshot (``{"enabled": False}`` without one):
    # failover/hedge/fence counters for the chaos assertions.
    ring: dict = field(default_factory=dict)
    # (arrival time, streaming lag in events) sampled at every arrival
    # while a streaming pipeline is attached — the lag trajectory the
    # determinism tests compare bit-for-bit across seeded replays.
    lag_trajectory: list[tuple[float, int]] = field(default_factory=list)
    # Final streaming health snapshot (empty without a pipeline).
    streaming: dict = field(default_factory=dict)

    @property
    def max_lag_events(self) -> int:
        if not self.lag_trajectory:
            return 0
        return max(lag for _, lag in self.lag_trajectory)

    @property
    def availability(self) -> float:
        if self.total_requests == 0:
            return 1.0
        return 1.0 - self.failed_requests / self.total_requests

    @property
    def mean_recovery_horizon(self) -> float | None:
        """Mean seconds for a displaced session to regain full context."""
        if not self.recovery_horizon:
            return None
        return sum(self.recovery_horizon.values()) / len(self.recovery_horizon)


class ChaosInjector:
    """Drives a cluster through arrivals while killing/restarting pods.

    Unlike :class:`~repro.cluster.simulation.ClusterSimulator`, which
    models queueing, the injector focuses on state: every request is
    served for real through :meth:`ServingCluster.handle` (admission
    control, re-routing and fallbacks included when the cluster has
    guardrails), and the injector tracks per-session history length to
    detect degradation and recovery after a kill.
    """

    def __init__(
        self,
        cluster: ServingCluster,
        kills: ChaosSchedule | Iterable[PodKill],
    ) -> None:
        self.cluster = cluster
        self.schedule = (
            kills if isinstance(kills, ChaosSchedule) else ChaosSchedule(kills)
        )

    def run(self, arrivals: Iterable[TimedRequest]) -> ChaosReport:
        pending = list(self.schedule)
        restarts: list[tuple[float, str, ChaosEventOutcome]] = []
        stream_pending = list(self.schedule.stream_faults)
        stream_restarts: list[float] = []
        slow_pending = list(self.schedule.slowdowns)
        slow_resets: list[tuple[float, str]] = []
        cut_pending = list(self.schedule.partitions)
        cut_heals: list[tuple[float, str, str]] = []
        latency = LatencyRecorder()
        report = ChaosReport(
            total_requests=0, failed_requests=0, events=[], latency=latency
        )
        # Ground truth: how many clicks each session has actually issued.
        true_history: dict[str, int] = {}
        owner_before_kill: dict[str, str] = {}
        kill_time: dict[str, float] = {}
        streaming = getattr(self.cluster, "streaming", None)

        for timed in arrivals:
            now = timed.arrival_time
            self._apply_due_restarts(restarts, now, report)
            self._apply_due_kills(
                pending, restarts, now, report, owner_before_kill, kill_time
            )
            self._apply_due_slowdowns(slow_pending, slow_resets, now, report)
            self._apply_due_partitions(cut_pending, cut_heals, now, report)
            if streaming is not None:
                self._apply_due_stream_faults(
                    stream_pending, stream_restarts, now, report, streaming
                )
                # The supervised consumer polls alongside serving: one
                # step per arrival while alive, none while crashed — so
                # the sampled trajectory shows lag freezing across a
                # crash window and draining again after the restart.
                if not streaming.crashed:
                    streaming.step()
                report.lag_trajectory.append((now, streaming.lag_events()))

            request = timed.request
            true_history[request.session_key] = (
                true_history.get(request.session_key, 0) + 1
            )
            report.total_requests += 1
            try:
                response = self.cluster.handle(request)
            except Overloaded:
                report.shed_requests += 1
                continue
            except Exception:
                report.failed_requests += 1
                continue
            pod_id = response.served_by
            latency.record(response.service_seconds)

            # Detect lost state: the pod's stored history is shorter than
            # what the session actually generated.
            stored = self.cluster.pods[pod_id].sessions.get_session(
                request.session_key
            )
            stored_length = len(stored) if stored else 0
            if stored_length < min(
                true_history[request.session_key],
                self.cluster.pods[pod_id].sessions.max_items,
            ):
                report.degraded_requests += 1
                if stored_length >= 2:
                    report.recovered_requests += 1
            if request.session_key in owner_before_kill:
                report.session_moves[request.session_key] = pod_id
                if (
                    stored_length >= 2
                    and request.session_key not in report.recovery_horizon
                ):
                    report.recovery_horizon[request.session_key] = (
                        now - kill_time[request.session_key]
                    )
        if streaming is not None:
            # Apply faults scheduled after the last arrival, then snapshot.
            horizon = float("inf")
            self._apply_due_stream_faults(
                stream_pending, stream_restarts, horizon, report, streaming
            )
            report.streaming = streaming.health()
        report.ring = self.cluster.ring_info()
        return report

    def _apply_due_slowdowns(self, pending, resets, now, report) -> None:
        """Install/clear straggler stalls per the schedule."""
        while resets and resets[0][0] <= now:
            _, pod_id = resets.pop(0)
            server = self.cluster.pods.get(pod_id)
            if server is not None:
                server.injected_stall_seconds = 0.0
        while pending and pending[0].at_time <= now:
            fault = pending.pop(0)
            server = self.cluster.pods.get(fault.pod_id)
            if server is not None:
                server.injected_stall_seconds = fault.delay_seconds
                report.slowdowns_applied += 1
            if fault.until is not None:
                resets.append((fault.until, fault.pod_id))
                resets.sort(key=lambda entry: entry[0])

    def _apply_due_partitions(self, pending, heals, now, report) -> None:
        """Cut/heal replication links per the schedule (ring clusters)."""
        while heals and heals[0][0] <= now:
            _, pod_a, pod_b = heals.pop(0)
            self.cluster.heal_partition(pod_a, pod_b)
            report.partitions_healed += 1
        while pending and pending[0].at_time <= now:
            fault = pending.pop(0)
            self.cluster.partition(fault.pod_a, fault.pod_b)
            report.partitions_applied += 1
            if fault.heal_at is not None:
                heals.append((fault.heal_at, fault.pod_a, fault.pod_b))
                heals.sort(key=lambda entry: entry[0])

    def _apply_due_kills(
        self, pending, restarts, now, report, owner_before_kill, kill_time
    ) -> None:
        while pending and pending[0].at_time <= now:
            kill = pending.pop(0)
            victim = self.cluster.kill_pod(kill.pod_id)
            for session_key in victim.sessions.session_keys():
                owner_before_kill[session_key] = kill.pod_id
                kill_time[session_key] = kill.at_time
            outcome = ChaosEventOutcome(
                at_time=kill.at_time,
                pod_id=kill.pod_id,
                sessions_lost=len(victim.sessions),
                restarted_at=kill.restart_at,
            )
            report.events.append(outcome)
            if kill.restart_at is not None:
                restarts.append((kill.restart_at, kill.pod_id, outcome))
                restarts.sort(key=lambda entry: entry[0])

    def _apply_due_stream_faults(
        self, pending, restarts, now, report, streaming
    ) -> None:
        """Crash/restart the streaming consumer per the schedule."""
        while restarts and restarts[0] <= now:
            restarts.pop(0)
            streaming.restart()
            report.consumer_restarts += 1
        while pending and pending[0].at_time <= now:
            fault = pending.pop(0)
            streaming.crash()
            report.consumer_crashes += 1
            if fault.restart_at is not None:
                if fault.restart_at <= now:
                    streaming.restart()
                    report.consumer_restarts += 1
                else:
                    restarts.append(fault.restart_at)
                    restarts.sort()

    def _apply_due_restarts(self, restarts, now, report) -> None:
        while restarts and restarts[0][0] <= now:
            _, pod_id, outcome = restarts.pop(0)
            # A restarted pod replays its WAL when the cluster has one;
            # otherwise it comes back empty (state was machine-local).
            server = self.cluster.restart_pod(pod_id)
            outcome.sessions_recovered = len(server.sessions)
            report.recovered_sessions += outcome.sessions_recovered
