"""A/B test framework with a behavioural engagement model (§5.2.3).

The paper's three-week experiment randomly assigns user sessions to one of
three arms — the legacy item-to-item CF system, *serenade-hist* (last two
session items) and *serenade-recent* (most recent item only) — and
measures a conversion-related engagement metric on the recommendation slot
of the product detail page, plus its site-wide effect on other slots.

We reproduce the protocol over held-out sessions:

* **assignment** is sticky and pseudo-random by session key hash;
* **slot engagement** follows a position-bias click model: if the user's
  true next item appears at rank r of the 21-item slot, they engage with
  probability ``click_base * position_decay**(r-1)``; a small serendipity
  floor applies otherwise. Better recommenders therefore earn more
  engagement *through their actual predictions* — the mechanism behind the
  paper's uplift, not a hard-coded outcome;
* **cannibalisation**: the product page also has an 'often bought
  together' style slot (approximated by an item-to-item CF list for the
  current item). The more an arm's recommendations overlap that slot, the
  more its engagement is skimmed from it — how serenade-recent's
  site-wide cannibalisation shows up in the paper.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.baselines.itemknn import ItemKNNRecommender
from repro.cluster.significance import ZTestResult, two_proportion_ztest
from repro.core.predictor import SessionRecommender
from repro.core.types import ItemId, ScoredItem, SessionId
from repro.serving.variants import ServingVariant, session_view


class VariantRecommender:
    """Adapts a recommender to a serving variant's session view."""

    def __init__(
        self, recommender: SessionRecommender, variant: ServingVariant
    ) -> None:
        self.recommender = recommender
        self.variant = variant

    def recommend(
        self, session_items: Sequence[ItemId], how_many: int = 21
    ) -> list[ScoredItem]:
        if not session_items:
            return []
        visible = session_view(
            session_items, self.variant, current_item=session_items[-1]
        )
        return self.recommender.recommend(visible, how_many=how_many)


@dataclass
class ArmOutcome:
    """Counters accumulated for one experiment arm."""

    name: str
    sessions: int = 0
    exposures: int = 0
    slot_conversions: int = 0
    other_slot_conversions: int = 0
    overlap_sum: float = 0.0
    overlap_observations: int = 0

    @property
    def slot_rate(self) -> float:
        return self.slot_conversions / self.exposures if self.exposures else 0.0

    @property
    def other_slot_rate(self) -> float:
        return (
            self.other_slot_conversions / self.exposures if self.exposures else 0.0
        )

    @property
    def sitewide_conversions(self) -> int:
        return self.slot_conversions + self.other_slot_conversions

    @property
    def cannibalisation_pressure(self) -> float:
        """Mean overlap between this arm's visible slot and the
        co-purchase slot — the deterministic driver of other-slot
        suppression (higher = the arm skims more clicks from it)."""
        if self.overlap_observations == 0:
            return 0.0
        return self.overlap_sum / self.overlap_observations


@dataclass
class ABTestReport:
    """Full experiment outcome with per-arm uplifts vs the control."""

    control: str
    arms: dict[str, ArmOutcome]
    slot_tests: dict[str, ZTestResult] = field(default_factory=dict)
    sitewide_tests: dict[str, ZTestResult] = field(default_factory=dict)

    def slot_uplift(self, arm: str) -> float:
        return self.slot_tests[arm].relative_uplift

    def sitewide_uplift(self, arm: str) -> float:
        return self.sitewide_tests[arm].relative_uplift

    def summary(self) -> str:
        lines = [
            f"{'arm':>18}  {'sessions':>9}  {'exposures':>9}  "
            f"{'slot rate':>9}  {'uplift':>8}  {'p':>9}  {'site uplift':>11}"
        ]
        for name, outcome in self.arms.items():
            if name == self.control:
                uplift, p_value, site = "-", "-", "-"
            else:
                uplift = f"{self.slot_uplift(name) * 100:+.2f}%"
                p_value = f"{self.slot_tests[name].p_value:.2e}"
                site = f"{self.sitewide_uplift(name) * 100:+.2f}%"
            lines.append(
                f"{name:>18}  {outcome.sessions:>9}  {outcome.exposures:>9}  "
                f"{outcome.slot_rate:>9.4f}  {uplift:>8}  {p_value:>9}  {site:>11}"
            )
        return "\n".join(lines)


class ABTest:
    """Randomised, sticky-assignment online experiment."""

    def __init__(
        self,
        arms: Mapping[str, SessionRecommender],
        control: str,
        click_base: float = 0.30,
        position_decay: float = 0.85,
        serendipity: float = 0.01,
        other_slot_base: float = 0.05,
        cannibalisation: float = 0.6,
        slot_size: int = 21,
        co_slot_size: int = 6,
        seed: int = 97,
    ) -> None:
        """Args:
        arms: arm name -> recommender; must include ``control``.
        control: the legacy arm uplifts are measured against.
        click_base: engagement probability when the true next item is
            ranked first in the slot.
        position_decay: multiplicative decay of engagement per rank.
        serendipity: engagement floor when the next item is absent.
        other_slot_base: baseline engagement of the other page slots.
        cannibalisation: how strongly overlap with the co-purchase slot
            suppresses other-slot engagement (0 = none).
        slot_size: recommendations shown (21 on the product page).
        co_slot_size: visible items of the co-purchase slot; overlap is
            measured between the *top* items of both slots, since only
            above-the-fold items compete for the same click.
        seed: RNG seed; the experiment is fully reproducible.
        """
        if control not in arms:
            raise ValueError(f"control arm {control!r} missing from arms")
        self.arms = dict(arms)
        self.control = control
        self.click_base = click_base
        self.position_decay = position_decay
        self.serendipity = serendipity
        self.other_slot_base = other_slot_base
        self.cannibalisation = cannibalisation
        self.slot_size = slot_size
        self.co_slot_size = co_slot_size
        self.seed = seed
        self._arm_names = sorted(self.arms)

    def assign(self, session_key: str) -> str:
        """Sticky pseudo-random assignment by session key."""
        digest = hashlib.blake2b(
            f"{self.seed}:{session_key}".encode("utf-8"), digest_size=8
        ).digest()
        return self._arm_names[int.from_bytes(digest, "big") % len(self._arm_names)]

    def run(
        self,
        test_sequences: Mapping[SessionId, Sequence[ItemId]],
        reference_cooccurrence: ItemKNNRecommender | None = None,
    ) -> ABTestReport:
        """Replay held-out sessions through the assigned arms.

        ``reference_cooccurrence`` approximates the 'often bought together'
        slot for the cannibalisation model; without it, no cannibalisation
        is applied.
        """
        rng = np.random.default_rng(self.seed)
        outcomes = {name: ArmOutcome(name) for name in self.arms}

        for session_id, sequence in test_sequences.items():
            arm_name = self.assign(str(session_id))
            arm = self.arms[arm_name]
            outcome = outcomes[arm_name]
            outcome.sessions += 1
            for step in range(1, len(sequence)):
                prefix = sequence[:step]
                next_item = sequence[step]
                recommended = [
                    scored.item_id
                    for scored in arm.recommend(prefix, how_many=self.slot_size)
                ]
                outcome.exposures += 1

                # Slot engagement through the position-bias click model.
                engage_probability = self.serendipity
                if next_item in recommended:
                    rank = recommended.index(next_item) + 1
                    engage_probability = self.click_base * (
                        self.position_decay ** (rank - 1)
                    )
                if rng.random() < engage_probability:
                    outcome.slot_conversions += 1

                # Other-slot engagement, suppressed by overlap with the
                # co-purchase list for the current item.
                other_probability = self.other_slot_base
                if reference_cooccurrence is not None and recommended:
                    co_list = [
                        scored.item_id
                        for scored in reference_cooccurrence.recommend(
                            [prefix[-1]], how_many=self.co_slot_size
                        )
                    ]
                    if co_list:
                        visible = set(recommended[: self.co_slot_size])
                        overlap = len(visible & set(co_list)) / len(set(co_list))
                        outcome.overlap_sum += overlap
                        outcome.overlap_observations += 1
                        other_probability *= 1.0 - self.cannibalisation * overlap
                if rng.random() < other_probability:
                    outcome.other_slot_conversions += 1

        report = ABTestReport(control=self.control, arms=outcomes)
        control_outcome = outcomes[self.control]
        for name, outcome in outcomes.items():
            if name == self.control:
                continue
            report.slot_tests[name] = two_proportion_ztest(
                control_outcome.slot_conversions,
                control_outcome.exposures,
                outcome.slot_conversions,
                outcome.exposures,
            )
            report.sitewide_tests[name] = two_proportion_ztest(
                control_outcome.sitewide_conversions,
                control_outcome.exposures,
                outcome.sitewide_conversions,
                outcome.exposures,
            )
        return report
