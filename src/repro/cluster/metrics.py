"""Latency and utilisation metrics for the load-test and A/B figures.

Figures 3(b) and 3(c) plot requests per second, per-pod core usage and the
p75/p90/p99.5 response-latency percentiles over time. These helpers
accumulate raw samples and aggregate them into the time buckets those
plots are drawn from.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def percentile(sorted_samples: list[float], q: float) -> float:
    """Nearest-rank percentile of pre-sorted samples, q in [0, 100]."""
    if not sorted_samples:
        raise ValueError("no samples")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    position = min(
        len(sorted_samples) - 1,
        max(0, round(q / 100.0 * (len(sorted_samples) - 1))),
    )
    return sorted_samples[position]


@dataclass
class LatencyRecorder:
    """Collects latency samples and answers percentile queries."""

    samples: list[float] = field(default_factory=list)

    def record(self, seconds: float) -> None:
        self.samples.append(seconds)

    def percentile(self, q: float) -> float:
        return percentile(sorted(self.samples), q)

    def fraction_within(self, seconds: float) -> float:
        """Share of requests answered within ``seconds`` (SLA attainment).

        The guardrail layer's success criterion: with a 50 ms budget,
        ``fraction_within(0.050)`` should stay at 1.0 even when the
        primary model misbehaves.
        """
        if not self.samples:
            raise ValueError("no samples")
        within = sum(1 for sample in self.samples if sample <= seconds)
        return within / len(self.samples)

    def summary_ms(self) -> dict[str, float]:
        """The paper's three headline percentiles, in milliseconds."""
        ordered = sorted(self.samples)
        return {
            "p75": percentile(ordered, 75) * 1e3,
            "p90": percentile(ordered, 90) * 1e3,
            "p99.5": percentile(ordered, 99.5) * 1e3,
        }

    def __len__(self) -> int:
        return len(self.samples)


@dataclass
class BucketStats:
    """One time bucket of a load test / A/B timeline."""

    start: float
    requests_per_second: float
    latency_p75_ms: float
    latency_p90_ms: float
    latency_p995_ms: float
    core_usage_percent: dict[str, float]


class TimelineAggregator:
    """Buckets request completions into fixed windows (one plot point each).

    ``observed_fraction`` supports scaled-down replay: if only a sample of
    the nominal traffic is actually executed (e.g. 1 in 100 requests of a
    600 rps day), the reported requests-per-second are scaled back up while
    latency percentiles come from the executed sample.
    """

    def __init__(self, bucket_seconds: float, observed_fraction: float = 1.0) -> None:
        if bucket_seconds <= 0:
            raise ValueError("bucket_seconds must be positive")
        if not 0.0 < observed_fraction <= 1.0:
            raise ValueError("observed_fraction must be in (0, 1]")
        self.bucket_seconds = bucket_seconds
        self.observed_fraction = observed_fraction
        self._latencies: dict[int, list[float]] = {}
        self._busy: dict[int, dict[str, float]] = {}

    def record_request(
        self, arrival_time: float, latency_seconds: float, pod_id: str,
        service_seconds: float,
    ) -> None:
        bucket = int(arrival_time // self.bucket_seconds)
        self._latencies.setdefault(bucket, []).append(latency_seconds)
        busy = self._busy.setdefault(bucket, {})
        busy[pod_id] = busy.get(pod_id, 0.0) + service_seconds

    def buckets(self, cores_per_pod: int = 1) -> list[BucketStats]:
        """Aggregate all buckets, in time order."""
        stats = []
        for bucket in sorted(self._latencies):
            latencies = sorted(self._latencies[bucket])
            usage = {
                pod: 100.0
                * busy
                / (self.bucket_seconds * self.observed_fraction * cores_per_pod)
                for pod, busy in self._busy.get(bucket, {}).items()
            }
            stats.append(
                BucketStats(
                    start=bucket * self.bucket_seconds,
                    requests_per_second=len(latencies)
                    / (self.bucket_seconds * self.observed_fraction),
                    latency_p75_ms=percentile(latencies, 75) * 1e3,
                    latency_p90_ms=percentile(latencies, 90) * 1e3,
                    latency_p995_ms=percentile(latencies, 99.5) * 1e3,
                    core_usage_percent=usage,
                )
            )
        return stats
