"""Discrete-event simulation of the serving cluster under load (§5.2.2).

The paper's load test measures end-to-end response latency of two
Kubernetes pods (three cores each) under replayed traffic. We reproduce it
with a hybrid simulator:

* **compute is real** — every simulated request executes the actual
  serving code path (session update in the KV store, VMIS-kNN prediction,
  business rules) and its measured wall-clock duration becomes the
  service time;
* **queueing is simulated** — each pod is a multi-core FCFS station; a
  request waits until one of its pod's cores is free, so response latency
  is queueing delay plus real service time, exactly the M/G/c behaviour a
  loaded pod exhibits.

This lets a single process observe latency percentiles and core
utilisation for nominal loads far beyond what it could serve in real time.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.cluster.loadgen import TimedRequest
from repro.cluster.metrics import BucketStats, LatencyRecorder, TimelineAggregator
from repro.serving.app import ServingCluster


@dataclass
class LoadTestResult:
    """Outcome of one simulated load test."""

    total_requests: int
    latency: LatencyRecorder
    timeline: list[BucketStats]
    sla_millis: float
    sla_violations: int

    @property
    def sla_attainment(self) -> float:
        """Fraction of requests answered within the SLA."""
        if self.total_requests == 0:
            return 1.0
        return 1.0 - self.sla_violations / self.total_requests


class ClusterSimulator:
    """Drives a :class:`ServingCluster` with simulated arrivals."""

    def __init__(
        self,
        cluster: ServingCluster,
        cores_per_pod: int = 3,
        sla_millis: float = 50.0,
        perf_clock: Callable[[], float] | None = None,
    ) -> None:
        """Args:
        cluster: the serving cluster under test (real code).
        cores_per_pod: cores provisioned per pod (the paper uses three).
        sla_millis: the business SLA — 50 ms at bol.com.
        perf_clock: injectable service-time clock. ``None`` measures real
            compute with ``time.perf_counter``; deterministic tests inject
            a :class:`~repro.testing.clock.VirtualClock` and model service
            time by advancing it inside the recommender.
        """
        if cores_per_pod < 1:
            raise ValueError("cores_per_pod must be >= 1")
        self.cluster = cluster
        self.cores_per_pod = cores_per_pod
        self.sla_millis = sla_millis
        self._perf = perf_clock if perf_clock is not None else time.perf_counter

    def run(
        self,
        arrivals: Iterable[TimedRequest],
        bucket_seconds: float = 60.0,
        observed_fraction: float = 1.0,
    ) -> LoadTestResult:
        """Process all arrivals and aggregate the outcome.

        Each pod's cores are modelled as a min-heap of free-at times; a
        request starts at ``max(arrival, earliest free core)``.
        """
        free_at: dict[str, list[float]] = {
            pod_id: [0.0] * self.cores_per_pod for pod_id in self.cluster.pods
        }
        latency = LatencyRecorder()
        timeline = TimelineAggregator(bucket_seconds, observed_fraction)
        sla_seconds = self.sla_millis / 1e3
        violations = 0
        total = 0

        perf = self._perf
        for timed in arrivals:
            pod_id = self.cluster.router.route(timed.request.session_key)
            started = perf()
            response = self.cluster.pods[pod_id].handle(timed.request)
            service = perf() - started
            del response

            cores = free_at[pod_id]
            start_time = max(timed.arrival_time, cores[0])
            completion = start_time + service
            heapq.heapreplace(cores, completion)

            response_latency = completion - timed.arrival_time
            latency.record(response_latency)
            timeline.record_request(
                timed.arrival_time, response_latency, pod_id, service
            )
            if response_latency > sla_seconds:
                violations += 1
            total += 1

        return LoadTestResult(
            total_requests=total,
            latency=latency,
            timeline=timeline.buckets(self.cores_per_pod),
            sla_millis=self.sla_millis,
            sla_violations=violations,
        )


def format_timeline(buckets: list[BucketStats]) -> str:
    """Render a load-test timeline as an aligned text table."""
    lines = [
        f"{'t(s)':>8}  {'rps':>7}  {'p75ms':>7}  {'p90ms':>7}  {'p99.5ms':>8}  core-usage"
    ]
    for bucket in buckets:
        usage = ", ".join(
            f"{pod}={pct:.0f}%"
            for pod, pct in sorted(bucket.core_usage_percent.items())
        )
        lines.append(
            f"{bucket.start:>8.0f}  {bucket.requests_per_second:>7.1f}  "
            f"{bucket.latency_p75_ms:>7.2f}  {bucket.latency_p90_ms:>7.2f}  "
            f"{bucket.latency_p995_ms:>8.2f}  {usage}"
        )
    return "\n".join(lines)
