"""Cluster simulation: load tests, timelines and A/B experiments."""

from repro.cluster.autoscaler import (
    AutoscalePolicy,
    AutoscaleRunResult,
    AutoscalingSimulator,
    ScalingAction,
)
from repro.cluster.costmodel import (
    DeploymentCost,
    MachinePrices,
    cost_comparison,
    neural_ranker_cost,
    serenade_cost,
)
from repro.cluster.chaos import (
    ChaosEventOutcome,
    ChaosInjector,
    ChaosReport,
    ChaosSchedule,
    ConsumerCrash,
    NetworkPartition,
    PodKill,
    PodSlowdown,
)
from repro.cluster.abtest import (
    ABTest,
    ABTestReport,
    ArmOutcome,
    VariantRecommender,
)
from repro.cluster.loadgen import (
    TimedRequest,
    TrafficGenerator,
    constant_rate,
    diurnal_rate,
    ramp_rate,
    spike_rate,
)
from repro.cluster.metrics import (
    BucketStats,
    LatencyRecorder,
    TimelineAggregator,
    percentile,
)
from repro.cluster.significance import (
    ZTestResult,
    two_proportion_ztest,
    wilson_interval,
)
from repro.cluster.simulation import ClusterSimulator, LoadTestResult, format_timeline

__all__ = [
    "ABTest",
    "AutoscalePolicy",
    "AutoscaleRunResult",
    "AutoscalingSimulator",
    "ScalingAction",
    "ChaosEventOutcome",
    "DeploymentCost",
    "MachinePrices",
    "cost_comparison",
    "neural_ranker_cost",
    "serenade_cost",
    "ChaosInjector",
    "ChaosReport",
    "ChaosSchedule",
    "ConsumerCrash",
    "NetworkPartition",
    "PodKill",
    "PodSlowdown",
    "ABTestReport",
    "ArmOutcome",
    "BucketStats",
    "ClusterSimulator",
    "LatencyRecorder",
    "LoadTestResult",
    "TimedRequest",
    "TimelineAggregator",
    "TrafficGenerator",
    "VariantRecommender",
    "ZTestResult",
    "constant_rate",
    "diurnal_rate",
    "format_timeline",
    "percentile",
    "ramp_rate",
    "spike_rate",
    "two_proportion_ztest",
    "wilson_interval",
]
