"""Reactive autoscaling policy for the serving fleet (§4.2/§7).

Serenade deliberately over-provisions: each pod gets three cores but uses
about one, "to be prepared for peak loads, e.g., during denial-of-service
attacks" (§7), and elastic scaling of the pod pool is possible but loses
the sessions of removed pods (§4.2). This module makes the trade-off
explorable:

* :class:`AutoscalePolicy` — hysteresis thresholds on observed core
  usage, with cooldown and min/max pod bounds (a Kubernetes HPA, in
  miniature);
* :class:`AutoscalingSimulator` — a load-test loop that evaluates the
  policy at a fixed cadence, scales the real cluster and records every
  scaling action together with the latency timeline.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Iterable

from repro.cluster.loadgen import TimedRequest
from repro.cluster.metrics import LatencyRecorder
from repro.core.deadline import Clock
from repro.serving.app import ServingCluster


@dataclass(frozen=True)
class AutoscalePolicy:
    """Hysteresis scaling rule over average per-pod core usage."""

    scale_up_at: float = 0.60  # avg busy fraction per provisioned core
    scale_down_at: float = 0.15
    min_pods: int = 2
    max_pods: int = 10
    cooldown_seconds: float = 60.0

    def validate(self) -> None:
        if not 0.0 < self.scale_down_at < self.scale_up_at <= 1.0:
            raise ValueError(
                "need 0 < scale_down_at < scale_up_at <= 1, got "
                f"{self.scale_down_at} / {self.scale_up_at}"
            )
        if not 1 <= self.min_pods <= self.max_pods:
            raise ValueError("need 1 <= min_pods <= max_pods")
        if self.cooldown_seconds < 0:
            raise ValueError("cooldown_seconds must be >= 0")

    def decide(self, usage_fraction: float, current_pods: int) -> int:
        """Target pod count given the observed usage."""
        if usage_fraction > self.scale_up_at and current_pods < self.max_pods:
            return current_pods + 1
        if usage_fraction < self.scale_down_at and current_pods > self.min_pods:
            return current_pods - 1
        return current_pods


@dataclass(frozen=True)
class ScalingAction:
    """One executed scaling decision."""

    at_time: float
    from_pods: int
    to_pods: int
    observed_usage: float


@dataclass
class AutoscaleRunResult:
    """Outcome of a policy-driven load run."""

    total_requests: int
    latency: LatencyRecorder
    actions: list[ScalingAction] = field(default_factory=list)
    pods_over_time: list[tuple[float, int]] = field(default_factory=list)

    @property
    def max_pods_used(self) -> int:
        return max((pods for _, pods in self.pods_over_time), default=0)


class AutoscalingSimulator:
    """Drives a cluster through arrivals, scaling by the policy.

    Uses the same hybrid model as the load-test simulator (real compute,
    simulated multi-core queueing); usage is evaluated once per
    ``evaluation_interval`` of simulated time over the trailing window.
    """

    def __init__(
        self,
        cluster: ServingCluster,
        policy: AutoscalePolicy,
        cores_per_pod: int = 3,
        evaluation_interval: float = 10.0,
        perf_clock: Clock = time.perf_counter,
    ) -> None:
        policy.validate()
        if cores_per_pod < 1:
            raise ValueError("cores_per_pod must be >= 1")
        if evaluation_interval <= 0:
            raise ValueError("evaluation_interval must be positive")
        self.cluster = cluster
        self.policy = policy
        self.cores_per_pod = cores_per_pod
        self.evaluation_interval = evaluation_interval
        self._perf = perf_clock

    def run(self, arrivals: Iterable[TimedRequest]) -> AutoscaleRunResult:
        result = AutoscaleRunResult(total_requests=0, latency=LatencyRecorder())
        free_at: dict[str, list[float]] = {
            pod: [0.0] * self.cores_per_pod for pod in self.cluster.pods
        }
        window_busy = 0.0
        window_start = 0.0
        last_scale_time = -self.policy.cooldown_seconds
        result.pods_over_time.append((0.0, len(self.cluster.pods)))

        for timed in arrivals:
            now = timed.arrival_time
            # Policy evaluation at a fixed cadence.
            while now - window_start >= self.evaluation_interval:
                usage = window_busy / (
                    self.evaluation_interval
                    * self.cores_per_pod
                    * len(self.cluster.pods)
                )
                current = len(self.cluster.pods)
                target = self.policy.decide(usage, current)
                if (
                    target != current
                    and window_start - last_scale_time
                    >= self.policy.cooldown_seconds
                ):
                    self.cluster.scale_to(target)
                    for pod in self.cluster.pods:
                        free_at.setdefault(pod, [window_start] * self.cores_per_pod)
                    for pod in list(free_at):
                        if pod not in self.cluster.pods:
                            del free_at[pod]
                    result.actions.append(
                        ScalingAction(
                            at_time=window_start + self.evaluation_interval,
                            from_pods=current,
                            to_pods=target,
                            observed_usage=usage,
                        )
                    )
                    last_scale_time = window_start
                    result.pods_over_time.append(
                        (window_start + self.evaluation_interval, target)
                    )
                window_busy = 0.0
                window_start += self.evaluation_interval

            if self.cluster.coordinator is not None:
                # Ring mode: scaling flows through rebalance/decommission
                # and the coordinator routes, replicates and hedges; its
                # service time already resolves the hedge race.
                response = self.cluster.handle(timed.request)
                pod_id = response.served_by
                service = response.service_seconds
            else:
                pod_id = self.cluster.router.route(timed.request.session_key)
                started = self._perf()
                self.cluster.pods[pod_id].handle(timed.request)
                service = self._perf() - started
            window_busy += service

            cores = free_at[pod_id]
            start_time = max(now, cores[0])
            completion = start_time + service
            heapq.heapreplace(cores, completion)
            result.latency.record(completion - now)
            result.total_requests += 1

        result.pods_over_time.append(
            (window_start + self.evaluation_interval, len(self.cluster.pods))
        )
        return result
