"""VS-Py: the research-style reference implementation (§5.2.1).

Mimics the original session-rec ``vsknn.py`` reference code, which the
paper describes as "a mere research implementation" expected to be
non-competitive: the historical data lives in per-item session sets and
per-session item sets; every query materialises

* the full union of candidate sessions over all items of the evolving
  session, and
* a per-candidate *set intersection* with the evolving session to compute
  the similarity,

with no bounded heaps, no recency-ordered postings and no early stopping.
The intermediate candidate set grows with item popularity and dataset
size, which is why this engine (like the original) stops scaling; an
explicit row budget turns that into a clean failure.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.floatcmp import is_zero_score
from repro.core.index import SessionIndex
from repro.core.predictor import BatchMixin
from repro.core.scoring import top_n
from repro.core.types import Click, ItemId, ScoredItem, SessionId
from repro.core.weights import decay_weights, paper_match_weight
from repro.engines.errors import MemoryBudgetExceeded


class ReferenceVSKNN(BatchMixin):
    """The deliberately-naive reference engine ("VS-Py")."""

    name = "VS-Py"

    def __init__(
        self,
        index: SessionIndex,
        m: int = 500,
        k: int = 100,
        intermediate_budget: int = 5_000_000,
    ) -> None:
        self.index = index
        self.m = m
        self.k = k
        self.intermediate_budget = intermediate_budget
        # Research-style storage: plain per-item session sets (unordered)
        # and per-session item sets, rebuilt from the shared index.
        self._item_sessions: dict[ItemId, set[SessionId]] = {
            item: set(postings)
            for item, postings in index.item_to_sessions.items()
        }
        self._session_items: list[set[ItemId]] = [
            set(items) for items in index.session_items
        ]

    @classmethod
    def from_clicks(cls, clicks: Iterable[Click], **kwargs) -> "ReferenceVSKNN":
        index = SessionIndex.from_clicks(clicks, max_sessions_per_item=2**62)
        return cls(index, **kwargs)

    def recommend(
        self, session_items: Sequence[ItemId], how_many: int = 21
    ) -> list[ScoredItem]:
        if not session_items:
            return []
        # Materialise ALL candidate sessions (the expensive union).
        candidates: set[SessionId] = set()
        for item in set(session_items):
            candidates |= self._item_sessions.get(item, set())
            if len(candidates) > self.intermediate_budget:
                raise MemoryBudgetExceeded(
                    self.name, len(candidates), self.intermediate_budget
                )
        if not candidates:
            return []

        # Recency sample of size m via a full sort of the candidates.
        timestamps = self.index.session_timestamps
        sample = sorted(candidates, key=lambda sid: (timestamps[sid], sid))[-self.m :]

        # Per-candidate set intersection (no shared-prefix reuse).
        weights = decay_weights(session_items)
        evolving = set(session_items)
        scored = []
        for session_id in sample:
            shared = self._session_items[session_id] & evolving
            if not shared:
                continue
            similarity = sum(weights[item] for item in shared)
            scored.append((similarity, timestamps[session_id], session_id))
        scored.sort(reverse=True)
        neighbors = scored[: self.k]

        # Item scoring, research style: dictionaries all the way down.
        orders = {item: pos for pos, item in enumerate(session_items, start=1)}
        scores: dict[ItemId, float] = {}
        for similarity, _, session_id in neighbors:
            items = self._session_items[session_id]
            shared_positions = [orders[i] for i in items if i in orders]
            if not shared_positions:
                continue
            match = paper_match_weight(max(shared_positions))
            if is_zero_score(match):
                continue
            for item in items:
                scores[item] = scores.get(item, 0.0) + (
                    match * similarity * (1.0 / len(session_items))
                ) * (1.0 + self.index.idf(item))
        return top_n(scores, how_many)
