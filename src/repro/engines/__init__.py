"""Alternative engines for the Figure 3(a) implementation comparison."""

from repro.engines.dataflow import (
    Arrangement,
    DataflowVMIS,
    KeyedSum,
    SessionSimilarityDataflow,
)
from repro.engines.errors import MemoryBudgetExceeded
from repro.engines.hashmap import GarbageCollectorSimulator, HashmapVMIS
from repro.engines.reference import ReferenceVSKNN
from repro.engines.sqlengine import RelationalExecutor, SQLVMIS, Table

ENGINE_CLASSES = {
    "VS-Py": ReferenceVSKNN,
    "VMIS-Diff": DataflowVMIS,
    "VMIS-Java": HashmapVMIS,
    "VMIS-SQL": SQLVMIS,
}

__all__ = [
    "Arrangement",
    "DataflowVMIS",
    "ENGINE_CLASSES",
    "GarbageCollectorSimulator",
    "HashmapVMIS",
    "KeyedSum",
    "MemoryBudgetExceeded",
    "ReferenceVSKNN",
    "RelationalExecutor",
    "SQLVMIS",
    "SessionSimilarityDataflow",
    "Table",
]
