"""Shared engine error types.

In Figure 3(a) several baseline implementations "fail to complete the
computation" on the larger datasets because their intermediate results
exhaust memory (marked ``X`` in the plot). Our engines enforce an explicit
intermediate-result budget and raise :class:`MemoryBudgetExceeded` instead
of grinding a machine into swap, which reproduces the failure mode
deterministically.
"""

from __future__ import annotations


class MemoryBudgetExceeded(RuntimeError):
    """An engine materialised more intermediate rows than its budget."""

    def __init__(self, engine: str, rows: int, budget: int) -> None:
        super().__init__(
            f"{engine}: materialised {rows:,} intermediate rows, "
            f"budget is {budget:,}"
        )
        self.engine = engine
        self.rows = rows
        self.budget = budget
