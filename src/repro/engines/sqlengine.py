"""VMIS-SQL: the similarity computation on a mini relational engine (§5.2.1).

The paper expresses VMIS-kNN in plain SQL on DuckDB to test whether a
custom implementation is necessary, finds the query needs "several deeply
nested subqueries", and observes that it neither competes on latency nor
scales — the nested subqueries materialise large intermediates.

This module contains a small but genuine relational executor — tables with
named columns, filter/project/hash-join/group-by/order-by/limit operators,
each fully materialising its output — plus the VMIS similarity expressed
as the same operator tree the SQL formulation would produce:

.. code-block:: sql

    WITH matches AS (
      SELECT p.session_id, q.weight, p.timestamp
      FROM postings p JOIN query_items q USING (item_id)),
    similarities AS (
      SELECT session_id, SUM(weight) AS sim, MAX(timestamp) AS ts
      FROM (SELECT * FROM matches ORDER BY timestamp DESC LIMIT :m_window)
      GROUP BY session_id),
    neighbors AS (
      SELECT session_id, sim FROM similarities
      ORDER BY sim DESC, ts DESC LIMIT :k)
    SELECT i.item_id, SUM(n.sim * :lambda * idf(i.item_id))
    FROM neighbors n JOIN session_items i USING (session_id)
    GROUP BY i.item_id ORDER BY 2 DESC LIMIT :how_many;

Every intermediate row is counted against a budget; exceeding it raises
:class:`MemoryBudgetExceeded`, reproducing the ``X`` failures of Figure 3(a).
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.core.floatcmp import is_zero_score
from repro.core.index import SessionIndex
from repro.core.predictor import BatchMixin
from repro.core.scoring import top_n
from repro.core.types import Click, ItemId, ScoredItem
from repro.core.weights import decay_weights, paper_match_weight
from repro.engines.errors import MemoryBudgetExceeded


class Table:
    """A fully materialised relation: named columns over tuple rows."""

    def __init__(self, columns: Sequence[str], rows: list[tuple]) -> None:
        self.columns = list(columns)
        self.rows = rows
        self._col_index = {name: i for i, name in enumerate(self.columns)}

    def __len__(self) -> int:
        return len(self.rows)

    def col(self, name: str) -> int:
        try:
            return self._col_index[name]
        except KeyError:
            raise KeyError(
                f"no column {name!r}; available: {self.columns}"
            ) from None


class RelationalExecutor:
    """Executes operators, materialising and metering every output."""

    def __init__(self, intermediate_budget: int = 5_000_000) -> None:
        self.intermediate_budget = intermediate_budget
        self.rows_materialised = 0

    def _charge(self, rows: int) -> None:
        self.rows_materialised += rows
        if self.rows_materialised > self.intermediate_budget:
            raise MemoryBudgetExceeded(
                "VMIS-SQL", self.rows_materialised, self.intermediate_budget
            )

    def table(self, columns: Sequence[str], rows: Iterable[tuple]) -> Table:
        materialised = list(rows)
        self._charge(len(materialised))
        return Table(columns, materialised)

    def filter(self, table: Table, predicate: Callable[[tuple], bool]) -> Table:
        return self.table(table.columns, (r for r in table.rows if predicate(r)))

    def project(
        self, table: Table, columns: Sequence[str], exprs: Sequence[Callable[[tuple], object]]
    ) -> Table:
        return self.table(columns, (tuple(e(r) for e in exprs) for r in table.rows))

    def hash_join(
        self, left: Table, right: Table, left_key: str, right_key: str
    ) -> Table:
        """Inner equi-join; output columns are left's then right's."""
        right_index: dict[object, list[tuple]] = {}
        key_position = right.col(right_key)
        for row in right.rows:
            right_index.setdefault(row[key_position], []).append(row)
        self._charge(len(right.rows))  # the build-side hash table

        left_position = left.col(left_key)
        joined = (
            left_row + right_row
            for left_row in left.rows
            for right_row in right_index.get(left_row[left_position], ())
        )
        return self.table(list(left.columns) + list(right.columns), joined)

    def group_by(
        self,
        table: Table,
        key: str,
        aggregates: dict[str, tuple[str, str]],
    ) -> Table:
        """Group on one key with SUM/MAX/COUNT aggregates.

        ``aggregates`` maps output column -> (function, input column),
        function in {"sum", "max", "count"}.
        """
        key_position = table.col(key)
        specs = [
            (function, table.col(column) if function != "count" else -1)
            for function, column in aggregates.values()
        ]
        groups: dict[object, list] = {}
        for row in table.rows:
            state = groups.get(row[key_position])
            if state is None:
                state = [None] * len(specs)
                groups[row[key_position]] = state
            for i, (function, position) in enumerate(specs):
                if function == "sum":
                    value = row[position]
                    state[i] = value if state[i] is None else state[i] + value
                elif function == "max":
                    value = row[position]
                    state[i] = value if state[i] is None else max(state[i], value)
                elif function == "count":
                    state[i] = 1 if state[i] is None else state[i] + 1
                else:
                    raise ValueError(f"unsupported aggregate {function!r}")
        return self.table(
            [key] + list(aggregates),
            ((k, *state) for k, state in groups.items()),
        )

    def order_by(
        self, table: Table, columns: Sequence[str], descending: bool = True
    ) -> Table:
        positions = [table.col(c) for c in columns]
        rows = sorted(
            table.rows,
            key=lambda r: tuple(r[p] for p in positions),
            reverse=descending,
        )
        return self.table(table.columns, rows)

    def limit(self, table: Table, n: int) -> Table:
        return self.table(table.columns, table.rows[:n])


class SQLVMIS(BatchMixin):
    """The "VMIS-SQL" engine: VMIS similarity as a relational plan."""

    name = "VMIS-SQL"

    def __init__(
        self,
        index: SessionIndex,
        m: int = 500,
        k: int = 100,
        intermediate_budget: int = 5_000_000,
    ) -> None:
        self.index = index
        self.m = m
        self.k = k
        self.intermediate_budget = intermediate_budget
        # Base relations, materialised once ("loading the database").
        self._postings_rows: dict[ItemId, list[tuple]] = {
            item: [
                (item, session_id, index.timestamp_of(session_id))
                for session_id in postings
            ]
            for item, postings in index.item_to_sessions.items()
        }
        self._session_item_rows: list[tuple] = [
            (session_id, item)
            for session_id, items in enumerate(index.session_items)
            for item in items
        ]

    @classmethod
    def from_clicks(cls, clicks: Iterable[Click], m: int = 500, **kwargs) -> "SQLVMIS":
        index = SessionIndex.from_clicks(clicks, max_sessions_per_item=m)
        return cls(index, m=m, **kwargs)

    def recommend(
        self, session_items: Sequence[ItemId], how_many: int = 21
    ) -> list[ScoredItem]:
        if not session_items:
            return []
        executor = RelationalExecutor(self.intermediate_budget)

        # Relation: the evolving session with decay weights.
        weights = decay_weights(session_items)
        query_items = executor.table(
            ["item_id", "weight"], list(weights.items())
        )

        # matches := postings JOIN query_items USING (item_id)
        postings = executor.table(
            ["item_id", "session_id", "timestamp"],
            (
                row
                for item in weights
                for row in self._postings_rows.get(item, ())
            ),
        )
        matches = executor.hash_join(postings, query_items, "item_id", "item_id")

        # similarities := SELECT session_id, SUM(weight), MAX(timestamp)
        similarities = executor.group_by(
            matches,
            "session_id",
            {"sim": ("sum", "weight"), "ts": ("max", "timestamp")},
        )

        # Recency window: keep the m most recent matching sessions.
        # session_id is the final ORDER BY key both times: internal ids
        # ascend with (timestamp, external id), so this reproduces the
        # core implementations' deterministic tie-breaks exactly.
        recent = executor.limit(
            executor.order_by(
                similarities, ["ts", "session_id"], descending=True
            ),
            self.m,
        )

        # neighbors := top-k by similarity (ties by recency, then id).
        neighbors = executor.limit(
            executor.order_by(
                recent, ["sim", "ts", "session_id"], descending=True
            ),
            self.k,
        )

        # Item scores: neighbors JOIN session_items, weighted aggregate.
        session_items_rel = executor.table(
            ["session_id", "item_id"],
            (
                (sid_row[neighbors.col("session_id")], item)
                for sid_row in neighbors.rows
                for item in self.index.items_of(
                    sid_row[neighbors.col("session_id")]
                )
            ),
        )
        joined = executor.hash_join(
            neighbors, session_items_rel, "session_id", "session_id"
        )

        orders = {item: pos for pos, item in enumerate(session_items, start=1)}
        sim_position = joined.col("sim")
        sid_position = joined.col("session_id")
        item_position = len(neighbors.columns) + 1  # right side's item_id

        # Match weight per neighbour (correlated subquery in the SQL form).
        # Neighbours whose weight is zero contribute nothing and are
        # filtered out (the reference skips them before scoring).
        match_by_session: dict[int, float] = {}
        for row in neighbors.rows:
            session_id = row[neighbors.col("session_id")]
            shared = [
                orders[i]
                for i in self.index.items_of(session_id)
                if i in orders
            ]
            match_by_session[session_id] = (
                paper_match_weight(max(shared)) if shared else 0.0
            )

        joined = executor.filter(
            joined,
            lambda r: not is_zero_score(match_by_session[r[sid_position]]),
        )
        scored = executor.project(
            joined,
            ["item_id", "score"],
            [
                lambda r: r[item_position],
                lambda r: r[sim_position]
                * match_by_session[r[sid_position]]
                * self.index.idf(r[item_position]),
            ],
        )
        totals = executor.group_by(scored, "item_id", {"score": ("sum", "score")})
        # Zero scores are kept: idf can legitimately be zero (an item in
        # every session), and the reference implementation ranks them too.
        scores = {row[0]: row[1] for row in totals.rows}
        return top_n(scores, how_many)
