"""VMIS-Diff: incremental similarity computation on a mini-dataflow (§5.2.1).

The paper's Differential Dataflow baseline computes the recommendations
"incrementally via joins and aggregations" and always completes, but loses
to the custom implementation because it "has to index all intermediate
results due to its support for updates".

This module implements a miniature differential-dataflow substrate —
multiset deltas flowing through join/reduce operators that each maintain an
indexed arrangement of their input — and expresses the VMIS similarity
computation on top of it:

1. the evolving session is an input collection of ``(item, weight)`` facts;
   appending a click changes the session length, so the decay weight of
   *every* previous item changes — the input retracts and re-inserts all
   facts (this is the inherent write amplification of the incremental
   formulation);
2. a join with the static postings arrangement multiplies each item fact
   into ``(historical session, weight)`` deltas;
3. a keyed-sum reduce maintains per-session similarities;
4. top-k is evaluated over the maintained similarity arrangement.

``recommend`` keeps per-session incremental state: when called with a
sequence that extends the previously seen prefix, only the new clicks flow
through the graph — the growing-session workload of the Figure 3(a)
experiment.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.floatcmp import scores_differ
from repro.core.index import SessionIndex
from repro.core.predictor import BatchMixin
from repro.core.scoring import score_items, top_n
from repro.core.types import Click, ItemId, ScoredItem, SessionId
from repro.core.weights import DecayFn, resolve_decay

Delta = tuple  # (payload..., diff) — diff is +1 / -1 multiplicity


class Arrangement:
    """Indexed multiset state: key -> value -> signed multiplicity.

    Every dataflow operator arranges its input; this is precisely the
    overhead the paper attributes the baseline's slowness to.
    """

    def __init__(self) -> None:
        self._state: dict = {}
        self.updates = 0

    def apply(self, key, value, diff: int) -> None:
        """Fold one delta into the arrangement, dropping zeroed entries."""
        values = self._state.setdefault(key, {})
        count = values.get(value, 0) + diff
        self.updates += 1
        if count == 0:
            del values[value]
            if not values:
                del self._state[key]
        else:
            values[value] = count

    def values_of(self, key) -> dict:
        return self._state.get(key, {})

    def keys(self):
        return self._state.keys()

    def __len__(self) -> int:
        return len(self._state)


class KeyedSum:
    """A reduce operator maintaining a running sum per key."""

    def __init__(self) -> None:
        self._sums: dict = {}
        self.updates = 0

    def apply(self, key, amount: float, diff: int) -> None:
        value = self._sums.get(key, 0.0) + amount * diff
        self.updates += 1
        if abs(value) < 1e-12:
            self._sums.pop(key, None)
        else:
            self._sums[key] = value

    @property
    def sums(self) -> dict:
        return self._sums


class SessionSimilarityDataflow:
    """The per-evolving-session incremental operator graph."""

    def __init__(self, index: SessionIndex, m: int, decay_fn: DecayFn) -> None:
        self._index = index
        self._m = m
        self._decay_fn = decay_fn
        self._items: list[ItemId] = []
        # Arranged input: item -> weight facts currently asserted.
        self._item_weights = Arrangement()
        # Arranged join output + maintained reduce.
        self._joined = Arrangement()
        self._similarities = KeyedSum()

    @property
    def items(self) -> list[ItemId]:
        return self._items

    def push_click(self, item: ItemId) -> None:
        """Feed one click: retract stale weight facts, assert new ones."""
        old_facts = self._current_facts()
        self._items.append(item)
        new_facts = self._current_facts()
        # Differential update: only changed facts produce deltas. "Changed"
        # uses the tie envelope — decay weights that moved by less than
        # float noise are the same fact re-derived, not a retraction.
        for fact_item, weight in old_facts.items():
            new_weight = new_facts.get(fact_item)
            if new_weight is None or scores_differ(new_weight, weight):
                self._apply_input_delta(fact_item, weight, -1)
        for fact_item, weight in new_facts.items():
            old_weight = old_facts.get(fact_item)
            if old_weight is None or scores_differ(old_weight, weight):
                self._apply_input_delta(fact_item, weight, +1)

    def _current_facts(self) -> dict[ItemId, float]:
        length = len(self._items)
        facts: dict[ItemId, float] = {}
        for position, item in enumerate(self._items, start=1):
            facts[item] = self._decay_fn(position, length)
        return facts

    def _apply_input_delta(self, item: ItemId, weight: float, diff: int) -> None:
        self._item_weights.apply(item, weight, diff)
        # Join with the static postings arrangement: each (item, weight)
        # delta multiplies into one delta per posting (up to m).
        for session_id in self._index.sessions_for_item(item)[: self._m]:
            self._joined.apply(session_id, (item, weight), diff)
            self._similarities.apply(session_id, weight, diff)

    def top_k(self, k: int) -> list[tuple[SessionId, float]]:
        """Read the maintained similarities and rank the top-k."""
        timestamps = self._index.session_timestamps
        # (similarity, timestamp, id) — the id tie-break matches the core
        # implementations, so exact similarity/timestamp ties rank the
        # same neighbours here as in VMIS-kNN.
        ranked = sorted(
            self._similarities.sums.items(),
            key=lambda kv: (kv[1], timestamps[kv[0]], kv[0]),
            reverse=True,
        )
        return ranked[:k]


class DataflowVMIS(BatchMixin):
    """The "VMIS-Diff" engine: incremental, always-completing, indexed."""

    name = "VMIS-Diff"

    def __init__(
        self,
        index: SessionIndex,
        m: int = 500,
        k: int = 100,
        decay: str | DecayFn = "linear",
    ) -> None:
        self.index = index
        self.m = m
        self.k = k
        self._decay_fn = resolve_decay(decay)
        self._flow: SessionSimilarityDataflow | None = None

    @classmethod
    def from_clicks(cls, clicks: Iterable[Click], m: int = 500, **kwargs) -> "DataflowVMIS":
        index = SessionIndex.from_clicks(clicks, max_sessions_per_item=m)
        return cls(index, m=m, **kwargs)

    def reset(self) -> None:
        """Drop the incremental state (start of a new evolving session)."""
        self._flow = None

    def recommend(
        self, session_items: Sequence[ItemId], how_many: int = 21
    ) -> list[ScoredItem]:
        if not session_items:
            return []
        items = list(session_items)
        flow = self._flow
        if flow is None or flow.items != items[: len(flow.items)]:
            flow = SessionSimilarityDataflow(self.index, self.m, self._decay_fn)
            self._flow = flow
        for item in items[len(flow.items) :]:
            flow.push_click(item)

        neighbors = flow.top_k(self.k)
        scores = score_items(self.index, items, neighbors, style="vmis")
        return top_n(scores, how_many)

    def state_size(self) -> dict[str, int]:
        """Sizes of the maintained arrangements (the indexing overhead)."""
        if self._flow is None:
            return {"item_weights": 0, "joined": 0, "similarities": 0}
        return {
            "item_weights": len(self._flow._item_weights),
            "joined": len(self._flow._joined),
            "similarities": len(self._flow._similarities.sums),
        }
