"""VMIS-Java: the managed-runtime hashmap engine (§5.2.1).

The paper's Java baseline stores the historical sessions in Java hashmaps
and suffers from "not having full control over the memory management
during the similarity computation (and instead relying on a garbage
collector)" — its p90 latency trails the Rust implementation by an order
of magnitude on the larger datasets although its medians are decent.

This engine reproduces both properties:

* the algorithm itself follows VMIS-kNN's index walk, but accumulates
  candidates in freshly allocated boxed structures and selects the top-k
  with a full sort instead of bounded heaps (allocation-heavy, like an
  idiomatic Java port);
* a :class:`GarbageCollectorSimulator` registers every transient
  allocation and, when the young generation fills, performs a real
  mark-sweep pass over the registry — injecting the stop-the-world pauses
  that fatten the latency tail.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.index import SessionIndex
from repro.core.predictor import BatchMixin
from repro.core.scoring import score_items, top_n
from repro.core.types import Click, ItemId, ScoredItem, SessionId
from repro.core.weights import decay_weights


class GarbageCollectorSimulator:
    """Deterministic stop-the-world collector over registered allocations.

    Every transient object the engine allocates is appended to the young
    generation. Once it holds ``young_generation_size`` objects, a
    collection runs: a mark phase touches every registered object and a
    sweep drops the registry. The pause cost is real CPU time proportional
    to the live set, as in a tracing collector.
    """

    def __init__(self, young_generation_size: int = 50_000) -> None:
        if young_generation_size < 1:
            raise ValueError("young_generation_size must be >= 1")
        self.young_generation_size = young_generation_size
        self._young: list[object] = []
        self.collections = 0
        self.objects_traced = 0

    def allocate(self, obj: object) -> object:
        """Register one allocation, possibly triggering a collection."""
        self._young.append(obj)
        if len(self._young) >= self.young_generation_size:
            self.collect()
        return obj

    def collect(self) -> None:
        """Mark (touch every object) and sweep (drop the generation)."""
        marked = 0
        for obj in self._young:
            # The mark phase must actually visit the object graph; for our
            # flat allocations hashing stands in for the pointer chase.
            marked += 1 if hash(id(obj)) is not None else 0
        self.objects_traced += marked
        self.collections += 1
        self._young.clear()


class HashmapVMIS(BatchMixin):
    """The allocation-heavy "VMIS-Java" engine."""

    name = "VMIS-Java"

    def __init__(
        self,
        index: SessionIndex,
        m: int = 500,
        k: int = 100,
        gc: GarbageCollectorSimulator | None = None,
    ) -> None:
        self.index = index
        self.m = m
        self.k = k
        self.gc = gc or GarbageCollectorSimulator()

    @classmethod
    def from_clicks(cls, clicks: Iterable[Click], m: int = 500, **kwargs) -> "HashmapVMIS":
        index = SessionIndex.from_clicks(clicks, max_sessions_per_item=m)
        return cls(index, m=m, **kwargs)

    def recommend(
        self, session_items: Sequence[ItemId], how_many: int = 21
    ) -> list[ScoredItem]:
        if not session_items:
            return []
        neighbors = self._find_neighbors(session_items)
        scores = score_items(
            self.index, session_items, neighbors, style="vmis"
        )
        return top_n(scores, how_many)

    def _find_neighbors(
        self, session_items: Sequence[ItemId]
    ) -> list[tuple[SessionId, float]]:
        index = self.index
        gc = self.gc
        weights = decay_weights(session_items)
        # Boxed accumulation: every candidate gets a fresh [sid, score]
        # cell (registered with the collector), like autoboxed Map entries.
        similarities: dict[SessionId, list] = {}
        for item in dict.fromkeys(reversed(session_items)):
            decay_weight = weights[item]
            for session_id in index.sessions_for_item(item)[: self.m]:
                cell = similarities.get(session_id)
                if cell is None:
                    cell = gc.allocate([session_id, 0.0])
                    similarities[session_id] = cell
                cell[1] += decay_weight

        # Keep the m most recent candidates via a full sort (no heap).
        # Ties on timestamp fall back to the session id, matching the
        # core implementations' (timestamp, id) retention order.
        timestamps = index.session_timestamps
        candidates = gc.allocate(
            sorted(
                similarities,
                key=lambda sid: (timestamps[sid], sid),
                reverse=True,
            )
        )
        recent = candidates[: self.m]

        # Top-k again via a full sort of freshly allocated tuples.
        ranked = gc.allocate(
            sorted(
                (
                    gc.allocate(
                        (similarities[sid][1], timestamps[sid], sid)
                    )
                    for sid in recent
                ),
                reverse=True,
            )
        )
        return [(sid, score) for score, _, sid in ranked[: self.k]]
