"""Fundamental data types shared across the library.

The whole system operates on click events: tuples of (session id, item id,
timestamp), exactly the schema the paper's datasets use (Table 1). Item and
session identifiers are plain integers; the index builder remaps arbitrary
external identifiers to consecutive integers so that session metadata can be
stored in flat arrays with O(1) random access (Section 3 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

ItemId = int
SessionId = int
Timestamp = int


@dataclass(frozen=True, slots=True)
class Click:
    """A single user-item interaction event."""

    session_id: SessionId
    item_id: ItemId
    timestamp: Timestamp

    def as_tuple(self) -> tuple[SessionId, ItemId, Timestamp]:
        return (self.session_id, self.item_id, self.timestamp)


@dataclass(frozen=True, slots=True)
class ScoredItem:
    """An item together with its recommendation score (higher is better)."""

    item_id: ItemId
    score: float

    def __lt__(self, other: "ScoredItem") -> bool:
        return (self.score, self.item_id) < (other.score, other.item_id)


@dataclass(slots=True)
class EvolvingSession:
    """The state of a live user session, ordered oldest to newest.

    ``items`` keeps the raw click order including duplicates; ``max_items``
    caps the history used for prediction, mirroring the paper's statement
    that the number of items in an evolving session is "capped at a maximum
    value" to bound prediction latency.
    """

    session_id: SessionId
    items: list[ItemId] = field(default_factory=list)
    last_updated: Timestamp = 0
    max_items: int = 100

    def add_click(self, item_id: ItemId, timestamp: Timestamp) -> None:
        """Append one interaction, trimming history beyond ``max_items``."""
        self.items.append(item_id)
        if len(self.items) > self.max_items:
            del self.items[: len(self.items) - self.max_items]
        self.last_updated = max(self.last_updated, timestamp)

    @property
    def most_recent_item(self) -> ItemId:
        if not self.items:
            raise ValueError("session has no interactions yet")
        return self.items[-1]

    def __len__(self) -> int:
        return len(self.items)


def insertion_orders(session_items: Sequence[ItemId]) -> dict[ItemId, int]:
    """Map each distinct item to its 1-based insertion order omega(s).

    For items clicked several times the position of the *most recent*
    occurrence wins, matching the reverse-order traversal of Algorithm 2
    where the first (most recent) visit of an item is the one processed.

    >>> insertion_orders([10, 20, 10])
    {10: 3, 20: 2}
    """
    orders: dict[ItemId, int] = {}
    for position, item in enumerate(session_items, start=1):
        orders[item] = position
    return orders


def unique_items_reversed(session_items: Sequence[ItemId]) -> Iterator[ItemId]:
    """Yield distinct items of a session in reverse insertion order.

    This is the item intersection loop order of Algorithm 2: most recent
    items first, duplicates skipped via the hashset ``d``.
    """
    seen: set[ItemId] = set()
    for item in reversed(session_items):
        if item not in seen:
            seen.add(item)
            yield item


def clicks_to_sessions(
    clicks: Iterable[Click],
) -> dict[SessionId, list[tuple[Timestamp, ItemId]]]:
    """Group clicks into per-session (timestamp, item) lists in time order."""
    sessions: dict[SessionId, list[tuple[Timestamp, ItemId]]] = {}
    for click in clicks:
        sessions.setdefault(click.session_id, []).append(
            (click.timestamp, click.item_id)
        )
    for events in sessions.values():
        events.sort()
    return sessions
