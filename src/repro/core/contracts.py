"""Declarative data/ordering contracts checked by ``repro.analysis``.

:mod:`repro.core.locking` declares *lock* discipline; this module
declares the two other invariant families the serving stack leans on:

* :func:`frozen_buffers` marks the numpy buffer attributes of a class
  that are immutable once construction finishes. The columnar index
  (:class:`~repro.core.colindex.ColumnarSessionIndex`) publishes its
  ``int64``/``float64`` arrays to every serving thread without a lock —
  that is only sound because nothing ever writes them again. ``SRN006``
  statically rejects post-construction stores, in-place mutators
  (``resize``/``sort``/``fill``), and dtype-less ``np.asarray``
  conversions flowing into a frozen buffer.
* :func:`happens_before` declares an intra-method call ordering: within
  every method of the decorated class, a call to ``second`` must be
  preceded — on **every** control-flow path — by a call to ``first``.
  The ring coordinator uses it to pin the WAL-append-before-ack
  ordering (``update_session`` must dominate ``predict``): serving a
  prediction before the click reached the leader's WAL would ack state
  that a crash could lose. ``SRN008`` verifies the ordering with a
  flow-sensitive must-analysis over the method CFG.

At runtime both decorators only attach metadata (``__frozen_buffers__``
/ ``__happens_before__``) — zero overhead on the request path. The
static rules read the same declarations from the AST.
"""

from __future__ import annotations

from typing import Callable, TypeVar

__all__ = ["frozen_buffers", "happens_before"]

_ClassT = TypeVar("_ClassT", bound=type)


def frozen_buffers(*attributes: str) -> Callable[[_ClassT], _ClassT]:
    """Declare that ``attributes`` are immutable after construction.

    Usage::

        @frozen_buffers("item_ids", "posting_sessions")
        class ColumnarSessionIndex: ...

    The decorator is stackable and cumulative; inherited metadata is
    never mutated in place.
    """
    if not attributes:
        raise ValueError("frozen_buffers needs at least one attribute name")

    def decorate(cls: _ClassT) -> _ClassT:
        declared: tuple[str, ...] = tuple(
            dict.fromkeys(getattr(cls, "__frozen_buffers__", ()) + attributes)
        )
        cls.__frozen_buffers__ = declared
        return cls

    return decorate


def happens_before(first: str, second: str) -> Callable[[_ClassT], _ClassT]:
    """Declare that ``first(...)`` must dominate ``second(...)``.

    Within every method of the decorated class, any call whose callee
    name is ``second`` must be preceded on all control-flow paths by a
    call whose callee name is ``first`` (receivers are not matched —
    the ordering is between the *operations*, wherever they live).

    Usage::

        @happens_before("update_session", "predict")
        class RingCoordinator: ...

    Stack the decorator to declare several orderings.
    """
    if not first or not second:
        raise ValueError("happens_before needs two method names")
    if first == second:
        raise ValueError("happens_before needs two distinct method names")

    def decorate(cls: _ClassT) -> _ClassT:
        declared: tuple[tuple[str, str], ...] = tuple(
            dict.fromkeys(
                getattr(cls, "__happens_before__", ()) + ((first, second),)
            )
        )
        cls.__happens_before__ = declared
        return cls

    return decorate
