"""Tie-envelope helpers for comparing floating-point scores.

Ludewig & Jannach's replication study (arXiv:1803.09587) documents how
silent float-comparison drift — ties broken by summation order, exact
``==`` on accumulated similarities — corrupts kNN-recommender results.
The differential oracle (:mod:`repro.testing.oracle`) already treats two
similarities as tied when their gap is below a relative epsilon; this
module is the shared home of that envelope so ranking code and the
oracle agree on one definition, and so the ``SRN002`` rule of
:mod:`repro.analysis` can forbid raw ``==``/``!=`` on score-typed
expressions in ranking code.

Two kinds of comparison are legitimate on scores:

* :func:`scores_tied` / :func:`scores_differ` — the oracle's relative
  tie envelope, for deciding whether two accumulated scores are
  distinguishable above float noise;
* :func:`is_zero_score` — an *exact* zero test, valid only for values
  that are structurally zero (a weight function returning the literal
  ``0.0``, an accumulator that was never added to), never for values
  that merely ought to cancel.
"""

from __future__ import annotations

__all__ = [
    "CUT_EPSILON",
    "is_zero_score",
    "scores_differ",
    "scores_tied",
]

#: Relative gap below which two scores count as a float tie. This is the
#: oracle's neighbour-cut epsilon: differences smaller than this are
#: indistinguishable from summation-order noise.
CUT_EPSILON = 1e-9


def scores_tied(a: float, b: float, rel_epsilon: float = CUT_EPSILON) -> bool:
    """Whether two scores are indistinguishable above float noise.

    The gap is compared against ``rel_epsilon`` scaled by the larger
    magnitude (floored at 1.0 so scores near zero use an absolute
    envelope), matching the oracle's neighbour-cut stability test.
    """
    gap = abs(a - b)
    return gap <= rel_epsilon * max(1.0, abs(a), abs(b))


def scores_differ(a: float, b: float, rel_epsilon: float = CUT_EPSILON) -> bool:
    """Whether the gap between two scores exceeds the tie envelope."""
    return not scores_tied(a, b, rel_epsilon)


def is_zero_score(value: float) -> bool:
    """Exact zero test for *structurally* zero scores.

    Use this only where zero arises from construction — a match weight
    defined piecewise with a literal ``0.0`` branch, an accumulator no
    contribution was added to — not where a sum is merely expected to
    cancel. The exactness is the point: it keeps "no contribution"
    decisions bit-stable across implementations.
    """
    return value == 0.0  # serenade: ignore[SRN002] the exact-zero seam itself
