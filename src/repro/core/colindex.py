"""Columnar (struct-of-arrays) session index and the vectorized scorer.

The interpreted :class:`~repro.core.vmis.VMISKNN` walks posting lists one
entry at a time, maintaining the bounded similarity hashmap ``r`` and the
recency heap ``b_t`` per candidate. This module stores the same index as
contiguous numpy buffers — the shape the paper's Rust implementation (and
ann-benchmarks' bulk columnar loaders) uses — and replaces the
heap-per-candidate loop with bulk array operations:

* **layout** — per-item posting runs live back to back in one int64
  ``posting_sessions`` array addressed by an ``posting_offsets`` table
  (``run(i) = posting_sessions[offsets[i]:offsets[i+1]]``), with a
  parallel float64 ``posting_timestamps`` array; session metadata
  (timestamps, per-session item lists) uses the same offset-table shape.
* **scoring** — the query gathers the posting runs of its distinct items
  (newest first), prunes each run by binary search against the best
  run's m-th largest id (the vectorized analogue of early stopping),
  selects the retained sample with one sort + dedup over the pruned
  candidate window, accumulates similarities with one ``np.bincount``,
  and takes the top-k via ``np.partition`` + lexsort.

**Equality contract.** The scorer is *bit-identical* to the heap path —
same floats, same order, not merely the same ranking. Two build-time
invariants make that possible:

1. Internal session ids are assigned in ascending ``(timestamp, external
   id)`` order, so the id ordering *refines* the timestamp ordering:
   ``id_a < id_b`` whenever ``ts_a < ts_b``. The heap path's retained
   sample — driven by ``(timestamp, id)`` comparisons against the heap
   root, including lossless early stopping on newest-first runs — is
   therefore exactly the ``m`` largest distinct internal ids over the
   union of the query's posting runs, a pure integer selection.
2. A finally-retained session is inserted at its first encounter and
   never evicted (eviction only removes the current ``m``-th largest id,
   which a finally-retained id can never be), so its similarity is the
   sum of the decay weights of *all* distinct query items containing it,
   accumulated in distinct-item newest-first order. ``np.bincount``
   applies its per-element additions sequentially in input order, so
   feeding it the concatenated runs newest-item-first reproduces the
   heap path's float additions operation for operation.

Only the first ``m`` entries of each run can matter: runs hold strictly
descending distinct ids, so any entry past position ``m`` is dominated by
``m`` larger ids in its own run. That bounds the candidate window to
``|distinct query items| * m`` regardless of posting-list length.

The d-ary heap path stays as the differential oracle; see
``tests/testing/test_columnar_properties.py`` and the corpus sweep in
:mod:`repro.testing.oracle`, which hold the two paths bit-equal.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Sequence

import numpy as np

from repro.core.contracts import frozen_buffers
from repro.core.floatcmp import is_zero_score
from repro.core.index import SessionIndex
from repro.core.predictor import BatchMixin
from repro.core.types import (
    Click,
    ItemId,
    ScoredItem,
    SessionId,
    insertion_orders,
    unique_items_reversed,
)
from repro.core.weights import (
    DecayFn,
    MatchWeightFn,
    resolve_decay,
    resolve_match_weight,
)

__all__ = ["ColumnarSessionIndex", "VMISKNNColumnar"]

_INT = np.int64
_FLOAT = np.float64


def _as_int_array(values: Any) -> np.ndarray:
    arr = np.ascontiguousarray(values, dtype=_INT)
    if arr is values:
        # A conforming ndarray comes back uncopied; the caller would keep
        # write access to a buffer we are about to freeze and share.
        arr = arr.copy()
    return arr


def _as_float_array(values: Any) -> np.ndarray:
    arr = np.ascontiguousarray(values, dtype=_FLOAT)
    if arr is values:
        arr = arr.copy()
    return arr


@frozen_buffers(
    "item_ids",
    "item_frequencies",
    "posting_offsets",
    "posting_sessions",
    "posting_timestamps",
    "session_timestamps",
    "session_item_offsets",
    "session_item_values",
    "posting_sessions_asc",
    "session_item_rows",
    "idf_values",
)
class ColumnarSessionIndex:
    """Struct-of-arrays view of the (M, t) index.

    All buffers are contiguous ``int64``/``float64`` numpy arrays:

    Attributes:
        item_ids: distinct item ids with a posting run, ascending — row
            ``r`` of every per-item array describes ``item_ids[r]``.
        item_frequencies: untruncated per-item session counts ``h_i``.
        posting_offsets: ``[num_rows + 1]`` offsets into the posting
            arrays; row ``r``'s run is ``[offsets[r], offsets[r+1])``.
        posting_sessions: concatenated posting runs, strictly descending
            internal session id within each run (newest first).
        posting_timestamps: session timestamp parallel to every
            ``posting_sessions`` entry (``t[posting_sessions]``).
        session_timestamps: the ``t`` array, indexed by internal id.
        session_item_offsets: ``[num_sessions + 1]`` offsets into the
            session-item arrays.
        session_item_values: concatenated distinct-item lists per
            session, click order (what ``items_of`` returns).
        max_sessions_per_item: the build-time posting cap ``m``.

    Derived at construction (not part of the serialized payload):
    ``session_item_rows`` maps every session item to its posting row,
    ``idf_values`` precomputes ``log(|H| / h_i)`` per row with
    ``math.log`` so values are bit-identical to
    :meth:`SessionIndex.idf`, and ``_item_row`` is the item → row hash.
    """

    def __init__(
        self,
        item_ids: Any,
        item_frequencies: Any,
        posting_offsets: Any,
        posting_sessions: Any,
        session_timestamps: Any,
        session_item_offsets: Any,
        session_item_values: Any,
        max_sessions_per_item: int,
        posting_timestamps: Any | None = None,
    ) -> None:
        self.item_ids = _as_int_array(item_ids)
        self.item_frequencies = _as_int_array(item_frequencies)
        self.posting_offsets = _as_int_array(posting_offsets)
        self.posting_sessions = _as_int_array(posting_sessions)
        self.session_timestamps = _as_float_array(session_timestamps)
        self.session_item_offsets = _as_int_array(session_item_offsets)
        self.session_item_values = _as_int_array(session_item_values)
        self.max_sessions_per_item = max_sessions_per_item
        self._validate_layout()
        # Postings validate before the timestamp gather below: an
        # out-of-range id must raise ValueError, not IndexError (and a
        # negative one must never silently wrap around).
        self._validate_postings()
        if posting_timestamps is None:
            posting_timestamps = self.session_timestamps[self.posting_sessions]
        self.posting_timestamps = _as_float_array(posting_timestamps)
        # Ascending mirror of the posting payload: run ``r`` ascending is
        # ``asc[P - offsets[r+1] : P - offsets[r]]``. The scorer prunes
        # runs by binary search against the retention threshold — the
        # vectorized analogue of early stopping — which wants ascending
        # contiguous slices. Derived, never serialized.
        self.posting_sessions_asc = np.ascontiguousarray(
            self.posting_sessions[::-1]
        )
        self.session_item_rows = self._resolve_session_item_rows()
        self.idf_values = self._compute_idf()
        self._item_row: dict[ItemId, int] = {
            int(item): row for row, item in enumerate(self.item_ids.tolist())
        }
        # Enforce the @frozen_buffers contract at runtime too: any stray
        # write after construction raises instead of corrupting shared
        # serving state.
        for name in type(self).__frozen_buffers__:
            getattr(self, name).setflags(write=False)

    # -- construction-time validation ----------------------------------------

    def _validate_layout(self) -> None:
        rows = self.item_ids.shape[0]
        if self.item_frequencies.shape[0] != rows:
            raise ValueError("item_frequencies length must match item_ids")
        if self.posting_offsets.shape[0] != rows + 1:
            raise ValueError("posting_offsets must have num_rows + 1 entries")
        if rows and not np.all(np.diff(self.item_ids) > 0):
            raise ValueError("item_ids must be strictly ascending")
        for name, offsets, payload in (
            ("posting", self.posting_offsets, self.posting_sessions),
            ("session_item", self.session_item_offsets, self.session_item_values),
        ):
            if offsets.shape[0] == 0 or offsets[0] != 0:
                raise ValueError(f"{name}_offsets must start at 0")
            if np.any(np.diff(offsets) < 0):
                raise ValueError(f"{name}_offsets must be non-decreasing")
            if offsets[-1] != payload.shape[0]:
                raise ValueError(
                    f"{name}_offsets must end at the payload length "
                    f"({int(offsets[-1])} != {payload.shape[0]})"
                )
        if self.session_item_offsets.shape[0] != self.num_sessions + 1:
            raise ValueError(
                "session_item_offsets must have num_sessions + 1 entries"
            )

    def _validate_postings(self) -> None:
        sessions = self.posting_sessions
        if sessions.size == 0:
            return
        if sessions.min() < 0 or sessions.max() >= self.num_sessions:
            raise ValueError("posting session id out of range")
        # Strictly descending ids inside every run: check all adjacent
        # pairs at once, exempting the positions where a new run starts.
        deltas = np.diff(sessions)
        boundary = np.zeros(deltas.shape[0], dtype=bool)
        run_starts = self.posting_offsets[1:-1]
        in_range = (run_starts >= 1) & (run_starts <= deltas.shape[0])
        boundary[run_starts[in_range] - 1] = True
        if np.any(deltas[~boundary] >= 0):
            raise ValueError(
                "posting runs must be strictly descending session ids "
                "(newest first)"
            )

    def _resolve_session_item_rows(self) -> np.ndarray:
        values = self.session_item_values
        if values.size == 0:
            return np.zeros(0, dtype=_INT)
        rows = np.searchsorted(self.item_ids, values)
        in_range = rows < self.item_ids.shape[0]
        hit = np.zeros(values.shape[0], dtype=bool)
        hit[in_range] = self.item_ids[rows[in_range]] == values[in_range]
        if not bool(hit.all()):
            missing = int(values[~hit][0])
            raise ValueError(
                f"session item {missing} has no posting row: the columnar "
                "index requires a consistent SessionIndex (every stored "
                "session item must carry a posting list)"
            )
        return _as_int_array(rows)

    def _compute_idf(self) -> np.ndarray:
        # math.log elementwise, not np.log: SessionIndex.idf memoises
        # math.log(|H| / h_i) and the equality contract is bit-level.
        num_sessions = self.num_sessions
        return _as_float_array(
            [
                math.log(num_sessions / count) if count else 0.0
                for count in self.item_frequencies.tolist()
            ]
        )

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_session_index(cls, index: SessionIndex) -> "ColumnarSessionIndex":
        """Pack a :class:`SessionIndex` into contiguous columnar buffers."""
        items = sorted(index.item_to_sessions)
        posting_offsets = np.zeros(len(items) + 1, dtype=_INT)
        runs: list[list[SessionId]] = []
        for row, item in enumerate(items):
            run = index.item_to_sessions[item]
            posting_offsets[row + 1] = posting_offsets[row] + len(run)
            runs.append(run)
        posting_sessions = (
            np.concatenate([_as_int_array(run) for run in runs])
            if runs
            else np.zeros(0, dtype=_INT)
        )
        session_item_offsets = np.zeros(index.num_sessions + 1, dtype=_INT)
        flat_items: list[ItemId] = []
        for sid, session in enumerate(index.session_items):
            session_item_offsets[sid + 1] = session_item_offsets[sid] + len(
                session
            )
            flat_items.extend(session)
        return cls(
            item_ids=items,
            item_frequencies=[index.item_session_counts[i] for i in items],
            posting_offsets=posting_offsets,
            posting_sessions=posting_sessions,
            session_timestamps=index.session_timestamps,
            session_item_offsets=session_item_offsets,
            session_item_values=flat_items,
            max_sessions_per_item=index.max_sessions_per_item,
        )

    @classmethod
    def from_clicks(
        cls, clicks: Iterable[Click], max_sessions_per_item: int = 5000
    ) -> "ColumnarSessionIndex":
        """Build the columnar index straight from raw click events."""
        return cls.from_session_index(
            SessionIndex.from_clicks(
                clicks, max_sessions_per_item=max_sessions_per_item
            )
        )

    def to_session_index(self) -> SessionIndex:
        """Unpack back into the dict/list index (timestamps as floats)."""
        item_ids = self.item_ids.tolist()
        offsets = self.posting_offsets.tolist()
        sessions = self.posting_sessions.tolist()
        item_to_sessions = {
            item: sessions[offsets[row] : offsets[row + 1]]
            for row, item in enumerate(item_ids)
        }
        frequencies = dict(zip(item_ids, self.item_frequencies.tolist()))
        session_offsets = self.session_item_offsets.tolist()
        flat = self.session_item_values.tolist()
        session_items = [
            tuple(flat[session_offsets[sid] : session_offsets[sid + 1]])
            for sid in range(self.num_sessions)
        ]
        return SessionIndex(
            item_to_sessions=item_to_sessions,
            session_timestamps=self.session_timestamps.tolist(),
            session_items=session_items,
            item_session_counts=frequencies,
            max_sessions_per_item=self.max_sessions_per_item,
        )

    # -- SessionIndex-compatible query surface -------------------------------

    @property
    def num_sessions(self) -> int:
        """Number of historical sessions |H|."""
        return self.session_item_offsets.shape[0] - 1

    @property
    def num_items(self) -> int:
        """Number of distinct items |I| with at least one posting."""
        return self.item_ids.shape[0]

    def sessions_for_item(self, item_id: ItemId) -> list[SessionId]:
        """Posting run ``m_i``, most recent sessions first; [] if unknown."""
        row = self._item_row.get(item_id)
        if row is None:
            return []
        start, end = self.posting_offsets[row], self.posting_offsets[row + 1]
        return [int(s) for s in self.posting_sessions[start:end]]

    def timestamp_of(self, session_id: SessionId) -> float:
        """Timestamp lookup in the ``t`` array (stored as float64)."""
        return float(self.session_timestamps[session_id])

    def items_of(self, session_id: SessionId) -> tuple[ItemId, ...]:
        """Distinct items of a historical session, in click order."""
        start = self.session_item_offsets[session_id]
        end = self.session_item_offsets[session_id + 1]
        return tuple(
            int(i) for i in self.session_item_values[start:end]
        )

    def idf(self, item_id: ItemId) -> float:
        """``log(|H| / h_i)``; 0.0 for unseen items."""
        row = self._item_row.get(item_id)
        if row is None:
            return 0.0
        return float(self.idf_values[row])

    def memory_profile(self) -> dict[str, int]:
        """Element counts, matching :meth:`SessionIndex.memory_profile`."""
        return {
            "num_items": self.num_items,
            "num_sessions": self.num_sessions,
            "posting_entries": int(self.posting_sessions.shape[0]),
            "stored_session_items": int(self.session_item_values.shape[0]),
        }


class VMISKNNColumnar(BatchMixin):
    """VMIS-kNN over the columnar index, bit-identical to the heap path.

    Constructor surface mirrors :class:`~repro.core.vmis.VMISKNN` (minus
    the heap knobs, which have no columnar counterpart): the heap path
    remains the differential oracle and this scorer must reproduce its
    outputs float for float under every configuration.
    """

    def __init__(
        self,
        index: ColumnarSessionIndex | None = None,
        m: int = 500,
        k: int = 100,
        decay: str | DecayFn = "linear",
        match_weight: str | MatchWeightFn = "paper",
        scoring_style: str = "vmis",
        exclude_current_items: bool = False,
        max_session_items: int | None = None,
    ) -> None:
        if m < 1 or k < 1:
            raise ValueError(f"m and k must be >= 1, got m={m}, k={k}")
        if max_session_items is not None and max_session_items < 1:
            raise ValueError("max_session_items must be >= 1 or None")
        self.index = index
        self.m = m
        self.k = k
        self.decay = decay
        self.match_weight = match_weight
        self.scoring_style = scoring_style
        self.exclude_current_items = exclude_current_items
        self.max_session_items = max_session_items

    def _capped(self, session_items: Sequence[ItemId]) -> Sequence[ItemId]:
        """The evolving-session length cap; applied exactly once."""
        if (
            self.max_session_items is not None
            and len(session_items) > self.max_session_items
        ):
            return session_items[-self.max_session_items :]
        return session_items

    def fit(self, clicks: Iterable[Click]) -> "VMISKNNColumnar":
        """Build the columnar (M, t) index from raw clicks; returns self."""
        self.index = ColumnarSessionIndex.from_clicks(
            clicks, max_sessions_per_item=self.m
        )
        return self

    @classmethod
    def from_clicks(
        cls, clicks: Iterable[Click], m: int = 500, **kwargs: Any
    ) -> "VMISKNNColumnar":
        """Build the index from raw clicks and construct the recommender."""
        return cls(m=m, **kwargs).fit(clicks)

    # -- neighbour search (Lines 8-39 of Algorithm 2, vectorized) -----------

    def find_neighbors(
        self, session_items: Sequence[ItemId]
    ) -> list[tuple[SessionId, float]]:
        """Top-k neighbours, identical to ``VMISKNN.find_neighbors``."""
        ids, scores = self._neighbor_arrays(self._capped(session_items))
        # tolist() converts to python int/float in one C pass; zipping
        # the scalars builds the exact tuples the heap path returns.
        return list(zip(ids.tolist(), scores.tolist()))

    def _neighbor_arrays(
        self, session_items: Sequence[ItemId]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Neighbour ids + similarities, descending ``(score, id)`` order.

        ``session_items`` must already be capped by the caller, exactly
        like ``VMISKNN._matching_similarities``.
        """
        empty = (np.zeros(0, dtype=_INT), np.zeros(0, dtype=_FLOAT))
        if not session_items:
            return empty
        index = self.index
        if index is None:
            raise RuntimeError("fit() must be called before recommending")
        decay_fn = resolve_decay(self.decay)
        session_length = len(session_items)
        positions: dict[ItemId, int] = {}
        for position, item in enumerate(session_items, start=1):
            positions[item] = position

        offsets = index.posting_offsets
        asc = index.posting_sessions_asc
        total = asc.shape[0]
        item_row = index._item_row
        m = self.m

        # Gather the posting runs of the distinct items, newest first, as
        # slices of the ascending mirror (run ``r`` ascending occupies
        # ``asc[total - offsets[r+1] : total - offsets[r]]``). Only the
        # head of each run — its min(m, len) largest ids — can reach the
        # retained sample: runs are strictly descending distinct ids, so
        # entry m and beyond is dominated by m larger ids in its own run.
        # While gathering, track the largest per-run m-th id: the global
        # m-th largest *distinct* id over the union is at least that, so
        # everything below it prunes by binary search before the sort —
        # the vectorized analogue of the heap path's early stopping.
        lows: list[int] = []
        highs: list[int] = []
        run_weights: list[float] = []
        prune_floor = -1  # ids are >= 0; -1 disables pruning
        for item in unique_items_reversed(session_items):
            row = item_row.get(item)
            if row is None:
                continue
            start, end = offsets[row], offsets[row + 1]
            if end == start:
                continue
            high = total - start
            low = total - end
            if high - low > m:
                low = high - m
                mth = asc[low]
                if mth > prune_floor:
                    prune_floor = mth
            lows.append(low)
            highs.append(high)
            run_weights.append(decay_fn(positions[item], session_length))
        if not run_weights:
            return empty

        # The heap path's recency sample b_t keeps the m most recent
        # matching sessions, ties on the timestamp broken towards the
        # larger id. Ids refine (timestamp, external id), so that sample
        # is exactly the m largest distinct internal ids over the union.
        if len(run_weights) == 1:
            # A lone run is already the distinct ascending candidate set:
            # its head is the retained sample and every retained session
            # receives exactly one weight contribution (0.0 + w, the
            # same addition the hashmap r performs on first encounter).
            retained = asc[lows[0] : highs[0]]
            scores = np.zeros(retained.shape[0], dtype=_FLOAT)
            scores += run_weights[0]
        else:
            segments: list[np.ndarray] = []
            for low, high in zip(lows, highs):
                segment = asc[low:high]
                if prune_floor >= 0 and segment[0] < prune_floor:
                    segment = segment[segment.searchsorted(prune_floor) :]
                segments.append(segment)
            lengths = _as_int_array(
                [segment.shape[0] for segment in segments]
            )
            candidates = np.concatenate(segments)
            weights = _as_float_array(run_weights).repeat(lengths)

            ordered = np.sort(candidates)
            first = np.empty(ordered.shape[0], dtype=bool)
            first[0] = True
            np.not_equal(ordered[1:], ordered[:-1], out=first[1:])
            distinct = ordered[first]
            if distinct.shape[0] > m:
                retained = distinct[-m:]
                keep = candidates >= retained[0]
                candidates = candidates[keep]
                weights = weights[keep]
            else:
                retained = distinct

            # Accumulate similarities for the retained sample with one
            # ordered pass: bincount adds its weights sequentially in
            # input order — segments are concatenated distinct-query-item
            # newest-first, and within a run a session appears at most
            # once, so the additions land per session in the same order
            # as the hashmap r in the heap path.
            slots = retained.searchsorted(candidates)
            scores = np.bincount(
                slots, weights=weights, minlength=retained.shape[0]
            )

        # Top-k by (similarity, id), both descending — the BoundedTopK
        # tie-break. np.partition bounds the sort to the candidates at or
        # above the k-th score; exact ties at the cut are resolved by the
        # id leg of the lexsort, matching the heap's displacement rule.
        if retained.shape[0] > self.k:
            cutoff = np.partition(scores, retained.shape[0] - self.k)[
                retained.shape[0] - self.k
            ]
            at_or_above = scores >= cutoff
            retained = retained[at_or_above]
            scores = scores[at_or_above]
        order = np.lexsort((-retained, -scores))[: self.k]
        return retained[order], scores[order]

    # -- item scoring (Lines 6-7 of Algorithm 2, vectorized) ----------------

    def recommend(
        self, session_items: Sequence[ItemId], how_many: int = 21
    ) -> list[ScoredItem]:
        """Full prediction; bit-identical to ``VMISKNN.recommend``."""
        if self.scoring_style not in ("vmis", "vsknn"):
            raise ValueError(f"unknown scoring style {self.scoring_style!r}")
        session_items = self._capped(session_items)
        neighbor_ids, neighbor_sims = self._neighbor_arrays(session_items)
        if not session_items or neighbor_ids.shape[0] == 0:
            return []
        index = self.index
        assert index is not None  # _neighbor_arrays raised otherwise
        weight_fn = resolve_match_weight(self.match_weight)
        orders = insertion_orders(session_items)
        length_factor = (
            1.0 / len(session_items) if self.scoring_style == "vsknn" else 1.0
        )

        # Concatenate the neighbours' item rows in neighbour order; every
        # per-element operation below inherits that order, which is what
        # keeps the float accumulation identical to score_items.
        offsets = index.session_item_offsets
        row_values = index.session_item_rows
        segments = [
            row_values[offsets[sid] : offsets[sid + 1]]
            for sid in neighbor_ids.tolist()
        ]
        lengths = _as_int_array([seg.shape[0] for seg in segments])
        concat = (
            np.concatenate(segments) if len(segments) > 1 else segments[0]
        )
        if concat.shape[0] == 0:
            return []
        local_rows = np.unique(concat)
        local = np.searchsorted(local_rows, concat)

        # Most recent shared item per neighbour: scatter the query's
        # insertion orders onto the local row window, then segmented max.
        query_order = np.zeros(local_rows.shape[0], dtype=_INT)
        for item, position in orders.items():
            row = index._item_row.get(item)
            if row is None:
                continue
            slot = np.searchsorted(local_rows, row)
            if slot < local_rows.shape[0] and local_rows[slot] == row:
                query_order[slot] = position
        starts = np.zeros(lengths.shape[0], dtype=_INT)
        np.cumsum(lengths[:-1], out=starts[1:])
        reduce_starts = np.minimum(starts, concat.shape[0] - 1)
        last_shared = np.where(
            lengths > 0,
            np.maximum.reduceat(query_order[local], reduce_starts),
            0,
        )

        # Per-neighbour base weights; neighbours with no shared item or a
        # structurally zero match weight contribute nothing (base 0.0
        # additions leave every accumulator bit-untouched) and must not
        # mark their items as scored.
        bases = np.zeros(neighbor_ids.shape[0], dtype=_FLOAT)
        contributes = np.zeros(neighbor_ids.shape[0], dtype=bool)
        sims = neighbor_sims.tolist()
        for position, shared in enumerate(last_shared.tolist()):
            if shared == 0:
                continue
            match = weight_fn(shared)
            if is_zero_score(match):
                continue
            bases[position] = match * sims[position] * length_factor
            contributes[position] = True

        idf = index.idf_values[local_rows]
        if self.scoring_style == "vsknn":
            idf = idf + 1.0
        values = np.repeat(bases, lengths) * idf[local]
        accumulated = np.bincount(
            local, weights=values, minlength=local_rows.shape[0]
        )
        scored = np.zeros(local_rows.shape[0], dtype=bool)
        scored[local[np.repeat(contributes, lengths)]] = True
        if self.exclude_current_items:
            for item in set(session_items):
                row = index._item_row.get(item)
                if row is None:
                    continue
                slot = np.searchsorted(local_rows, row)
                if slot < local_rows.shape[0] and local_rows[slot] == row:
                    scored[slot] = False

        out_items = index.item_ids[local_rows[scored]]
        out_scores = accumulated[scored]
        ranked = np.lexsort((out_items, -out_scores))[:how_many]
        return [
            ScoredItem(int(item), float(score))
            for item, score in zip(out_items[ranked], out_scores[ranked])
        ]
