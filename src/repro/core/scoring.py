"""Item scoring from neighbour sessions (Line 9 of Alg. 1, Lines 6-7 of Alg. 2).

Given the k nearest historical sessions and their similarities, every item
occurring in those sessions is scored by summing the neighbour similarities,
weighted by the match-weight ``lambda`` of the most recent shared item and an
inverse-document-frequency term.

The paper ships two flavours which we keep separate:

* ``vsknn`` — Algorithm 1: includes the constant ``1/|s|`` factor and uses
  ``(1 + log(|H|/h_i))`` as the idf term.
* ``vmis`` — Algorithm 2's simplification: drops the constant factor and
  uses ``log(|H|/h_i)``, which the authors found to work better on held-out
  data.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.floatcmp import is_zero_score
from repro.core.index import SessionIndex
from repro.core.types import ItemId, ScoredItem, SessionId, insertion_orders
from repro.core.weights import MatchWeightFn, resolve_match_weight


def score_items(
    index: SessionIndex,
    session_items: Sequence[ItemId],
    neighbors: Iterable[tuple[SessionId, float]],
    match_weight: str | MatchWeightFn = "paper",
    style: str = "vmis",
    exclude_current_items: bool = False,
) -> dict[ItemId, float]:
    """Score all items of the neighbour sessions.

    Args:
        index: the prebuilt session index (provides item sets and idf).
        session_items: the evolving session, oldest first.
        neighbors: ``(session_id, similarity)`` pairs for the k neighbours.
        match_weight: the ``lambda`` function (name or callable).
        style: ``"vmis"`` or ``"vsknn"`` scoring flavour (see module doc).
        exclude_current_items: drop items already in the evolving session,
            the typical serving configuration (don't re-recommend what the
            user is looking at).

    Returns:
        Mapping from item id to accumulated score.
    """
    if style not in ("vmis", "vsknn"):
        raise ValueError(f"unknown scoring style {style!r}")
    if not session_items:
        return {}
    weight_fn = resolve_match_weight(match_weight)
    orders = insertion_orders(session_items)
    current = set(session_items) if exclude_current_items else frozenset()
    length_factor = 1.0 / len(session_items) if style == "vsknn" else 1.0

    scores: dict[ItemId, float] = {}
    for session_id, similarity in neighbors:
        neighbor_items = index.items_of(session_id)
        last_shared = max(
            (orders[item] for item in neighbor_items if item in orders),
            default=0,
        )
        if last_shared == 0:
            # No overlap with the evolving session: contributes nothing.
            continue
        match = weight_fn(last_shared)
        if is_zero_score(match):
            continue
        base = match * similarity * length_factor
        for item in neighbor_items:
            if item in current:
                continue
            idf = index.idf(item)
            if style == "vsknn":
                idf += 1.0
            scores[item] = scores.get(item, 0.0) + base * idf
    return scores


def top_n(scores: dict[ItemId, float], n: int) -> list[ScoredItem]:
    """Rank scores descending, breaking ties on the smaller item id.

    Deterministic tie-breaking keeps evaluations and cross-implementation
    equivalence tests reproducible.
    """
    ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
    return [ScoredItem(item_id, score) for item_id, score in ranked[:n]]
