"""Core algorithms: the session index, VS-kNN and VMIS-kNN."""

from repro.core.batch import (
    BatchPredictionEngine,
    LRUResultCache,
    shard_index,
)
from repro.core.colindex import ColumnarSessionIndex, VMISKNNColumnar
from repro.core.heaps import BoundedTopK, DAryMinHeap, MostRecentTracker
from repro.core.index import SessionIndex
from repro.core.predictor import (
    BatchMixin,
    SessionRecommender,
    TrainableMixin,
    TrainableRecommender,
    batch_via_loop,
)
from repro.core.scoring import score_items, top_n
from repro.core.types import (
    Click,
    EvolvingSession,
    ItemId,
    ScoredItem,
    SessionId,
    Timestamp,
)
from repro.core.vmis import VMISKNN
from repro.core.vsknn import VSKNN
from repro.core.weights import (
    DECAY_FUNCTIONS,
    MATCH_WEIGHT_FUNCTIONS,
    decay_weights,
    resolve_decay,
    resolve_match_weight,
)

__all__ = [
    "BatchMixin",
    "BatchPredictionEngine",
    "BoundedTopK",
    "Click",
    "ColumnarSessionIndex",
    "DAryMinHeap",
    "DECAY_FUNCTIONS",
    "EvolvingSession",
    "ItemId",
    "LRUResultCache",
    "MATCH_WEIGHT_FUNCTIONS",
    "MostRecentTracker",
    "ScoredItem",
    "SessionId",
    "SessionIndex",
    "SessionRecommender",
    "Timestamp",
    "TrainableMixin",
    "TrainableRecommender",
    "VMISKNN",
    "VMISKNNColumnar",
    "VSKNN",
    "batch_via_loop",
    "decay_weights",
    "shard_index",
    "resolve_decay",
    "resolve_match_weight",
    "score_items",
    "top_n",
]
