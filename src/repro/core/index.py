"""The session-similarity index (M, t) of VMIS-kNN (Section 3).

``M`` is a hash index from an item to the (at most) ``m`` most recent
historical sessions containing that item, each posting list sorted by
descending session timestamp. ``t`` is a flat array mapping a session id to
its timestamp; sessions are remapped to consecutive integers at build time
so this lookup is O(1) array indexing, exactly as the paper describes.

The index additionally stores the item set of every historical session
(needed by the item-scoring step of both algorithms) and per-item session
frequencies ``h_i`` for the inverse-document-frequency weighting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.core.types import Click, ItemId, SessionId, Timestamp, clicks_to_sessions


@dataclass
class SessionIndex:
    """Immutable query-time view of the prebuilt index.

    Attributes:
        item_to_sessions: posting lists, descending session-timestamp order.
        session_timestamps: ``t`` array; index = internal session id.
        session_items: distinct items per historical session.
        item_session_counts: ``h_i`` — number of historical sessions
            containing item ``i`` *before* posting-list truncation.
        max_sessions_per_item: the ``m`` used at build time.
    """

    item_to_sessions: dict[ItemId, list[SessionId]]
    session_timestamps: list[Timestamp]
    session_items: list[tuple[ItemId, ...]]
    item_session_counts: dict[ItemId, int]
    max_sessions_per_item: int

    _idf_cache: dict[ItemId, float] = field(default_factory=dict, repr=False)

    @classmethod
    def from_clicks(
        cls, clicks: Iterable[Click], max_sessions_per_item: int = 5000
    ) -> "SessionIndex":
        """Build the index from raw click events.

        This is the in-process equivalent of the offline Spark pipeline:
        group clicks by session, order sessions by their last-click
        timestamp, invert to per-item posting lists and truncate each list
        to the ``m`` most recent sessions.
        """
        if max_sessions_per_item < 1:
            raise ValueError(
                f"max_sessions_per_item must be >= 1, got {max_sessions_per_item}"
            )
        sessions = clicks_to_sessions(clicks)
        return cls.from_sessions(
            {
                session_id: (
                    max(ts for ts, _ in events),
                    [item for _, item in events],
                )
                for session_id, events in sessions.items()
            },
            max_sessions_per_item,
        )

    @classmethod
    def from_sessions(
        cls,
        sessions: Mapping[SessionId, tuple[Timestamp, Sequence[ItemId]]],
        max_sessions_per_item: int = 5000,
    ) -> "SessionIndex":
        """Build the index from already-grouped sessions.

        ``sessions`` maps an external session id to ``(timestamp, items)``
        where ``timestamp`` is the session's most recent click. External ids
        are remapped to consecutive internal ids ordered by ascending
        timestamp, so larger internal id implies more (or equally) recent.
        """
        ordered = sorted(sessions.items(), key=lambda kv: (kv[1][0], kv[0]))
        session_timestamps: list[Timestamp] = []
        session_items: list[tuple[ItemId, ...]] = []
        item_to_sessions: dict[ItemId, list[SessionId]] = {}
        item_session_counts: dict[ItemId, int] = {}

        for internal_id, (_, (timestamp, items)) in enumerate(ordered):
            distinct = tuple(dict.fromkeys(items))
            session_timestamps.append(timestamp)
            session_items.append(distinct)
            for item in distinct:
                item_to_sessions.setdefault(item, []).append(internal_id)
                item_session_counts[item] = item_session_counts.get(item, 0) + 1

        # Posting lists were appended in ascending-timestamp order; reverse
        # and truncate so each holds the m most recent sessions, newest first.
        for postings in item_to_sessions.values():
            postings.reverse()
            if len(postings) > max_sessions_per_item:
                del postings[max_sessions_per_item:]

        return cls(
            item_to_sessions=item_to_sessions,
            session_timestamps=session_timestamps,
            session_items=session_items,
            item_session_counts=item_session_counts,
            max_sessions_per_item=max_sessions_per_item,
        )

    @property
    def num_sessions(self) -> int:
        """Number of historical sessions |H| the index was built from."""
        return len(self.session_timestamps)

    @property
    def num_items(self) -> int:
        """Number of distinct items |I| with at least one posting."""
        return len(self.item_to_sessions)

    def sessions_for_item(self, item_id: ItemId) -> list[SessionId]:
        """Posting list ``m_i``: most recent sessions first; [] if unknown."""
        return self.item_to_sessions.get(item_id, [])

    def timestamp_of(self, session_id: SessionId) -> Timestamp:
        """Timestamp lookup in the ``t`` array."""
        return self.session_timestamps[session_id]

    def items_of(self, session_id: SessionId) -> tuple[ItemId, ...]:
        """Distinct items of a historical session, in click order."""
        return self.session_items[session_id]

    def idf(self, item_id: ItemId) -> float:
        """``log(|H| / h_i)`` with memoisation; 0.0 for unseen items."""
        cached = self._idf_cache.get(item_id)
        if cached is not None:
            return cached
        count = self.item_session_counts.get(item_id, 0)
        value = math.log(self.num_sessions / count) if count else 0.0
        self._idf_cache[item_id] = value
        return value

    def memory_profile(self) -> dict[str, int]:
        """Rough element counts, used by capacity-planning examples."""
        postings = sum(len(v) for v in self.item_to_sessions.values())
        stored_items = sum(len(v) for v in self.session_items)
        return {
            "num_items": self.num_items,
            "num_sessions": self.num_sessions,
            "posting_entries": postings,
            "stored_session_items": stored_items,
        }
