"""Declarative lock-discipline annotations checked by ``repro.analysis``.

The serving stack's thread-shared state (circuit breakers, admission
queues, LRU caches, the KV memtable) is protected by per-instance
``threading.Lock`` objects, but nothing ties an attribute to the lock
that guards it — the discipline lives in comments and reviewer memory.
These decorators make the discipline *declared*:

* :func:`guarded_by` marks which attributes of a class are protected by
  which lock attribute;
* :func:`holds_lock` marks a method whose **caller** must already hold
  the named lock (or have exclusive access, e.g. during construction),
  so the method body may touch guarded state without re-acquiring it.

At runtime the decorators only attach metadata (``__guarded_by__`` /
``__holds_lock__``) — zero overhead on the request path. The
``SRN004`` rule of :mod:`repro.analysis` reads the same declarations
from the AST and statically verifies that

1. every shared mutable attribute of a lock-holding class is declared,
2. declared attributes are only touched under their lock (or inside
   ``__init__`` / a :func:`holds_lock` method),
3. :func:`holds_lock` methods are only called with the lock held, and
4. the inter-procedural lock-acquisition graph is free of ordering
   cycles (potential deadlocks).
"""

from __future__ import annotations

from typing import Callable, TypeVar

__all__ = ["guarded_by", "holds_lock"]

_ClassT = TypeVar("_ClassT", bound=type)
_FuncT = TypeVar("_FuncT", bound=Callable)


def guarded_by(lock_attr: str, *attributes: str) -> Callable[[_ClassT], _ClassT]:
    """Declare that ``attributes`` of the decorated class are protected
    by the lock stored in ``lock_attr``.

    Usage::

        @guarded_by("_lock", "_entries", "hits", "misses")
        class LRUResultCache: ...

    Stack the decorator to declare several locks on one class. The
    declaration is cumulative and inherited metadata is never mutated
    in place.
    """
    if not lock_attr:
        raise ValueError("guarded_by needs a lock attribute name")

    def decorate(cls: _ClassT) -> _ClassT:
        declared: dict[str, tuple[str, ...]] = dict(
            getattr(cls, "__guarded_by__", {})
        )
        declared[lock_attr] = tuple(
            dict.fromkeys(declared.get(lock_attr, ()) + attributes)
        )
        cls.__guarded_by__ = declared
        return cls

    return decorate


def holds_lock(lock_attr: str) -> Callable[[_FuncT], _FuncT]:
    """Declare that the decorated method runs with ``lock_attr`` held.

    The *caller* is responsible for acquiring the lock (or otherwise
    guaranteeing exclusive access — e.g. a helper invoked only from
    ``__init__`` before the instance is shared). The static checker
    verifies call sites instead of the method body.
    """
    if not lock_attr:
        raise ValueError("holds_lock needs a lock attribute name")

    def decorate(func: _FuncT) -> _FuncT:
        held: tuple[str, ...] = tuple(
            dict.fromkeys(getattr(func, "__holds_lock__", ()) + (lock_attr,))
        )
        func.__holds_lock__ = held
        return func

    return decorate
