"""Decay (pi) and match-weight (lambda) functions of VS-kNN / VMIS-kNN.

The decay function ``pi`` weights each item of the evolving session by its
insertion order, so that recent items dominate the session similarity
(Section 2, toy example: ``pi(omega(s))_i = omega_i / |s|``). The match
weight ``lambda`` scales a neighbour's contribution to an item score by the
insertion time of the most recent item shared with the evolving session;
the paper's default is ``1 - 0.1 x`` for ``x < 10`` and zero otherwise.

Both families are hyperparameters; we ship the variants used by the
session-rec reference implementation so the grid search of Figure 2 can
sweep them.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

from repro.core.types import ItemId, insertion_orders

DecayFn = Callable[[int, int], float]
MatchWeightFn = Callable[[int], float]


def linear_decay(position: int, session_length: int) -> float:
    """Paper default: insertion time divided by session length."""
    return position / session_length


def quadratic_decay(position: int, session_length: int) -> float:
    """Quadratic emphasis on recent items."""
    return (position / session_length) ** 2


def log_decay(position: int, session_length: int) -> float:
    """Logarithmic decay: gentler de-emphasis of early items."""
    return math.log1p(position) / math.log1p(session_length)


def harmonic_decay(position: int, session_length: int) -> float:
    """Harmonic decay: weight 1/(steps back from the most recent item)."""
    return 1.0 / (session_length - position + 1)


def uniform_decay(position: int, session_length: int) -> float:  # noqa: ARG001
    """No positional weighting; reduces the similarity to set overlap size."""
    return 1.0


DECAY_FUNCTIONS: dict[str, DecayFn] = {
    "linear": linear_decay,
    "quadratic": quadratic_decay,
    "log": log_decay,
    "harmonic": harmonic_decay,
    "uniform": uniform_decay,
}


def paper_match_weight(insertion_time: int) -> float:
    """Paper default lambda: ``1 - 0.1 x`` for ``x < 10``, else zero."""
    if insertion_time < 10:
        return 1.0 - 0.1 * insertion_time
    return 0.0


def uniform_match_weight(insertion_time: int) -> float:  # noqa: ARG001
    """Every neighbour contributes with weight one."""
    return 1.0


def reciprocal_match_weight(insertion_time: int) -> float:
    """Weight 1/x on the insertion time of the most recent shared item."""
    return 1.0 / insertion_time


MATCH_WEIGHT_FUNCTIONS: dict[str, MatchWeightFn] = {
    "paper": paper_match_weight,
    "uniform": uniform_match_weight,
    "reciprocal": reciprocal_match_weight,
}


def resolve_decay(decay: str | DecayFn) -> DecayFn:
    """Look up a decay function by name, or pass a callable through."""
    if callable(decay):
        return decay
    try:
        return DECAY_FUNCTIONS[decay]
    except KeyError:
        known = ", ".join(sorted(DECAY_FUNCTIONS))
        raise ValueError(f"unknown decay {decay!r}; known: {known}") from None


def resolve_match_weight(match_weight: str | MatchWeightFn) -> MatchWeightFn:
    """Look up a match-weight function by name, or pass a callable through."""
    if callable(match_weight):
        return match_weight
    try:
        return MATCH_WEIGHT_FUNCTIONS[match_weight]
    except KeyError:
        known = ", ".join(sorted(MATCH_WEIGHT_FUNCTIONS))
        raise ValueError(
            f"unknown match weight {match_weight!r}; known: {known}"
        ) from None


def decay_weights(
    session_items: Sequence[ItemId], decay: str | DecayFn = "linear"
) -> dict[ItemId, float]:
    """Compute ``pi(omega(s))`` for every distinct item of a session.

    Duplicate items take the decay weight of their most recent occurrence,
    consistent with the reverse-order traversal of Algorithm 2.

    >>> decay_weights([1, 2, 4])
    {1: 0.3333333333333333, 2: 0.6666666666666666, 4: 1.0}
    """
    decay_fn = resolve_decay(decay)
    length = len(session_items)
    return {
        item: decay_fn(position, length)
        for item, position in insertion_orders(session_items).items()
    }
