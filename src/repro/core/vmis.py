"""VMIS-kNN — Algorithm 2, the paper's core contribution.

Vector-Multiplication-Indexed-Session-kNN computes the same nearest
neighbours as VS-kNN but against a prebuilt index (M, t), executing the
join between the evolving session and the historical sessions *jointly*
with the two aggregations (m most recent matches, top-k similarities), so
intermediate state stays proportional to the output:

* the item intersection loop walks the evolving session newest-first and
  streams each item's posting list, accumulating similarity scores in a
  hashmap ``r`` bounded by ``m`` entries;
* a bounded min-heap ``b_t`` over timestamps decides which matching
  sessions are recent enough to keep, enabling **early stopping**: posting
  lists are sorted newest-first, so once a list entry is older than the
  heap root the rest of the list can be skipped;
* a bounded top-k heap selects the final neighbours, breaking score ties
  towards more recent sessions.

Both heaps break exact ties deterministically on the internal session id.
Internal ids are assigned in ascending ``(timestamp, external id)`` order
at index build time, so the id ordering *refines* the timestamp ordering —
which makes the retained sample and the selected top-k bit-identical to
VS-kNN's ``sorted(candidates, key=(timestamp, session_id))`` reference
semantics even when many sessions share a timestamp (the divergence the
differential oracle in :mod:`repro.testing.oracle` originally caught).

``heap_arity=8`` (octonary heaps) and ``early_stopping=True`` are the
micro-optimisations evaluated in Figure 3(a) bottom; disable both to get
the paper's "VMIS-kNN-no-opt" variant.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.core.heaps import BoundedTopK, MostRecentTracker
from repro.core.index import SessionIndex
from repro.core.predictor import BatchMixin
from repro.core.scoring import score_items, top_n
from repro.core.types import (
    Click,
    ItemId,
    ScoredItem,
    SessionId,
    unique_items_reversed,
)
from repro.core.weights import (
    DecayFn,
    MatchWeightFn,
    resolve_decay,
)


class VMISKNN(BatchMixin):
    """The indexed session-kNN recommender (Algorithm 2).

    Args:
        index: prebuilt :class:`SessionIndex`; its build-time ``m`` should
            be at least the query-time ``m`` or posting lists will bound the
            effective sample. May be ``None``, in which case ``fit(clicks)``
            must be called before predicting.
        m: sample size — how many recent matching sessions to consider.
        k: number of nearest neighbour sessions.
        decay: the ``pi`` decay function (name or callable).
        match_weight: the ``lambda`` match-weight function (name or callable).
        heap_arity: children per heap node; 8 = the paper's octonary heaps.
        early_stopping: skip posting-list tails older than every retained
            session (Line 32 of Algorithm 2).
        max_session_items: cap on evolving-session length — only the most
            recent items are used, bounding the prediction cost (the
            paper caps |s| "at a maximum value"; None = uncapped).
        scoring_style: ``"vmis"`` (default, the paper's simplified scoring)
            or ``"vsknn"`` for strict Algorithm 1 scoring.
        exclude_current_items: drop items of the evolving session from the
            recommendation list (the serving configuration).
    """

    def __init__(
        self,
        index: SessionIndex | None = None,
        m: int = 500,
        k: int = 100,
        decay: str | DecayFn = "linear",
        match_weight: str | MatchWeightFn = "paper",
        heap_arity: int = 8,
        early_stopping: bool = True,
        scoring_style: str = "vmis",
        exclude_current_items: bool = False,
        max_session_items: int | None = None,
    ) -> None:
        if m < 1 or k < 1:
            raise ValueError(f"m and k must be >= 1, got m={m}, k={k}")
        if max_session_items is not None and max_session_items < 1:
            raise ValueError("max_session_items must be >= 1 or None")
        self.index = index
        self.m = m
        self.k = k
        self.decay = decay
        self.match_weight = match_weight
        self.heap_arity = heap_arity
        self.early_stopping = early_stopping
        self.scoring_style = scoring_style
        self.exclude_current_items = exclude_current_items
        self.max_session_items = max_session_items

    def _capped(self, session_items: Sequence[ItemId]) -> Sequence[ItemId]:
        """Apply the paper's cap on evolving-session length: only the
        most recent items take part, bounding prediction cost."""
        if (
            self.max_session_items is not None
            and len(session_items) > self.max_session_items
        ):
            return session_items[-self.max_session_items :]
        return session_items

    def fit(self, clicks: Iterable[Click]) -> "VMISKNN":
        """Build the (M, t) index from raw clicks; returns self.

        Equivalent to ``VMISKNN.from_clicks(clicks, ...)`` — the index is
        built with ``max_sessions_per_item=self.m`` so posting lists hold
        exactly the sample the query needs.
        """
        self.index = SessionIndex.from_clicks(
            clicks, max_sessions_per_item=self.m
        )
        return self

    @classmethod
    def from_clicks(
        cls, clicks: Iterable[Click], m: int = 500, **kwargs: Any
    ) -> "VMISKNN":
        """Build the index from raw clicks and construct the recommender."""
        return cls(m=m, **kwargs).fit(clicks)

    @classmethod
    def no_opt(cls, index: SessionIndex, **kwargs: Any) -> "VMISKNN":
        """The paper's VMIS-kNN-no-opt: binary heaps, no early stopping."""
        kwargs.setdefault("heap_arity", 2)
        kwargs.setdefault("early_stopping", False)
        return cls(index, **kwargs)

    def find_neighbors(
        self, session_items: Sequence[ItemId]
    ) -> list[tuple[SessionId, float]]:
        """``neighbor_sessions_from_index`` (Lines 8-39 of Algorithm 2)."""
        similarities = self._matching_similarities(self._capped(session_items))
        return self._top_neighbors(similarities)

    def _matching_similarities(
        self, session_items: Sequence[ItemId]
    ) -> dict[SessionId, float]:
        """The bounded similarity hashmap ``r`` (Lines 8-32 of Algorithm 2).

        ``session_items`` must already be capped by the caller — this is
        the one place the session-length cap must NOT be reapplied, so that
        ``recommend`` caps exactly once. Exposed (privately) because the
        sharded batch engine runs this per index shard and merges the
        resulting candidate maps.

        The body binds index arrays, the similarity hashmap and the heap
        primitives to locals: this loop runs once per posting and is the
        latency-critical path of the whole system, so we spend the
        readability equivalent of the paper's Rust micro-optimisations on
        avoiding attribute lookups inside it.
        """
        if not session_items:
            return {}
        index = self.index
        if index is None:
            raise RuntimeError("fit() must be called before recommending")
        decay_fn = resolve_decay(self.decay)
        session_length = len(session_items)
        # Position of the most recent occurrence of each distinct item;
        # consumed newest-first by the intersection loop below.
        positions: dict[ItemId, int] = {}
        for position, item in enumerate(session_items, start=1):
            positions[item] = max(positions.get(item, 0), position)

        timestamps = index.session_timestamps
        sessions_for_item = index.sessions_for_item
        early_stopping = self.early_stopping
        m = self.m

        similarities: dict[SessionId, float] = {}  # the hashmap r
        recent = MostRecentTracker[SessionId](m, self.heap_arity)  # b_t
        recent_heap = recent._heap
        heap_push = recent_heap.push
        heap_replace = recent_heap.replace_root
        heap_entries = recent_heap._entries
        retained = 0  # |r|; cheaper than len() calls in the hot loop
        # (timestamp, session id) at the heap root while full; ties on the
        # timestamp are broken on the id so retention matches VS-kNN's
        # sorted-by-(timestamp, id) recency sample exactly.
        oldest_ts = 0.0
        oldest_sid = 0

        # Item intersection loop (Line 12): distinct items, newest first.
        for item in unique_items_reversed(session_items):
            postings = sessions_for_item(item)
            if not postings:
                continue
            decay_weight = decay_fn(positions[item], session_length)
            for session_id in postings:
                if session_id in similarities:
                    similarities[session_id] += decay_weight
                    continue
                timestamp = timestamps[session_id]
                if retained < m:
                    similarities[session_id] = decay_weight
                    heap_push(timestamp, session_id, session_id)
                    retained += 1
                    if retained == m:
                        root = heap_entries[0]
                        oldest_ts, oldest_sid = root[0], root[1]
                elif timestamp > oldest_ts or (
                    timestamp == oldest_ts and session_id > oldest_sid
                ):
                    _, _, evicted = heap_replace(
                        timestamp, session_id, session_id
                    )
                    del similarities[evicted]
                    similarities[session_id] = decay_weight
                    root = heap_entries[0]
                    oldest_ts, oldest_sid = root[0], root[1]
                elif early_stopping and timestamp < oldest_ts:
                    # Postings are sorted newest-first: every remaining
                    # session in this list is at least as old (Line 32).
                    # A tie with the root must keep scanning — a later
                    # entry may share the timestamp yet win on the id.
                    break
        return similarities

    def _top_neighbors(
        self, similarities: dict[SessionId, float]
    ) -> list[tuple[SessionId, float]]:
        """Top-k similarity loop (Lines 33-38), ties favour recency.

        The internal session id is the tiebreak: ids ascend with
        ``(timestamp, external id)`` at build time, so ordering by
        ``(similarity, id)`` equals ordering by
        ``(similarity, timestamp, id)`` — a total, deterministic order
        that matches VS-kNN's reference sort even on exact score ties.
        """
        if not similarities:
            return []
        top = BoundedTopK[SessionId](self.k, self.heap_arity)
        offer = top.offer
        for session_id, similarity in similarities.items():
            offer(similarity, session_id, session_id)
        return [(sid, sim) for sim, _, sid in top.descending()]

    def recommend(
        self, session_items: Sequence[ItemId], how_many: int = 21
    ) -> list[ScoredItem]:
        """Full VMIS-kNN prediction: neighbours, then item scoring.

        The evolving-session cap is applied exactly once, here; the
        internal neighbour computation never reapplies it.
        """
        session_items = self._capped(session_items)
        neighbors = self._top_neighbors(
            self._matching_similarities(session_items)
        )
        scores = score_items(
            self.index,
            session_items,
            neighbors,
            match_weight=self.match_weight,
            style=self.scoring_style,
            exclude_current_items=self.exclude_current_items,
        )
        return top_n(scores, how_many)
