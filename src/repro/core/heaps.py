"""Capacity-bounded d-ary heaps.

VMIS-kNN maintains two bounded heaps during a query (Algorithm 2): a
min-heap ``b_t`` over session timestamps that tracks the ``m`` most recent
matching sessions, and a heap ``N_s`` that selects the ``k`` highest-scored
neighbour sessions. The paper notes that octonary heaps (eight children per
node) outperform binary heaps for insert-heavy workloads, which we expose
through the ``arity`` parameter and evaluate in the ablation benchmark.

Entries are ``(priority, tiebreak, payload)`` triples ordered
lexicographically on ``(priority, tiebreak)``; the payload never takes part
in comparisons, so it may be any object.
"""

from __future__ import annotations

from typing import Any, Generic, Iterator, TypeVar

Payload = TypeVar("Payload")

_Entry = tuple[float, float, Any]


class DAryMinHeap(Generic[Payload]):
    """A d-ary min-heap over ``(priority, tiebreak, payload)`` entries."""

    def __init__(self, arity: int = 8) -> None:
        if arity < 2:
            raise ValueError(f"heap arity must be >= 2, got {arity}")
        self._arity = arity
        self._entries: list[_Entry] = []

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    @property
    def arity(self) -> int:
        return self._arity

    def push(self, priority: float, tiebreak: float, payload: Payload) -> None:
        """Insert an entry in O(log_d n)."""
        self._entries.append((priority, tiebreak, payload))
        self._sift_up(len(self._entries) - 1)

    def peek(self) -> tuple[float, float, Payload]:
        """Return the minimum entry without removing it."""
        if not self._entries:
            raise IndexError("peek from an empty heap")
        return self._entries[0]

    def pop(self) -> tuple[float, float, Payload]:
        """Remove and return the minimum entry."""
        if not self._entries:
            raise IndexError("pop from an empty heap")
        root = self._entries[0]
        last = self._entries.pop()
        if self._entries:
            self._entries[0] = last
            self._sift_down(0)
        return root

    def replace_root(
        self, priority: float, tiebreak: float, payload: Payload
    ) -> tuple[float, float, Payload]:
        """Replace the minimum entry and return it (Lines 31/37 of Alg. 2).

        Equivalent to ``pop`` followed by ``push`` but with a single
        sift-down, which is the hot operation in the similarity loops.
        """
        if not self._entries:
            raise IndexError("replace_root on an empty heap")
        root = self._entries[0]
        self._entries[0] = (priority, tiebreak, payload)
        self._sift_down(0)
        return root

    def __iter__(self) -> Iterator[tuple[float, float, Payload]]:
        """Iterate entries in arbitrary (heap storage) order."""
        return iter(self._entries)

    def drain_sorted(self) -> list[tuple[float, float, Payload]]:
        """Pop everything, returning entries in ascending priority order."""
        out = []
        while self._entries:
            out.append(self.pop())
        return out

    # The sift loops compare (priority, tiebreak) with explicit field
    # comparisons instead of tuple slicing: these run once per posting in
    # VMIS-kNN's inner loop, and the slice allocation dominates otherwise.

    def _sift_up(self, index: int) -> None:
        entries, arity = self._entries, self._arity
        entry = entries[index]
        priority, tiebreak = entry[0], entry[1]
        while index > 0:
            parent = (index - 1) // arity
            parent_entry = entries[parent]
            if parent_entry[0] < priority or (
                parent_entry[0] == priority and parent_entry[1] <= tiebreak
            ):
                break
            entries[index] = parent_entry
            index = parent
        entries[index] = entry

    def _sift_down(self, index: int) -> None:
        entries, arity = self._entries, self._arity
        size = len(entries)
        entry = entries[index]
        priority, tiebreak = entry[0], entry[1]
        while True:
            first_child = index * arity + 1
            if first_child >= size:
                break
            smallest = first_child
            smallest_entry = entries[first_child]
            for child in range(first_child + 1, min(first_child + arity, size)):
                child_entry = entries[child]
                if child_entry[0] < smallest_entry[0] or (
                    child_entry[0] == smallest_entry[0]
                    and child_entry[1] < smallest_entry[1]
                ):
                    smallest, smallest_entry = child, child_entry
            if smallest_entry[0] > priority or (
                smallest_entry[0] == priority and smallest_entry[1] >= tiebreak
            ):
                break
            entries[index] = smallest_entry
            index = smallest
        entries[index] = entry


class BoundedTopK(Generic[Payload]):
    """Keeps the ``capacity`` entries with the *largest* priorities seen.

    Internally a min-heap whose root is the weakest retained entry; a new
    entry only displaces the root if it beats it on ``(priority, tiebreak)``.
    This realises the top-k similarity loop of Algorithm 2 (Lines 33-38),
    including the timestamp tiebreak on equal similarity scores.
    """

    def __init__(self, capacity: int, arity: int = 8) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._heap: DAryMinHeap[Payload] = DAryMinHeap(arity)

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def capacity(self) -> int:
        return self._capacity

    def offer(self, priority: float, tiebreak: float, payload: Payload) -> None:
        """Consider one entry for inclusion in the top-k."""
        if len(self._heap) < self._capacity:
            self._heap.push(priority, tiebreak, payload)
            return
        root_priority, root_tiebreak, _ = self._heap.peek()
        if (priority, tiebreak) > (root_priority, root_tiebreak):
            self._heap.replace_root(priority, tiebreak, payload)

    def descending(self) -> list[tuple[float, float, Payload]]:
        """Return retained entries from strongest to weakest (destructive)."""
        return self._heap.drain_sorted()[::-1]

    def items(self) -> list[tuple[float, float, Payload]]:
        """Return retained entries in arbitrary order (non-destructive)."""
        return list(self._heap)


class MostRecentTracker(Generic[Payload]):
    """Tracks the ``capacity`` entries with the largest timestamps.

    Realises the heap ``b_t`` of Algorithm 2: the root is the *oldest*
    retained session, so a candidate older than the root can be rejected
    immediately — and, since per-item posting lists are sorted by descending
    timestamp, rejection also justifies early termination of the scan.
    """

    def __init__(self, capacity: int, arity: int = 8) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._heap: DAryMinHeap[Payload] = DAryMinHeap(arity)

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def is_full(self) -> bool:
        return len(self._heap) >= self._capacity

    def oldest_timestamp(self) -> float:
        """Timestamp of the oldest retained entry (the heap root)."""
        return self._heap.peek()[0]

    def add(
        self, timestamp: float, payload: Payload, tiebreak: float = 0.0
    ) -> None:
        """Add an entry; caller must have ensured capacity is available.

        ``tiebreak`` orders entries sharing a timestamp (VMIS-kNN passes
        the internal session id so retention is deterministic on ties).
        """
        if self.is_full:
            raise OverflowError("tracker is full; use displace_oldest")
        self._heap.push(timestamp, tiebreak, payload)

    def displace_oldest(
        self, timestamp: float, payload: Payload, tiebreak: float = 0.0
    ) -> Payload:
        """Replace the oldest entry with a more recent one; return evictee."""
        _, _, evicted = self._heap.replace_root(timestamp, tiebreak, payload)
        return evicted

    def payloads(self) -> list[Payload]:
        return [payload for _, _, payload in self._heap]
