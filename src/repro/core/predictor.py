"""The common recommender interface implemented by every algorithm.

Everything that can answer "given this session, what next?" — VMIS-kNN,
VS-kNN, the alternative engines, and all baselines — satisfies
``SessionRecommender``, so the evaluation harness, the serving layer and
the benchmarks are generic over the algorithm.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

from repro.core.types import ItemId, ScoredItem


@runtime_checkable
class SessionRecommender(Protocol):
    """Anything that recommends next items for an evolving session."""

    def recommend(
        self, session_items: Sequence[ItemId], how_many: int = 21
    ) -> list[ScoredItem]:
        """Return up to ``how_many`` next-item recommendations, best first.

        ``session_items`` is the evolving session in click order (oldest
        first). The default of 21 items matches the number required by the
        bol.com frontend UI (Section 4.2).
        """
        ...


@runtime_checkable
class TrainableRecommender(Protocol):
    """A recommender that learns from a historical click log first."""

    def fit(self, clicks: Sequence) -> "TrainableRecommender":
        """Train on historical clicks and return self."""
        ...

    def recommend(
        self, session_items: Sequence[ItemId], how_many: int = 21
    ) -> list[ScoredItem]:
        ...
