"""The common recommender interface implemented by every algorithm.

Everything that can answer "given this session, what next?" — VMIS-kNN,
VS-kNN, the alternative engines, and all baselines — satisfies
``SessionRecommender``, so the evaluation harness, the serving layer and
the benchmarks are generic over the algorithm.

The surface has three methods:

* ``recommend(session_items, how_many)`` — one evolving session in, one
  ranked list out;
* ``recommend_batch(sessions, how_many)`` — many sessions in, one ranked
  list per session out, in input order. Every recommender supports it;
  :class:`BatchMixin` supplies the correct default (a loop over
  ``recommend``), and :class:`repro.core.batch.BatchPredictionEngine`
  overrides it with the sharded parallel path.
* ``fit(clicks)`` (``TrainableRecommender`` only) — train on a historical
  click log and return self. Every trainable recommender also exposes the
  equivalent one-shot spelling ``from_clicks(clicks, **kwargs)``;
  :class:`TrainableMixin` derives it from ``fit``.
"""

from __future__ import annotations

from typing import Any, Iterable, Protocol, Sequence, runtime_checkable

from repro.core.types import Click, ItemId, ScoredItem


@runtime_checkable
class SessionRecommender(Protocol):
    """Anything that recommends next items for an evolving session."""

    def recommend(
        self, session_items: Sequence[ItemId], how_many: int = 21
    ) -> list[ScoredItem]:
        """Return up to ``how_many`` next-item recommendations, best first.

        ``session_items`` is the evolving session in click order (oldest
        first). The default of 21 items matches the number required by the
        bol.com frontend UI (Section 4.2).
        """
        ...

    def recommend_batch(
        self, sessions: Sequence[Sequence[ItemId]], how_many: int = 21
    ) -> list[list[ScoredItem]]:
        """Recommend for many sessions at once, preserving input order.

        Result ``i`` must equal ``recommend(sessions[i], how_many)``
        item-for-item — batching is an execution strategy, never a
        semantic change.
        """
        ...


@runtime_checkable
class TrainableRecommender(Protocol):
    """A recommender that learns from a historical click log first."""

    def fit(self, clicks: Sequence) -> "TrainableRecommender":
        """Train on historical clicks and return self."""
        ...

    def recommend(
        self, session_items: Sequence[ItemId], how_many: int = 21
    ) -> list[ScoredItem]:
        ...

    def recommend_batch(
        self, sessions: Sequence[Sequence[ItemId]], how_many: int = 21
    ) -> list[list[ScoredItem]]:
        ...


def batch_via_loop(
    recommender: SessionRecommender,
    sessions: Sequence[Sequence[ItemId]],
    how_many: int = 21,
) -> list[list[ScoredItem]]:
    """Module-level fallback: a batch is a loop of single predictions.

    Works for *any* object with a ``recommend`` method, including
    third-party recommenders registered at runtime that predate the
    batch API.
    """
    return [
        recommender.recommend(session, how_many=how_many)
        for session in sessions
    ]


class BatchMixin:
    """Default ``recommend_batch`` for recommenders with ``recommend``."""

    def recommend_batch(
        self, sessions: Sequence[Sequence[ItemId]], how_many: int = 21
    ) -> list[list[ScoredItem]]:
        return batch_via_loop(self, sessions, how_many=how_many)


class TrainableMixin(BatchMixin):
    """Derives ``from_clicks`` from ``fit`` so both spellings exist.

    ``SomeRecommender.from_clicks(clicks, **kwargs)`` is defined to be
    ``SomeRecommender(**kwargs).fit(clicks)`` — identical semantics, one
    implementation. Classes with a bespoke ``from_clicks`` (e.g. index
    builders that reuse ``m`` for the posting-list cap) override it and
    keep the same contract.
    """

    def fit(self, clicks: Sequence[Click]) -> "TrainableMixin":
        raise NotImplementedError

    @classmethod
    def from_clicks(cls, clicks: Iterable[Click], **kwargs: Any) -> "TrainableMixin":
        """One-shot construction: ``cls(**kwargs).fit(clicks)``."""
        return cls(**kwargs).fit(list(clicks))
