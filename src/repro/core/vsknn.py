"""VS-kNN — Algorithm 1 of the paper (the non-indexed baseline).

This implementation mirrors the paper's microbenchmark baseline: the
historical data lives in plain hashmaps, and each query first materialises
the set of *all* historical sessions that share at least one item with the
evolving session, then takes a recency-based sample of size ``m``, computes
similarities for the sample and finally ranks items. The contrast with
VMIS-kNN is exactly that this full candidate set is materialised (Section
5.1.3), which is what the prebuilt index avoids.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.core.index import SessionIndex
from repro.core.predictor import BatchMixin
from repro.core.scoring import score_items, top_n
from repro.core.types import (
    Click,
    ItemId,
    ScoredItem,
    SessionId,
    unique_items_reversed,
)
from repro.core.weights import DecayFn, decay_weights, MatchWeightFn


class VSKNN(BatchMixin):
    """The Vector-Session-kNN baseline recommender.

    Args:
        index: session data (we reuse :class:`SessionIndex` as storage but
            query it without exploiting posting-list recency order; posting
            lists must be untruncated for faithful VS-kNN semantics, so
            build the index with a large ``max_sessions_per_item``).
        m: recency-based sample size.
        k: number of nearest neighbour sessions.
        decay: the ``pi`` decay function (name or callable).
        match_weight: the ``lambda`` match-weight function (name or callable).
        scoring_style: ``"vsknn"`` (Algorithm 1, default) or ``"vmis"``
            (Algorithm 2's simplified scoring) — switchable so equivalence
            tests can compare against VMIS-kNN on identical scoring.
        exclude_current_items: drop items of the evolving session from the
            recommendation list (the serving configuration).
    """

    def __init__(
        self,
        index: SessionIndex | None = None,
        m: int = 500,
        k: int = 100,
        decay: str | DecayFn = "linear",
        match_weight: str | MatchWeightFn = "paper",
        scoring_style: str = "vsknn",
        exclude_current_items: bool = False,
    ) -> None:
        if m < 1 or k < 1:
            raise ValueError(f"m and k must be >= 1, got m={m}, k={k}")
        self.index = index
        self.m = m
        self.k = k
        self.decay = decay
        self.match_weight = match_weight
        self.scoring_style = scoring_style
        self.exclude_current_items = exclude_current_items

    def fit(self, clicks: Iterable[Click]) -> "VSKNN":
        """Build storage from raw clicks; returns self.

        Posting lists are kept untruncated (faithful VS-kNN semantics
        require the full candidate set).
        """
        self.index = SessionIndex.from_clicks(
            clicks, max_sessions_per_item=2**62
        )
        return self

    @classmethod
    def from_clicks(cls, clicks: Iterable[Click], **kwargs: Any) -> "VSKNN":
        """Build storage from raw clicks and construct the recommender."""
        return cls(**kwargs).fit(clicks)

    def find_neighbors(
        self, session_items: Sequence[ItemId]
    ) -> list[tuple[SessionId, float]]:
        """Return the k nearest sessions with similarities (Lines 5-7)."""
        if not session_items:
            return []
        if self.index is None:
            raise RuntimeError("fit() must be called before recommending")
        # Line 5: all historical sessions sharing at least one item. This is
        # the expensive materialisation step that VMIS-kNN eliminates.
        candidates: set[SessionId] = set()
        for item in set(session_items):
            candidates.update(self.index.sessions_for_item(item))
        if not candidates:
            return []

        # Line 6: recency-based sample of size m (most recent timestamps).
        timestamps = self.index.session_timestamps
        sample = sorted(candidates, key=lambda sid: (timestamps[sid], sid))
        sample = sample[-self.m :]

        # Line 7: decayed dot-product similarity against each sampled
        # session. The shared items are summed in the intersection-loop
        # order of Algorithm 2 (distinct evolving-session items, newest
        # first) so the floating-point sums are bit-identical to
        # VMIS-kNN's — summation order matters for exact equivalence.
        weights = decay_weights(session_items, self.decay)
        query_items = [
            item for item in unique_items_reversed(session_items)
        ]
        scored: list[tuple[float, int, SessionId]] = []
        for session_id in sample:
            neighbor_items = set(self.index.items_of(session_id))
            similarity = sum(
                weights[item] for item in query_items if item in neighbor_items
            )
            if similarity > 0.0:
                scored.append((similarity, timestamps[session_id], session_id))
        scored.sort(reverse=True)
        return [(sid, sim) for sim, _, sid in scored[: self.k]]

    def recommend(
        self, session_items: Sequence[ItemId], how_many: int = 21
    ) -> list[ScoredItem]:
        """Score items across the neighbour sessions (Lines 8-9)."""
        neighbors = self.find_neighbors(session_items)
        scores = score_items(
            self.index,
            session_items,
            neighbors,
            match_weight=self.match_weight,
            style=self.scoring_style,
            exclude_current_items=self.exclude_current_items,
        )
        return top_n(scores, how_many)
