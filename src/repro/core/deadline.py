"""Monotonic deadline budgets for SLA enforcement.

Serenade promises its callers an answer within 50 ms (§4.2; the observed
p90 is below 7 ms). A :class:`Deadline` captures that promise for one
request: it is created when the request enters the system and every stage
that does work on the request's behalf asks it how much budget is left.
Deadlines are based on a monotonic clock (never wall time, which can jump
under NTP corrections) and the clock is injectable for tests.
"""

from __future__ import annotations

import time
from typing import Callable

Clock = Callable[[], float]

DEFAULT_BUDGET_SECONDS = 0.050  # the paper's 50 ms SLA


class Deadline:
    """A per-request time budget on a monotonic clock.

    Usage::

        deadline = Deadline.after_ms(50)
        ...
        if deadline.expired:
            serve_fallback()
        else:
            work_with_timeout(deadline.remaining())
    """

    __slots__ = ("_clock", "_started", "_expires")

    def __init__(
        self,
        budget_seconds: float = DEFAULT_BUDGET_SECONDS,
        clock: Clock = time.monotonic,
    ) -> None:
        if budget_seconds < 0:
            raise ValueError(f"budget must be >= 0, got {budget_seconds}")
        self._clock = clock
        self._started = clock()
        self._expires = self._started + budget_seconds

    @classmethod
    def after_ms(cls, budget_ms: float, clock: Clock = time.monotonic) -> "Deadline":
        """A deadline ``budget_ms`` milliseconds from now."""
        return cls(budget_ms / 1000.0, clock=clock)

    def remaining(self) -> float:
        """Seconds of budget left; never negative."""
        return max(0.0, self._expires - self._clock())

    def elapsed(self) -> float:
        """Seconds since the deadline was created."""
        return self._clock() - self._started

    @property
    def expired(self) -> bool:
        return self._clock() >= self._expires

    @property
    def budget_seconds(self) -> float:
        return self._expires - self._started

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Deadline(budget={self.budget_seconds * 1e3:.1f}ms, "
            f"remaining={self.remaining() * 1e3:.1f}ms)"
        )
