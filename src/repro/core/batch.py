"""Batched, sharded prediction engine with a hot-session result cache.

Serenade's headline claim is throughput under load: >1000 rps at
p90 < 7 ms (Figure 3b). Answering every query one session at a time
through ``recommend`` leaves three structural speedups on the table, and
this module implements all of them behind the ordinary
:class:`~repro.core.predictor.SessionRecommender` surface:

* **Batching** — ``recommend_batch`` takes many evolving sessions at
  once, deduplicates identical queries within the batch and fans the
  distinct work out across a ``concurrent.futures`` pool. Threads are the
  default (safe everywhere, effective for cache-heavy workloads);
  processes are opt-in via ``use_processes=True`` and share the read-only
  index state with the workers — by fork-time page sharing where the
  ``fork`` start method exists, by a one-time pickle per worker otherwise.
* **Index sharding** — ``shard_strategy="index"`` partitions the
  :class:`~repro.core.index.SessionIndex` into per-worker shards
  (:func:`shard_index`), runs the bounded similarity accumulation of
  Algorithm 2 independently per shard, and merges the per-shard neighbour
  candidates with the same bounded heaps the serial path uses. Because
  historical sessions are partitioned (never split) across shards, each
  shard's candidate map holds exact global similarities for its sessions,
  and the merge — keep the ``m`` most recent candidates, then the top-k by
  similarity — reproduces the serial result exactly, including on tied
  timestamps and tied similarity scores (both paths break ties on the
  internal session id; the differential oracle in
  :mod:`repro.testing.oracle` holds them to bit-equality).
* **Caching** — an LRU result cache keyed on
  ``(session_items_suffix, how_many)`` with hit/miss counters. The
  default key is the *full* session tuple, so hits are always
  bit-identical to cold calls; ``cache_suffix`` trades exactness for hit
  rate when the recommender provably ignores older history (e.g. VMIS-kNN
  with ``max_session_items``, or the serenade-hist serving variant that
  only ever sees the last two items).

The engine itself satisfies ``SessionRecommender``, so it can replace the
raw recommender anywhere: inside a serving pod (single-query path with
caching), in the evaluator's batch replay, or behind the
``/v1/recommend_batch`` HTTP endpoint.
"""

from __future__ import annotations

import heapq
import itertools
import multiprocessing
import threading
from collections import OrderedDict
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from typing import Sequence

from repro.core.deadline import Deadline
from repro.core.heaps import BoundedTopK
from repro.core.index import SessionIndex
from repro.core.locking import guarded_by
from repro.core.predictor import SessionRecommender, batch_via_loop
from repro.core.scoring import score_items, top_n
from repro.core.types import ItemId, ScoredItem, SessionId
from repro.core.vmis import VMISKNN

CacheKey = tuple[tuple[ItemId, ...], int]


@guarded_by("_lock", "_entries", "hits", "misses")
class LRUResultCache:
    """Thread-safe LRU cache over recommendation lists, with counters.

    Keys are ``(session_items_suffix, how_many)``; values are the ranked
    lists returned by the recommender. Values are copied on the way in and
    out so a caller mutating its result list cannot poison the cache.
    """

    def __init__(self, maxsize: int, suffix_length: int | None = None) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        if suffix_length is not None and suffix_length < 1:
            raise ValueError("suffix_length must be >= 1 or None")
        self.maxsize = maxsize
        self.suffix_length = suffix_length
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[CacheKey, list[ScoredItem]] = OrderedDict()
        self._lock = threading.Lock()

    def key(self, session_items: Sequence[ItemId], how_many: int) -> CacheKey:
        """The cache key for one query: a session suffix plus the count."""
        if (
            self.suffix_length is not None
            and len(session_items) > self.suffix_length
        ):
            session_items = session_items[-self.suffix_length :]
        return (tuple(session_items), how_many)

    def get(self, key: CacheKey) -> list[ScoredItem] | None:
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return list(value)

    def put(self, key: CacheKey, value: Sequence[ScoredItem]) -> None:
        with self._lock:
            self._entries[key] = list(value)
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def info(self) -> dict[str, float]:
        """Counters for monitoring: hits, misses, hit rate, occupancy."""
        with self._lock:
            hits, misses, size = self.hits, self.misses, len(self._entries)
        lookups = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / lookups if lookups else 0.0,
            "size": size,
            "maxsize": self.maxsize,
        }


def shard_index(index: SessionIndex, num_shards: int) -> list[SessionIndex]:
    """Partition a session index into ``num_shards`` disjoint shards.

    Historical session ``s`` lives in shard ``s % num_shards``; each
    shard's posting lists are the matching subsequences of the full lists,
    so they stay sorted newest-first and their concatenation (as sets) is
    exactly the original posting list. The timestamp array, session item
    sets and document frequencies are *shared by reference* — shards are
    read-only views keyed by the original internal session ids, which is
    what lets per-shard neighbour candidates merge without id translation.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if num_shards == 1:
        return [index]
    per_shard_postings: list[dict[ItemId, list[SessionId]]] = [
        {} for _ in range(num_shards)
    ]
    for item, postings in index.item_to_sessions.items():
        for session_id in postings:
            per_shard_postings[session_id % num_shards].setdefault(
                item, []
            ).append(session_id)
    return [
        SessionIndex(
            item_to_sessions=postings,
            session_timestamps=index.session_timestamps,
            session_items=index.session_items,
            item_session_counts=index.item_session_counts,
            max_sessions_per_item=index.max_sessions_per_item,
        )
        for postings in per_shard_postings
    ]


# -- process-pool plumbing ---------------------------------------------------
#
# Worker processes need the recommender without re-shipping it per batch.
# With the ``fork`` start method the parent parks it in ``_FORK_SEEDS``
# before creating the pool; every child inherits that module dict at fork
# time and adopts its engine's entry (copy-on-write, no serialisation).
# Keying by engine id makes this safe when several engines coexist, no
# matter when the executor actually forks its workers. Elsewhere (spawn)
# the recommender is pickled once per worker via ``initargs``.

_FORK_SEEDS: dict[int, SessionRecommender] = {}
_WORKER_RECOMMENDER: SessionRecommender | None = None
_seed_ids = itertools.count()


def _adopt_fork_seed(seed_id: int) -> None:
    global _WORKER_RECOMMENDER
    _WORKER_RECOMMENDER = _FORK_SEEDS[seed_id]


def _adopt_pickled(recommender: SessionRecommender) -> None:
    global _WORKER_RECOMMENDER
    _WORKER_RECOMMENDER = recommender


def _predict_chunk(
    sessions: list[list[ItemId]], how_many: int
) -> list[list[ScoredItem]]:
    return batch_via_loop(_WORKER_RECOMMENDER, sessions, how_many=how_many)


def _shard_candidates(
    shard_model: VMISKNN, sessions: list[list[ItemId]]
) -> list[dict[SessionId, float]]:
    """One worker's task under index sharding: candidates per session.

    ``sessions`` must already be capped by the coordinator — the shard
    similarity pass never reapplies the evolving-session cap.
    """
    return [shard_model._matching_similarities(items) for items in sessions]


def _chunks(items: list, num_chunks: int) -> list[list]:
    """Split into at most ``num_chunks`` contiguous, near-equal chunks."""
    num_chunks = min(num_chunks, len(items))
    if num_chunks <= 1:
        return [items] if items else []
    size, excess = divmod(len(items), num_chunks)
    out, start = [], 0
    for chunk_number in range(num_chunks):
        end = start + size + (1 if chunk_number < excess else 0)
        out.append(items[start:end])
        start = end
    return out


class BatchPredictionEngine:
    """Parallel, cached ``recommend_batch`` over any recommender.

    Args:
        recommender: the wrapped model. Any ``SessionRecommender`` works
            with the default session sharding; ``shard_strategy="index"``
            requires a fitted :class:`VMISKNN` (it reaches into the
            algorithm to merge per-shard candidates).
        num_workers: pool size. ``0`` or ``1`` computes inline (no pool),
            which still buys caching and intra-batch deduplication.
        use_processes: fan out across processes instead of threads —
            worthwhile for CPU-bound misses on multi-core machines; the
            index is shared read-only with the workers (see module notes).
        shard_strategy: ``"sessions"`` (default) splits the *batch* across
            workers, each running the ordinary serial path — bit-identical
            to ``recommend`` by construction. ``"index"`` splits the
            *index* across workers and merges per-shard neighbour
            candidates with the serial path's bounded heaps — identical
            to the serial result, ties included.
        cache_size: LRU capacity; ``0`` disables caching.
        cache_suffix: cache on the last N items only (``None`` = the full
            session, always exact).
    """

    def __init__(
        self,
        recommender: SessionRecommender,
        num_workers: int = 0,
        use_processes: bool = False,
        shard_strategy: str = "sessions",
        cache_size: int = 4096,
        cache_suffix: int | None = None,
    ) -> None:
        if num_workers < 0:
            raise ValueError(f"num_workers must be >= 0, got {num_workers}")
        if shard_strategy not in ("sessions", "index"):
            raise ValueError(
                f"unknown shard_strategy {shard_strategy!r}; "
                "expected 'sessions' or 'index'"
            )
        self._recommender = recommender
        self.num_workers = num_workers
        self.use_processes = use_processes
        self.shard_strategy = shard_strategy
        self.cache = (
            LRUResultCache(cache_size, suffix_length=cache_suffix)
            if cache_size
            else None
        )
        self._executor: Executor | None = None
        self._seed_id: int | None = None
        self._shards: list[VMISKNN] | None = None
        #: result slots shed because a batch deadline expired first.
        self.deadline_shed = 0

        if shard_strategy == "index":
            if not isinstance(recommender, VMISKNN):
                raise TypeError(
                    "shard_strategy='index' requires a VMISKNN recommender"
                )
            if recommender.index is None:
                raise ValueError(
                    "shard_strategy='index' needs a fitted recommender"
                )
            if use_processes:
                raise ValueError(
                    "shard_strategy='index' runs on threads; per-worker "
                    "shards live in the coordinating process"
                )
            self._shards = [
                VMISKNN(
                    shard,
                    m=recommender.m,
                    k=recommender.k,
                    decay=recommender.decay,
                    match_weight=recommender.match_weight,
                    heap_arity=recommender.heap_arity,
                    early_stopping=recommender.early_stopping,
                    scoring_style=recommender.scoring_style,
                    exclude_current_items=recommender.exclude_current_items,
                    max_session_items=recommender.max_session_items,
                )
                for shard in shard_index(
                    recommender.index, max(num_workers, 1)
                )
            ]

    # -- lifecycle -----------------------------------------------------------

    def _pool(self) -> Executor:
        """The lazily created worker pool."""
        if self._executor is None:
            if self.use_processes:
                if "fork" in multiprocessing.get_all_start_methods():
                    self._seed_id = next(_seed_ids)
                    _FORK_SEEDS[self._seed_id] = self._recommender
                    self._executor = ProcessPoolExecutor(
                        self.num_workers,
                        mp_context=multiprocessing.get_context("fork"),
                        initializer=_adopt_fork_seed,
                        initargs=(self._seed_id,),
                    )
                else:
                    self._executor = ProcessPoolExecutor(
                        self.num_workers,
                        initializer=_adopt_pickled,
                        initargs=(self._recommender,),
                    )
            else:
                self._executor = ThreadPoolExecutor(
                    self.num_workers, thread_name_prefix="repro-batch"
                )
        return self._executor

    def close(self) -> None:
        """Shut the worker pool down and drop cached results (idempotent).

        The cache is invalidated here because a closed engine's results
        belong to the recommender it wrapped; a rollout swapping that
        recommender must not leave stale recommendations reachable.
        """
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._seed_id is not None:
            _FORK_SEEDS.pop(self._seed_id, None)
            self._seed_id = None
        if self.cache is not None:
            self.cache.clear()

    def __enter__(self) -> "BatchPredictionEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- the SessionRecommender surface --------------------------------------

    def recommend(
        self, session_items: Sequence[ItemId], how_many: int = 21
    ) -> list[ScoredItem]:
        """Single-query path: served from the cache when hot."""
        if self.cache is None:
            return self._recommender.recommend(session_items, how_many=how_many)
        key = self.cache.key(session_items, how_many)
        cached = self.cache.get(key)
        if cached is not None:
            return cached
        result = self._recommender.recommend(session_items, how_many=how_many)
        self.cache.put(key, result)
        return result

    def recommend_batch(
        self,
        sessions: Sequence[Sequence[ItemId]],
        how_many: int = 21,
        deadline: Deadline | None = None,
    ) -> list[list[ScoredItem]]:
        """Batch path: cache, deduplicate, then fan out the distinct work.

        With a :class:`~repro.core.deadline.Deadline`, work that has not
        started by expiry is shed: the affected result slots come back as
        empty lists (never cached), and :attr:`deadline_shed` counts them.
        Cache hits and already-computed results are always returned — the
        deadline bounds *new* compute, it never discards finished work.
        """
        sessions = [list(items) for items in sessions]
        results: list[list[ScoredItem] | None] = [None] * len(sessions)

        # Resolve cache hits and collapse duplicate queries: positions is
        # the list of result slots each distinct pending query fills.
        pending: OrderedDict[CacheKey, list[int]] = OrderedDict()
        pending_sessions: dict[CacheKey, list[ItemId]] = {}
        for position, items in enumerate(sessions):
            key = (
                self.cache.key(items, how_many)
                if self.cache is not None
                else (tuple(items), how_many)
            )
            if key in pending:
                pending[key].append(position)
                continue
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None:
                results[position] = cached
            else:
                pending[key] = [position]
                pending_sessions[key] = items

        if pending:
            distinct = [pending_sessions[key] for key in pending]
            computed = self._compute_batch(distinct, how_many, deadline)
            for key, result in zip(pending, computed):
                shed = result is None
                if shed:
                    self.deadline_shed += len(pending[key])
                    result = []
                elif self.cache is not None:
                    self.cache.put(key, result)
                first, *rest = pending[key]
                results[first] = result
                for position in rest:
                    results[position] = list(result)
        return results  # type: ignore[return-value]

    def cache_info(self) -> dict[str, float]:
        """Cache + shed counters; cache fields zero when caching is off."""
        if self.cache is None:
            info = {
                "hits": 0,
                "misses": 0,
                "hit_rate": 0.0,
                "size": 0,
                "maxsize": 0,
            }
        else:
            info = self.cache.info()
        info["deadline_shed"] = self.deadline_shed
        return info

    # -- execution strategies -------------------------------------------------

    def _compute_batch(
        self,
        sessions: list[list[ItemId]],
        how_many: int,
        deadline: Deadline | None = None,
    ) -> list[list[ScoredItem] | None]:
        """Compute distinct queries; ``None`` marks a deadline-shed slot."""
        if self.shard_strategy == "index":
            return self._compute_index_sharded(sessions, how_many, deadline)
        if self.num_workers <= 1 or len(sessions) <= 1:
            out: list[list[ScoredItem] | None] = []
            for session in sessions:
                if deadline is not None and deadline.expired:
                    out.append(None)
                    continue
                out.append(
                    self._recommender.recommend(session, how_many=how_many)
                )
            return out
        pool = self._pool()
        chunks = _chunks(sessions, self.num_workers)
        if self.use_processes:
            futures = [
                pool.submit(_predict_chunk, chunk, how_many) for chunk in chunks
            ]
        else:
            futures = [
                pool.submit(
                    batch_via_loop, self._recommender, chunk, how_many=how_many
                )
                for chunk in chunks
            ]
        out = []
        for chunk, future in zip(chunks, futures):
            # timeout=None (no deadline) blocks indefinitely, matching the
            # bare result() this replaces; with a deadline the remaining
            # budget bounds every chunk join.
            try:
                out.extend(
                    future.result(
                        timeout=None if deadline is None else deadline.remaining()
                    )
                )
            except FutureTimeout:
                future.cancel()
                out.extend([None] * len(chunk))
        return out

    def _compute_index_sharded(
        self,
        sessions: list[list[ItemId]],
        how_many: int,
        deadline: Deadline | None = None,
    ) -> list[list[ScoredItem] | None]:
        """Fan each session over every index shard, then merge candidates.

        The shard fan-out is all-or-nothing per batch, so the deadline is
        checked between per-session merges: sessions whose merge has not
        started by expiry are shed.
        """
        model = self._recommender
        assert isinstance(model, VMISKNN) and self._shards is not None
        capped = [model._capped(items) for items in sessions]
        if self.num_workers <= 1:
            per_shard = [
                _shard_candidates(shard, capped) for shard in self._shards
            ]
        else:
            pool = self._pool()
            futures = [
                pool.submit(_shard_candidates, shard, capped)
                for shard in self._shards
            ]
            per_shard = []
            try:
                for future in futures:
                    per_shard.append(
                        future.result(
                            timeout=None
                            if deadline is None
                            else deadline.remaining()
                        )
                    )
            except FutureTimeout:
                # The shard fan-out is all-or-nothing: without every
                # shard's candidates no session can be merged, so the
                # whole batch is shed.
                for future in futures:
                    future.cancel()
                return [None] * len(capped)
        out: list[list[ScoredItem] | None] = []
        for position, items in enumerate(capped):
            if deadline is not None and deadline.expired:
                out.append(None)
                continue
            out.append(
                self._merge_candidates(
                    model,
                    items,
                    [candidates[position] for candidates in per_shard],
                    how_many,
                )
            )
        return out

    @staticmethod
    def _merge_candidates(
        model: VMISKNN,
        capped_items: list[ItemId],
        shard_maps: list[dict[SessionId, float]],
        how_many: int,
    ) -> list[ScoredItem]:
        """Serial Algorithm 2 tail over the union of shard candidates.

        Sessions are partitioned across shards, so the maps are disjoint
        and each carries exact global similarities. Keep the ``m`` most
        recent candidates (the global ``b_t`` bound), select the top-k
        with the serial path's bounded heap, then score items.
        """
        merged: dict[SessionId, float] = {}
        for shard_map in shard_maps:
            merged.update(shard_map)
        if len(merged) > model.m:
            # Internal ids ascend with (timestamp, external id) at build
            # time, so ordering by the id alone IS the recency order with
            # its deterministic tie-break: nlargest over a
            # (timestamps[sid], sid) key would select and order the very
            # same ids while paying a timestamp lookup per candidate.
            kept = heapq.nlargest(model.m, merged)
            merged = {sid: merged[sid] for sid in kept}
        # Internal session ids ascend with (timestamp, external id), so the
        # id tiebreak reproduces the serial path's deterministic
        # (similarity, timestamp, id) neighbour order even on exact ties.
        top = BoundedTopK[SessionId](model.k, model.heap_arity)
        for session_id, similarity in merged.items():
            top.offer(similarity, session_id, session_id)
        neighbors = [(sid, sim) for sim, _, sid in top.descending()]
        scores = score_items(
            model.index,
            capped_items,
            neighbors,
            match_weight=model.match_weight,
            style=model.scoring_style,
            exclude_current_items=model.exclude_current_items,
        )
        return top_n(scores, how_many)
