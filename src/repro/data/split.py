"""Train/test splitting for the session-rec evaluation protocol.

The paper holds out the last day of each dataset as the test set
(Section 5.1.2) and, for the prediction-quality study, samples several
historical windows as training versions. Test sessions whose items never
occur in training carry no signal for any method and are dropped, matching
the session-rec protocol.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.types import ItemId, SessionId
from repro.data.clicklog import SECONDS_PER_DAY, ClickLog


@dataclass(frozen=True)
class TrainTestSplit:
    """A temporal split with item-vocabulary-filtered test sessions."""

    train: ClickLog
    test: ClickLog

    def test_sequences(self) -> dict[SessionId, list[ItemId]]:
        """Test sessions as item sequences, restricted to training items.

        Items unseen in training are removed from the test sequences (no
        recommender here can predict an id it has never observed), and
        sessions left with fewer than two clicks are dropped because they
        admit no (prefix -> next item) evaluation step.
        """
        known: set[ItemId] = {c.item_id for c in self.train}
        sequences = {}
        for sid, items in self.test.session_item_sequences().items():
            filtered = [item for item in items if item in known]
            if len(filtered) >= 2:
                sequences[sid] = filtered
        return sequences


def temporal_split(log: ClickLog, test_days: float = 1.0) -> TrainTestSplit:
    """Hold out the final ``test_days`` days of the log as the test set.

    Sessions are assigned atomically by their last click (see
    :meth:`ClickLog.split_at`), mirroring "the last day as held-out test
    set" from the paper.
    """
    if test_days <= 0:
        raise ValueError(f"test_days must be > 0, got {test_days}")
    _, last = log.time_range()
    cutoff = int(last - test_days * SECONDS_PER_DAY)
    train, test = log.split_at(cutoff)
    if len(train) == 0:
        raise ValueError(
            f"test window of {test_days} day(s) swallows the whole log; "
            "use a smaller window"
        )
    return TrainTestSplit(train=train, test=test)


def sliding_window_splits(
    log: ClickLog, num_windows: int, train_days: float, test_days: float = 1.0
) -> list[TrainTestSplit]:
    """Several (train window, next-day test) splits from one log.

    Reproduces the §5.1.1 protocol of creating five versions of ecom-1m by
    sampling clicks "from certain months in the past as historical sessions"
    and testing on the subsequent day. Windows are evenly spaced over the
    log's time span.
    """
    if num_windows < 1:
        raise ValueError("num_windows must be >= 1")
    first, last = log.time_range()
    window_span = int((train_days + test_days) * SECONDS_PER_DAY)
    total_span = last - first
    if window_span > total_span:
        raise ValueError(
            f"log spans {total_span} s but one window needs {window_span} s"
        )
    if num_windows == 1:
        offsets = [0]
    else:
        stride = (total_span - window_span) // (num_windows - 1)
        offsets = [w * stride for w in range(num_windows)]

    splits = []
    for offset in offsets:
        window_start = first + offset
        test_start = window_start + int(train_days * SECONDS_PER_DAY)
        window_end = test_start + int(test_days * SECONDS_PER_DAY)
        window = log.filter(lambda c: window_start <= c.timestamp < window_end)
        train, test = window.split_at(test_start)
        if len(train) and len(test):
            splits.append(TrainTestSplit(train=train, test=test))
    if not splits:
        raise ValueError("no window produced both train and test data")
    return splits
