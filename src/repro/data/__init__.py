"""Data layer: click logs, synthetic generation, splits and statistics."""

from repro.data.clicklog import SECONDS_PER_DAY, ClickLog, TSVParseReport
from repro.data.datasets import (
    DATASET_PROFILES,
    DatasetProfile,
    dataset_names,
    get_profile,
    load_dataset,
)
from repro.data.sessionize import (
    DEFAULT_INACTIVITY_GAP,
    SessionizationReport,
    UserEvent,
    resessionize,
    sessionize,
)
from repro.data.split import TrainTestSplit, sliding_window_splits, temporal_split
from repro.data.stats import (
    DatasetStatistics,
    TABLE1_COLUMNS,
    dataset_statistics,
    format_table,
)
from repro.data.synthetic import (
    ClickstreamConfig,
    ClickstreamGenerator,
    generate_clickstream,
)

__all__ = [
    "ClickLog",
    "TSVParseReport",
    "ClickstreamConfig",
    "ClickstreamGenerator",
    "DATASET_PROFILES",
    "DatasetProfile",
    "DatasetStatistics",
    "DEFAULT_INACTIVITY_GAP",
    "SessionizationReport",
    "UserEvent",
    "resessionize",
    "sessionize",
    "SECONDS_PER_DAY",
    "TABLE1_COLUMNS",
    "TrainTestSplit",
    "dataset_names",
    "dataset_statistics",
    "format_table",
    "generate_clickstream",
    "get_profile",
    "load_dataset",
    "sliding_window_splits",
    "temporal_split",
]
