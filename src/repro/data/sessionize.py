"""Sessionization: cutting raw user event streams into sessions.

The paper's datasets arrive pre-sessionized, but the upstream reality (and
the job that produces the BigQuery click tables) is a stream of
``(user id, item id, timestamp)`` events that must be cut into sessions.
The standard industry rule — also what the platform's 30-minute RocksDB
TTL mirrors — is the *inactivity gap*: a new session starts whenever a
user has been idle for more than a threshold.

``sessionize`` applies that rule and assigns globally unique session ids,
turning a user-event log into the click-tuple format every other module
consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.types import Click, ItemId, Timestamp
from repro.data.clicklog import ClickLog

DEFAULT_INACTIVITY_GAP = 30 * 60  # the platform's 30-minute rule


@dataclass(frozen=True, slots=True)
class UserEvent:
    """A raw interaction before sessionization."""

    user_id: int
    item_id: ItemId
    timestamp: Timestamp


@dataclass(frozen=True)
class SessionizationReport:
    """What the cut produced, for pipeline monitoring."""

    events: int
    users: int
    sessions: int
    max_session_length: int

    @property
    def sessions_per_user(self) -> float:
        return self.sessions / self.users if self.users else 0.0


def sessionize(
    events: Iterable[UserEvent],
    inactivity_gap: int = DEFAULT_INACTIVITY_GAP,
    max_session_length: int | None = None,
) -> tuple[ClickLog, SessionizationReport]:
    """Cut user event streams into sessions by inactivity gap.

    Args:
        events: raw user events in any order (sorted internally).
        inactivity_gap: seconds of idleness that end a session.
        max_session_length: optional hard cap on clicks per session — a
            robot-defence used by real pipelines; the overflow starts a
            new session.

    Returns:
        The sessionized click log plus a report. Session ids are assigned
        in order of session start time, so they are stable across runs.
    """
    if inactivity_gap <= 0:
        raise ValueError("inactivity_gap must be positive")
    if max_session_length is not None and max_session_length < 1:
        raise ValueError("max_session_length must be >= 1 or None")

    per_user: dict[int, list[UserEvent]] = {}
    total_events = 0
    for event in events:
        total_events += 1
        per_user.setdefault(event.user_id, []).append(event)

    # Collect sessions as (start_time, user_id, [events]) and then assign
    # ids by global start order.
    raw_sessions: list[tuple[Timestamp, int, list[UserEvent]]] = []
    longest = 0
    for user_id, user_events in per_user.items():
        user_events.sort(key=lambda e: e.timestamp)
        current: list[UserEvent] = []
        for event in user_events:
            gap_exceeded = (
                current and event.timestamp - current[-1].timestamp > inactivity_gap
            )
            length_exceeded = (
                max_session_length is not None
                and len(current) >= max_session_length
            )
            if gap_exceeded or length_exceeded:
                raw_sessions.append((current[0].timestamp, user_id, current))
                longest = max(longest, len(current))
                current = []
            current.append(event)
        if current:
            raw_sessions.append((current[0].timestamp, user_id, current))
            longest = max(longest, len(current))

    raw_sessions.sort(key=lambda row: (row[0], row[1]))
    clicks = [
        Click(session_id, event.item_id, event.timestamp)
        for session_id, (_, _, session_events) in enumerate(raw_sessions)
        for event in session_events
    ]
    report = SessionizationReport(
        events=total_events,
        users=len(per_user),
        sessions=len(raw_sessions),
        max_session_length=longest,
    )
    return ClickLog(clicks), report


def resessionize(
    log: ClickLog, inactivity_gap: int = DEFAULT_INACTIVITY_GAP
) -> tuple[ClickLog, SessionizationReport]:
    """Re-cut an existing click log with a different gap.

    Treats each original session id as a user — useful for studying how
    sensitive downstream quality is to the sessionization threshold.
    """
    events = [
        UserEvent(click.session_id, click.item_id, click.timestamp)
        for click in log
    ]
    return sessionize(events, inactivity_gap)
