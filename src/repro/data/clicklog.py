"""Click-log container and IO.

A :class:`ClickLog` is the in-memory equivalent of the paper's BigQuery
click tables: an ordered collection of ``(session_id, item_id, timestamp)``
tuples with the standard preprocessing operations used by the session-rec
evaluation protocol (minimum session length, minimum item support) and
simple TSV persistence.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

from repro.core.types import Click, ItemId, SessionId, Timestamp

SECONDS_PER_DAY = 86_400

#: How many per-line error samples a parse report retains.
MAX_PARSE_ERROR_SAMPLES = 20


@dataclass
class TSVParseReport:
    """Outcome of reading one TSV click log.

    A daily export at production scale always contains a few mangled rows
    (truncated uploads, concatenated lines, stray carriage returns); the
    reader skips and counts them instead of failing the whole ingest. A
    wrong *header* still raises — that is a different file, not a dirty
    one.
    """

    lines: int = 0
    parsed: int = 0
    skipped: int = 0
    #: up to MAX_PARSE_ERROR_SAMPLES of (line_number, reason) samples.
    errors: list[tuple[int, str]] = field(default_factory=list)

    def record_error(self, line_number: int, reason: str) -> None:
        self.skipped += 1
        if len(self.errors) < MAX_PARSE_ERROR_SAMPLES:
            self.errors.append((line_number, reason))

    @property
    def ok(self) -> bool:
        """True when every non-empty data line parsed."""
        return self.skipped == 0

    @property
    def skip_rate(self) -> float:
        if self.lines == 0:
            return 0.0
        return self.skipped / self.lines

    def summary(self) -> dict:
        """JSON-friendly digest (stored in index-artifact provenance)."""
        return {
            "lines": self.lines,
            "parsed": self.parsed,
            "skipped": self.skipped,
            "skip_rate": self.skip_rate,
            "error_samples": [list(sample) for sample in self.errors],
        }


class ClickLog:
    """An immutable-by-convention sequence of click events."""

    def __init__(self, clicks: Iterable[Click]) -> None:
        self._clicks: list[Click] = sorted(
            clicks, key=lambda c: (c.timestamp, c.session_id, c.item_id)
        )
        #: set by the TSV readers; None for logs built in memory.
        self.parse_report: TSVParseReport | None = None

    def __len__(self) -> int:
        return len(self._clicks)

    def __iter__(self) -> Iterator[Click]:
        return iter(self._clicks)

    def __getitem__(self, index: int) -> Click:
        return self._clicks[index]

    @property
    def clicks(self) -> Sequence[Click]:
        return self._clicks

    def num_sessions(self) -> int:
        return len({c.session_id for c in self._clicks})

    def num_items(self) -> int:
        return len({c.item_id for c in self._clicks})

    def time_range(self) -> tuple[Timestamp, Timestamp]:
        """(first, last) click timestamps; raises on an empty log."""
        if not self._clicks:
            raise ValueError("click log is empty")
        return self._clicks[0].timestamp, self._clicks[-1].timestamp

    def num_days(self) -> int:
        """Number of calendar days the log touches (Table 1's "days")."""
        first, last = self.time_range()
        return int(last // SECONDS_PER_DAY - first // SECONDS_PER_DAY) + 1

    def sessions(self) -> dict[SessionId, list[Click]]:
        """Group clicks by session, each list in time order."""
        grouped: dict[SessionId, list[Click]] = {}
        for click in self._clicks:
            grouped.setdefault(click.session_id, []).append(click)
        return grouped

    def session_item_sequences(self) -> dict[SessionId, list[ItemId]]:
        """Item sequences per session, in click order."""
        return {
            sid: [c.item_id for c in clicks]
            for sid, clicks in self.sessions().items()
        }

    def filter(self, predicate: Callable[[Click], bool]) -> "ClickLog":
        """A new log with only the clicks satisfying ``predicate``."""
        return ClickLog(c for c in self._clicks if predicate(c))

    def filter_min_session_length(self, min_length: int = 2) -> "ClickLog":
        """Drop sessions shorter than ``min_length`` clicks.

        Single-click sessions carry no next-item signal; dropping them is
        the standard session-rec preprocessing step.
        """
        lengths: dict[SessionId, int] = {}
        for click in self._clicks:
            lengths[click.session_id] = lengths.get(click.session_id, 0) + 1
        return self.filter(lambda c: lengths[c.session_id] >= min_length)

    def filter_min_item_support(self, min_support: int = 5) -> "ClickLog":
        """Drop items clicked fewer than ``min_support`` times."""
        support: dict[ItemId, int] = {}
        for click in self._clicks:
            support[click.item_id] = support.get(click.item_id, 0) + 1
        return self.filter(lambda c: support[c.item_id] >= min_support)

    def preprocess(
        self, min_session_length: int = 2, min_item_support: int = 5
    ) -> "ClickLog":
        """Standard cleanup: item support first, then session length.

        The order matters and matches session-rec: removing rare items can
        shorten sessions below the threshold, so length filtering runs last.
        """
        return self.filter_min_item_support(min_item_support).filter_min_session_length(
            min_session_length
        )

    def split_at(self, timestamp: Timestamp) -> tuple["ClickLog", "ClickLog"]:
        """Split into (before, from) ``timestamp`` — session-atomically.

        A session belongs entirely to the partition of its *last* click,
        so evolving test sessions are never truncated mid-way. This mirrors
        the paper's "last day as held-out test set" protocol.
        """
        last_click: dict[SessionId, Timestamp] = {}
        for click in self._clicks:
            last_click[click.session_id] = max(
                last_click.get(click.session_id, 0), click.timestamp
            )
        train = ClickLog(
            c for c in self._clicks if last_click[c.session_id] < timestamp
        )
        test = ClickLog(
            c for c in self._clicks if last_click[c.session_id] >= timestamp
        )
        return train, test

    def to_tsv(self, path: str | Path) -> None:
        """Write the log as a tab-separated file with a header row."""
        with open(path, "w", encoding="utf-8") as handle:
            self._write_tsv(handle)

    def to_tsv_string(self) -> str:
        buffer = io.StringIO()
        self._write_tsv(buffer)
        return buffer.getvalue()

    def _write_tsv(self, handle: io.TextIOBase) -> None:
        handle.write("session_id\titem_id\ttimestamp\n")
        for click in self._clicks:
            handle.write(f"{click.session_id}\t{click.item_id}\t{click.timestamp}\n")

    @classmethod
    def from_tsv(cls, path: str | Path) -> "ClickLog":
        """Read a log from a tab-separated file written by :meth:`to_tsv`.

        Malformed data lines are skipped and counted (see
        :attr:`parse_report`), never raised — a single bad row must not
        fail a daily ingest. A wrong header still raises ``ValueError``.
        """
        log, _ = cls.from_tsv_with_report(path)
        return log

    @classmethod
    def from_tsv_with_report(
        cls, path: str | Path
    ) -> tuple["ClickLog", TSVParseReport]:
        """Like :meth:`from_tsv`, returning the parse report explicitly."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls._read_tsv(handle)

    @classmethod
    def from_tsv_string(cls, text: str) -> "ClickLog":
        log, _ = cls._read_tsv(io.StringIO(text))
        return log

    @classmethod
    def from_tsv_string_with_report(
        cls, text: str
    ) -> tuple["ClickLog", TSVParseReport]:
        return cls._read_tsv(io.StringIO(text))

    @classmethod
    def _read_tsv(cls, handle: Iterable[str]) -> tuple["ClickLog", TSVParseReport]:
        lines = iter(handle)
        report = TSVParseReport()
        header = next(lines, None)
        if header is None:
            log = cls([])
            log.parse_report = report
            return log, report
        expected = ["session_id", "item_id", "timestamp"]
        if header.strip().split("\t") != expected:
            raise ValueError(f"bad header {header.strip()!r}, expected {expected}")
        clicks = []
        for line_number, line in enumerate(lines, start=2):
            line = line.strip()
            if not line:
                continue
            report.lines += 1
            fields = line.split("\t")
            if len(fields) != 3:
                report.record_error(
                    line_number, f"expected 3 fields, got {len(fields)}"
                )
                continue
            try:
                click = Click(int(fields[0]), int(fields[1]), int(fields[2]))
            except ValueError:
                report.record_error(line_number, f"non-integer field in {fields}")
                continue
            report.parsed += 1
            clicks.append(click)
        log = cls(clicks)
        log.parse_report = report
        return log, report
