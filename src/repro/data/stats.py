"""Dataset statistics — the machinery behind Table 1.

Computes, for any :class:`ClickLog`, the exact columns of the paper's
Table 1: total clicks, sessions, items, days spanned, and the 25th/50th/
75th/99th percentiles of clicks per session.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.clicklog import ClickLog


@dataclass(frozen=True)
class DatasetStatistics:
    """One row of Table 1."""

    name: str
    clicks: int
    sessions: int
    items: int
    days: int
    clicks_per_session_p25: float
    clicks_per_session_p50: float
    clicks_per_session_p75: float
    clicks_per_session_p99: float

    def as_row(self) -> list[str]:
        return [
            self.name,
            f"{self.clicks:,}",
            f"{self.sessions:,}",
            f"{self.items:,}",
            str(self.days),
            f"{self.clicks_per_session_p25:.0f}",
            f"{self.clicks_per_session_p50:.0f}",
            f"{self.clicks_per_session_p75:.0f}",
            f"{self.clicks_per_session_p99:.0f}",
        ]


TABLE1_COLUMNS = [
    "dataset",
    "clicks",
    "sessions",
    "items",
    "days",
    "p25",
    "p50",
    "p75",
    "p99",
]


def dataset_statistics(log: ClickLog, name: str = "dataset") -> DatasetStatistics:
    """Compute the Table 1 row for a click log."""
    if len(log) == 0:
        raise ValueError("cannot compute statistics of an empty log")
    session_lengths = np.fromiter(
        (len(clicks) for clicks in log.sessions().values()), dtype=np.int64
    )
    p25, p50, p75, p99 = np.percentile(session_lengths, [25, 50, 75, 99])
    return DatasetStatistics(
        name=name,
        clicks=len(log),
        sessions=log.num_sessions(),
        items=log.num_items(),
        days=log.num_days(),
        clicks_per_session_p25=float(p25),
        clicks_per_session_p50=float(p50),
        clicks_per_session_p75=float(p75),
        clicks_per_session_p99=float(p99),
    )


def format_table(rows: list[DatasetStatistics]) -> str:
    """Render statistics rows as an aligned text table (Table 1 layout)."""
    table = [TABLE1_COLUMNS] + [row.as_row() for row in rows]
    widths = [max(len(r[col]) for r in table) for col in range(len(TABLE1_COLUMNS))]
    lines = []
    for i, row in enumerate(table):
        line = "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        lines.append(line)
        if i == 0:
            lines.append("-" * len(line))
    return "\n".join(lines)
