"""Synthetic e-commerce clickstream generation.

The paper evaluates on proprietary bol.com datasets (ecom-1m … ecom-180m)
and two public datasets. None of these ship with this repository, so we
generate synthetic clickstreams that reproduce the structural properties
every experiment actually depends on:

* **Zipfian item popularity** — a few blockbuster items, a long tail;
* **topical coherence** — items live in categories ("browse clusters");
  a session mostly stays in one category, which is what makes neighbour
  sessions predictive of the next item;
* **sequential structure** — within a category, transitions prefer nearby
  items on a ring, so order carries signal (this is what recency decay and
  neural sequence models can exploit);
* **session length distribution** — a heavy-tailed mixture calibrated to
  Table 1 of the paper (median ≈ 4 clicks, p99 in the tens);
* **timestamps** — sessions spread over a configurable number of days with
  a diurnal intensity profile, so recency sampling and "last day held out"
  splits behave as on real data.

Generation is deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.types import Click
from repro.data.clicklog import ClickLog


@dataclass(frozen=True)
class ClickstreamConfig:
    """Parameters of the synthetic clickstream generator.

    Attributes:
        num_sessions: number of user sessions to generate.
        num_items: catalog size.
        num_categories: topical clusters; items are assigned round-robin.
        days: time span of the log in days.
        zipf_exponent: popularity skew (1.0 ≈ classic Zipf).
        mean_session_length: mean of the (truncated) length distribution.
        length_tail: geometric tail weight; higher = longer p99 sessions.
        category_switch_prob: chance a click jumps to a random category.
        repeat_prob: chance a click revisits an earlier item in the session.
        locality: probability the next item is a ring-neighbour of the
            current one within the category (sequential signal strength).
        seed: RNG seed; generation is fully deterministic.
    """

    num_sessions: int = 1_000
    num_items: int = 500
    num_categories: int = 20
    days: int = 10
    zipf_exponent: float = 1.05
    mean_session_length: float = 4.0
    length_tail: float = 0.12
    category_switch_prob: float = 0.05
    repeat_prob: float = 0.12
    locality: float = 0.35
    seed: int = 42

    def validate(self) -> None:
        if self.num_sessions < 1:
            raise ValueError("num_sessions must be >= 1")
        if self.num_items < self.num_categories:
            raise ValueError("need at least one item per category")
        if not 0.0 <= self.locality <= 1.0:
            raise ValueError("locality must be a probability")
        if self.days < 1:
            raise ValueError("days must be >= 1")


class ClickstreamGenerator:
    """Generates :class:`ClickLog` instances from a config (see module doc)."""

    def __init__(self, config: ClickstreamConfig) -> None:
        config.validate()
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        self._category_of = np.arange(config.num_items) % config.num_categories
        self._items_by_category = [
            np.flatnonzero(self._category_of == cat)
            for cat in range(config.num_categories)
        ]
        # Zipfian popularity over items, normalised per category so that
        # category-conditional sampling stays popularity-skewed.
        ranks = self._rng.permutation(config.num_items) + 1
        self._popularity = 1.0 / ranks.astype(np.float64) ** config.zipf_exponent
        self._category_popularity = [
            self._normalise(self._popularity[items])
            for items in self._items_by_category
        ]
        # Categories themselves are Zipf-popular too.
        cat_ranks = np.arange(1, config.num_categories + 1, dtype=np.float64)
        self._category_weights = self._normalise(1.0 / cat_ranks)

    @staticmethod
    def _normalise(weights: np.ndarray) -> np.ndarray:
        return weights / weights.sum()

    def _session_length(self) -> int:
        """Mixture: short bulk + geometric tail, clipped to [2, 60].

        Calibrated so that p50 ≈ 4 and p99 lands in the 20-40 range, the
        shape reported for all six datasets in Table 1.
        """
        config = self.config
        if self._rng.random() < config.length_tail:
            length = 8 + self._rng.geometric(0.12)
        else:
            length = 2 + self._rng.poisson(max(config.mean_session_length - 2.5, 0.5))
        return int(np.clip(length, 2, 60))

    def _session_start_times(self) -> np.ndarray:
        """Session start timestamps with a diurnal intensity profile."""
        config = self.config
        day = self._rng.integers(0, config.days, size=config.num_sessions)
        # More traffic in the evening: mixture of a broad day component and
        # an evening peak (hours ~ 19-23).
        evening = self._rng.random(config.num_sessions) < 0.45
        hour = np.where(
            evening,
            self._rng.normal(20.0, 1.8, size=config.num_sessions),
            self._rng.uniform(8.0, 23.0, size=config.num_sessions),
        )
        hour = np.clip(hour, 0.0, 23.99)
        seconds = (day * 24.0 + hour) * 3600.0
        return np.sort(seconds.astype(np.int64))

    def _next_item(self, current: int | None, category: int) -> int:
        """Sample the next item: ring-neighbour, or popularity draw."""
        items = self._items_by_category[category]
        if current is not None and self._rng.random() < self.config.locality:
            # Ring transition: step to one of the nearest items in the
            # category's item ring, preserving sequential predictability.
            position = int(np.searchsorted(items, current))
            if items[position % len(items)] == current:
                step = int(self._rng.choice([-2, -1, 1, 2], p=[0.1, 0.4, 0.4, 0.1]))
                return int(items[(position + step) % len(items)])
        weights = self._category_popularity[category]
        return int(self._rng.choice(items, p=weights))

    def generate(self) -> ClickLog:
        """Generate the full click log."""
        config = self.config
        starts = self._session_start_times()
        clicks: list[Click] = []
        for session_id in range(config.num_sessions):
            length = self._session_length()
            category = int(
                self._rng.choice(config.num_categories, p=self._category_weights)
            )
            timestamp = int(starts[session_id])
            current: int | None = None
            history: list[int] = []
            for _ in range(length):
                if history and self._rng.random() < config.repeat_prob:
                    item = int(self._rng.choice(history))
                else:
                    if self._rng.random() < config.category_switch_prob:
                        category = int(
                            self._rng.choice(
                                config.num_categories, p=self._category_weights
                            )
                        )
                        current = None
                    item = self._next_item(current, category)
                clicks.append(Click(session_id, item, timestamp))
                history.append(item)
                current = item
                # Dwell time between 5 s and ~5 min, log-normalish.
                timestamp += int(5 + self._rng.lognormal(3.0, 0.9))
        return ClickLog(clicks)


def generate_clickstream(
    num_sessions: int = 1_000,
    num_items: int = 500,
    days: int = 10,
    seed: int = 42,
    **overrides,
) -> ClickLog:
    """Convenience wrapper: build a config and generate in one call."""
    config = ClickstreamConfig(
        num_sessions=num_sessions,
        num_items=num_items,
        days=days,
        seed=seed,
        **overrides,
    )
    return ClickstreamGenerator(config).generate()
