"""Registry of named dataset profiles mirroring Table 1 of the paper.

The paper evaluates on two public datasets (retailrocket, rsc15) and four
proprietary samples of bol.com traffic (ecom-1m … ecom-180m). We cannot
redistribute any of them, so each profile here configures the synthetic
generator to approximate the corresponding row of Table 1 — at a
laptop-friendly ``scale`` (fraction of the paper's session count), with the
items-per-session and popularity structure preserved.

Example::

    from repro.data import load_dataset
    log = load_dataset("ecom-1m-sim", scale=0.02, seed=1)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.clicklog import ClickLog
from repro.data.synthetic import ClickstreamConfig, ClickstreamGenerator


@dataclass(frozen=True)
class DatasetProfile:
    """Target shape of one Table 1 row (full-size paper numbers)."""

    name: str
    paper_clicks: int
    paper_sessions: int
    paper_items: int
    days: int
    public: bool
    # Generator shape parameters tuned per dataset family.
    mean_session_length: float
    length_tail: float
    num_categories_per_10k_items: float = 400.0

    def config(self, scale: float, seed: int) -> ClickstreamConfig:
        """Scale the profile down and produce a generator config.

        Sessions scale linearly; the catalog scales with the square root of
        the session count so item frequencies stay realistic (halving the
        traffic does not halve the catalog on a real platform).
        """
        if not 0.0 < scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {scale}")
        num_sessions = max(200, int(self.paper_sessions * scale))
        item_fraction = max(scale ** 0.5, num_sessions / self.paper_sessions)
        num_items = max(50, int(self.paper_items * min(1.0, item_fraction)))
        num_categories = max(
            5, int(num_items / 10_000 * self.num_categories_per_10k_items)
        )
        num_categories = min(num_categories, num_items)
        return ClickstreamConfig(
            num_sessions=num_sessions,
            num_items=num_items,
            num_categories=num_categories,
            days=self.days,
            mean_session_length=self.mean_session_length,
            length_tail=self.length_tail,
            seed=seed,
        )


# Paper numbers from Table 1; *-sim suffix marks these as simulations.
DATASET_PROFILES: dict[str, DatasetProfile] = {
    "retailrocket-sim": DatasetProfile(
        name="retailrocket-sim",
        paper_clicks=86_635,
        paper_sessions=23_318,
        paper_items=21_276,
        days=10,
        public=True,
        mean_session_length=3.7,
        length_tail=0.08,
    ),
    "rsc15-sim": DatasetProfile(
        name="rsc15-sim",
        paper_clicks=31_708_461,
        paper_sessions=7_981_581,
        paper_items=37_483,
        days=181,
        public=True,
        mean_session_length=4.0,
        length_tail=0.08,
        num_categories_per_10k_items=150.0,
    ),
    "ecom-1m-sim": DatasetProfile(
        name="ecom-1m-sim",
        paper_clicks=1_152_438,
        paper_sessions=214_490,
        paper_items=110_988,
        days=30,
        public=False,
        mean_session_length=5.4,
        length_tail=0.13,
    ),
    "ecom-60m-sim": DatasetProfile(
        name="ecom-60m-sim",
        paper_clicks=67_017_367,
        paper_sessions=10_679_757,
        paper_items=1_760_602,
        days=29,
        public=False,
        mean_session_length=6.3,
        length_tail=0.15,
    ),
    "ecom-90m-sim": DatasetProfile(
        name="ecom-90m-sim",
        paper_clicks=89_883_761,
        paper_sessions=13_799_762,
        paper_items=2_263_670,
        days=91,
        public=False,
        mean_session_length=6.5,
        length_tail=0.15,
    ),
    "ecom-180m-sim": DatasetProfile(
        name="ecom-180m-sim",
        paper_clicks=189_317_506,
        paper_sessions=28_824_487,
        paper_items=3_305_412,
        days=91,
        public=False,
        mean_session_length=6.6,
        length_tail=0.16,
    ),
}


def dataset_names() -> list[str]:
    """All registered profile names, Table 1 order."""
    return list(DATASET_PROFILES)


def get_profile(name: str) -> DatasetProfile:
    """Look up a profile; raises with the known names on a typo."""
    try:
        return DATASET_PROFILES[name]
    except KeyError:
        known = ", ".join(DATASET_PROFILES)
        raise ValueError(f"unknown dataset {name!r}; known: {known}") from None


def load_dataset(name: str, scale: float = 0.01, seed: int = 42) -> ClickLog:
    """Generate the named dataset at the given scale.

    ``scale`` is the fraction of the paper's session count; the default of
    1 % keeps even ecom-180m-sim generable in seconds. Deterministic in
    ``(name, scale, seed)``.
    """
    profile = get_profile(name)
    return ClickstreamGenerator(profile.config(scale, seed)).generate()
