"""Command-line interface: the operational surface of the reproduction.

``python -m repro <command>`` drives the full lifecycle a Serenade
operator needs — data generation, the daily index build, offline
evaluation and hyperparameter search, ad-hoc recommendations, and the
HTTP serving component:

.. code-block:: bash

    python -m repro generate --profile ecom-1m-sim --scale 0.01 --out clicks.tsv
    python -m repro stats clicks.tsv
    python -m repro build-index clicks.tsv --m 500 --out daily.vmis
    python -m repro recommend daily.vmis --session 17,42 --count 5
    python -m repro evaluate clicks.tsv --m 500 --k 100
    python -m repro grid-search clicks.tsv --ks 50,100 --ms 100,500
    python -m repro index build clicks.tsv --registry registry/
    python -m repro index promote --registry registry/ --clicks clicks.tsv
    python -m repro index list --registry registry/
    python -m repro bench run --profile quick --out /tmp/bench
    python -m repro bench compare --candidate /tmp/bench
    python -m repro bench list
    python -m repro stream produce clicks.tsv --log-dir events/
    python -m repro stream consume --log-dir events/ --out stream.vmis
    python -m repro stream status --log-dir events/
    python -m repro serve daily.vmis --port 8080
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time
from typing import Sequence

from repro.core.batch import BatchPredictionEngine
from repro.core.colindex import ColumnarSessionIndex, VMISKNNColumnar
from repro.core.vmis import VMISKNN
from repro.data.clicklog import ClickLog
from repro.data.datasets import dataset_names, load_dataset
from repro.data.split import temporal_split
from repro.data.stats import dataset_statistics, format_table
from repro.data.synthetic import generate_clickstream
from repro.eval.evaluator import evaluate_next_item, evaluate_next_item_batched
from repro.eval.gridsearch import grid_search
from repro.experiments.registry import (
    DEFAULT_MODEL,
    RecommenderConfig,
    build_recommender,
    recommender_class,
    registered_models,
)
from repro.index.builder import IndexBuilder
from repro.index.parallel import build_index_parallel
from repro.index.serialization import load_index, save_index


def _int_list(text: str) -> list[int]:
    try:
        values = [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {text!r}"
        ) from None
    if not values:
        raise argparse.ArgumentTypeError("expected at least one integer")
    return values


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Serenade (SIGMOD 2022) reproduction toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="generate a synthetic clickstream as TSV"
    )
    generate.add_argument(
        "--profile",
        choices=dataset_names(),
        default=None,
        help="Table 1 dataset profile (default: generic generator)",
    )
    generate.add_argument("--scale", type=float, default=0.01)
    generate.add_argument("--sessions", type=int, default=5_000)
    generate.add_argument("--items", type=int, default=1_000)
    generate.add_argument("--days", type=int, default=10)
    generate.add_argument("--seed", type=int, default=42)
    generate.add_argument("--out", required=True, help="output TSV path")

    stats = commands.add_parser("stats", help="Table 1 statistics of a TSV log")
    stats.add_argument("clicks", help="click log TSV")

    sessionize_cmd = commands.add_parser(
        "sessionize",
        help="cut a raw user-event TSV (user_id, item_id, timestamp) "
        "into sessions by inactivity gap",
    )
    sessionize_cmd.add_argument("events", help="user event TSV")
    sessionize_cmd.add_argument(
        "--gap", type=int, default=1800, help="inactivity gap in seconds"
    )
    sessionize_cmd.add_argument("--max-length", type=int, default=None)
    sessionize_cmd.add_argument("--out", required=True, help="click log TSV")

    build = commands.add_parser("build-index", help="run the offline index build")
    build.add_argument("clicks", help="click log TSV")
    build.add_argument("--m", type=int, default=500, help="postings per item")
    build.add_argument("--workers", type=int, default=1)
    build.add_argument("--out", required=True, help="index artifact path")

    recommend = commands.add_parser(
        "recommend", help="next-item recommendations from an index artifact"
    )
    recommend.add_argument("index", help="index artifact (.vmis)")
    recommend.add_argument(
        "--session", type=_int_list, required=True, help="comma-separated item ids"
    )
    recommend.add_argument("--m", type=int, default=500)
    recommend.add_argument("--k", type=int, default=100)
    recommend.add_argument("--count", type=int, default=21)
    recommend.add_argument(
        "--engine",
        choices=("columnar", "heap"),
        default="columnar",
        help="scorer: vectorized columnar (default) or the per-item-heap "
        "differential oracle",
    )

    evaluate = commands.add_parser(
        "evaluate", help="next-item evaluation with a held-out last day"
    )
    evaluate.add_argument("clicks", help="click log TSV")
    evaluate.add_argument(
        "--model",
        default=DEFAULT_MODEL,
        help=f"registered recommender ({', '.join(registered_models())})",
    )
    evaluate.add_argument("--m", type=int, default=500)
    evaluate.add_argument("--k", type=int, default=100)
    evaluate.add_argument("--cutoff", type=int, default=20)
    evaluate.add_argument("--test-days", type=float, default=1.0)
    evaluate.add_argument("--max-predictions", type=int, default=None)
    evaluate.add_argument(
        "--batch-size",
        type=int,
        default=0,
        help="replay through recommend_batch in chunks (0 = serial)",
    )
    evaluate.add_argument(
        "--workers",
        type=int,
        default=0,
        help="batch engine worker threads (0 = inline)",
    )
    evaluate.add_argument(
        "--cache-size",
        type=int,
        default=4096,
        help="batch engine LRU result cache entries (0 = off)",
    )

    grid = commands.add_parser(
        "grid-search", help="(k, m) hyperparameter sweep (Figure 2)"
    )
    grid.add_argument("clicks", help="click log TSV")
    grid.add_argument("--ks", type=_int_list, default=[50, 100, 500])
    grid.add_argument("--ms", type=_int_list, default=[100, 500, 1000])
    grid.add_argument("--metric", default="mrr")
    grid.add_argument("--cutoff", type=int, default=20)
    grid.add_argument("--max-predictions", type=int, default=500)

    experiment = commands.add_parser(
        "experiment", help="run a declarative experiment config (JSON)"
    )
    experiment.add_argument("config", help="experiment config JSON path")
    experiment.add_argument(
        "--out", default=None, help="optional JSON results output path"
    )

    index_cmd = commands.add_parser(
        "index",
        help="hardened daily index lifecycle against a versioned registry",
    )
    index_sub = index_cmd.add_subparsers(dest="index_command", required=True)

    index_build = index_sub.add_parser(
        "build", help="validate a click log, build and register a candidate"
    )
    index_build.add_argument("clicks", help="click log TSV")
    index_build.add_argument(
        "--registry", required=True, help="index registry directory"
    )
    index_build.add_argument("--m", type=int, default=500)
    index_build.add_argument(
        "--timestamp-policy",
        choices=["repair", "reject"],
        default="repair",
        help="non-monotonic session timestamps: clamp forward or quarantine",
    )
    index_build.add_argument(
        "--bot-policy",
        choices=["reject", "repair"],
        default="reject",
        help="bot-like sessions: quarantine or truncate to the click cap",
    )
    index_build.add_argument(
        "--max-session-clicks",
        type=int,
        default=200,
        help="sessions longer than this are treated as bots",
    )
    index_build.add_argument(
        "--max-quarantine-rate",
        type=float,
        default=0.25,
        help="refuse the build when more than this fraction is quarantined",
    )

    index_promote = index_sub.add_parser(
        "promote",
        help="canary-gate a registered candidate and move CURRENT on pass",
    )
    index_promote.add_argument(
        "--registry", required=True, help="index registry directory"
    )
    index_promote.add_argument(
        "--version",
        default=None,
        help="candidate version (default: newest registered)",
    )
    index_promote.add_argument(
        "--clicks",
        required=True,
        help="click log TSV providing the holdout slice",
    )
    index_promote.add_argument("--test-days", type=float, default=1.0)
    index_promote.add_argument("--max-recall-drop", type=float, default=0.10)
    index_promote.add_argument("--max-mrr-drop", type=float, default=0.10)
    index_promote.add_argument("--max-predictions", type=int, default=2000)
    index_promote.add_argument("--gate-m", type=int, default=500)
    index_promote.add_argument("--gate-k", type=int, default=100)

    index_rollback = index_sub.add_parser(
        "rollback", help="move CURRENT back to the previous good version"
    )
    index_rollback.add_argument(
        "--registry", required=True, help="index registry directory"
    )

    index_list = index_sub.add_parser(
        "list", help="show registered versions and the CURRENT pointer"
    )
    index_list.add_argument(
        "--registry", required=True, help="index registry directory"
    )

    bench_cmd = commands.add_parser(
        "bench",
        help="structured benchmark trajectory and regression gate",
    )
    bench_sub = bench_cmd.add_subparsers(dest="bench_command", required=True)

    bench_run = bench_sub.add_parser(
        "run", help="run gate arms and write BENCH_<arm>.json records"
    )
    bench_run.add_argument(
        "--arms",
        default="all",
        help="comma-separated arm names, or 'all' (default)",
    )
    bench_run.add_argument(
        "--profile",
        choices=["quick", "full", "smoke"],
        default="quick",
        help="workload sizes: quick (CI gate), full, smoke (tests only)",
    )
    bench_run.add_argument(
        "--seed",
        type=int,
        default=2022,
        help="workload seed (must match the baseline's to be comparable)",
    )
    bench_run.add_argument(
        "--out", default=".", help="directory for BENCH_<arm>.json records"
    )

    bench_compare = bench_sub.add_parser(
        "compare",
        help="gate candidate records against the committed baseline",
    )
    bench_compare.add_argument(
        "--baseline",
        default=".",
        help="directory holding committed BENCH_<arm>.json baselines",
    )
    bench_compare.add_argument(
        "--candidate",
        required=True,
        help="directory holding freshly run BENCH_<arm>.json records",
    )
    bench_compare.add_argument(
        "--arms",
        default=None,
        help="comma-separated arm subset (default: union of both dirs)",
    )
    bench_compare.add_argument(
        "--envelope-file",
        default=None,
        help="JSON noise-envelope overrides "
        '({"metric": {"rel": .., "abs": ..}})',
    )
    bench_compare.add_argument(
        "--update-baseline",
        action="store_true",
        help="ratchet the baseline where the candidate improved beyond "
        "the envelope (shrink-only; refused on any regression)",
    )

    bench_list = bench_sub.add_parser(
        "list", help="show gate arms and committed baseline status"
    )
    bench_list.add_argument(
        "--baseline", default=".", help="baseline directory to inspect"
    )

    stream_cmd = commands.add_parser(
        "stream",
        help="fault-tolerant streaming click ingestion (event-bus lifecycle)",
    )
    stream_sub = stream_cmd.add_subparsers(dest="stream_command", required=True)

    stream_produce = stream_sub.add_parser(
        "produce",
        help="publish a click log TSV into a file-backed partitioned log",
    )
    stream_produce.add_argument("clicks", help="click log TSV")
    stream_produce.add_argument(
        "--log-dir", required=True, help="partitioned event-log directory"
    )
    stream_produce.add_argument(
        "--partitions",
        type=int,
        default=4,
        help="partition count (fixed at log creation)",
    )
    stream_produce.add_argument(
        "--producer-id",
        default="cli",
        help="idempotent-producer identity (re-running the same producer "
        "over the same log deduplicates, it never double-publishes)",
    )

    stream_consume = stream_sub.add_parser(
        "consume",
        help="consume the log into an incremental index artifact (resumable)",
    )
    stream_consume.add_argument(
        "--log-dir", required=True, help="partitioned event-log directory"
    )
    stream_consume.add_argument(
        "--out", required=True, help="index artifact to write/update (.vmis)"
    )
    stream_consume.add_argument("--m", type=int, default=500)
    stream_consume.add_argument(
        "--group",
        default="indexer",
        help="consumer-group id (committed offsets are stored per group)",
    )
    stream_consume.add_argument(
        "--session-gap",
        type=float,
        default=1800.0,
        help="inactivity seconds after which a session seals",
    )
    stream_consume.add_argument(
        "--lateness",
        type=float,
        default=300.0,
        help="allowed out-of-order lateness (event-time seconds)",
    )
    stream_consume.add_argument(
        "--flush",
        action="store_true",
        help="seal every open session at end of stream (terminal drain); "
        "without it open sessions stay pending and replay on resume",
    )

    stream_status = stream_sub.add_parser(
        "status", help="show partitions, offsets, consumer lag and watermark"
    )
    stream_status.add_argument(
        "--log-dir", required=True, help="partitioned event-log directory"
    )
    stream_status.add_argument(
        "--group",
        default="indexer",
        help="consumer-group id to report committed offsets/lag for",
    )

    serve = commands.add_parser("serve", help="start the HTTP serving component")
    serve.add_argument("index", help="index artifact (.vmis)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument("--pods", type=int, default=2)
    serve.add_argument("--m", type=int, default=500)
    serve.add_argument("--k", type=int, default=100)
    serve.add_argument(
        "--engine",
        choices=("columnar", "heap"),
        default="columnar",
        help="pod scorer: vectorized columnar (default) or the "
        "per-item-heap differential oracle",
    )
    serve.add_argument(
        "--cache-size",
        type=int,
        default=1024,
        help="per-pod LRU result cache entries (0 = off)",
    )
    serve.add_argument(
        "--sla-ms",
        type=float,
        default=50.0,
        help="per-request deadline budget in milliseconds",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=256,
        help="admission-control capacity before oldest-first shedding (429)",
    )
    serve.add_argument(
        "--wal-dir",
        default=None,
        help="directory for per-pod session WALs (enables crash recovery)",
    )
    serve.add_argument(
        "--no-guardrails",
        action="store_true",
        help="serve the raw path: no deadlines, fallbacks, breakers or shedding",
    )
    serve.add_argument(
        "--replication",
        type=int,
        default=0,
        metavar="R",
        help="replicated shard ring with R copies per session "
        "(1 leader + R-1 followers; 0 = single-copy sticky routing)",
    )
    serve.add_argument(
        "--vnodes",
        type=int,
        default=128,
        help="virtual nodes per pod on the consistent-hash ring",
    )
    serve.add_argument(
        "--hedge-fraction",
        type=float,
        default=0.25,
        help="hedge a slow leader after this fraction of the remaining "
        "deadline budget (requires --replication >= 2)",
    )

    return parser


def cmd_generate(args) -> int:
    if args.profile is not None:
        log = load_dataset(args.profile, scale=args.scale, seed=args.seed)
    else:
        log = generate_clickstream(
            num_sessions=args.sessions,
            num_items=args.items,
            days=args.days,
            seed=args.seed,
        )
    log.to_tsv(args.out)
    print(
        f"wrote {len(log):,} clicks / {log.num_sessions():,} sessions "
        f"to {args.out}"
    )
    return 0


def cmd_stats(args) -> int:
    log = ClickLog.from_tsv(args.clicks)
    print(format_table([dataset_statistics(log, name=args.clicks)]))
    return 0


def cmd_sessionize(args) -> int:
    from repro.data.sessionize import UserEvent, sessionize

    events = []
    with open(args.events, "r", encoding="utf-8") as handle:
        header = next(handle, "")
        expected = ["user_id", "item_id", "timestamp"]
        if header.strip().split("\t") != expected:
            raise SystemExit(
                f"bad header {header.strip()!r}; expected {expected}"
            )
        for line in handle:
            line = line.strip()
            if not line:
                continue
            user_id, item_id, timestamp = line.split("\t")
            events.append(UserEvent(int(user_id), int(item_id), int(timestamp)))
    log, report = sessionize(
        events, inactivity_gap=args.gap, max_session_length=args.max_length
    )
    log.to_tsv(args.out)
    print(
        f"cut {report.events:,} events from {report.users:,} users into "
        f"{report.sessions:,} sessions "
        f"({report.sessions_per_user:.2f}/user) -> {args.out}"
    )
    return 0


def cmd_build_index(args) -> int:
    log = ClickLog.from_tsv(args.clicks)
    started = time.perf_counter()
    if args.workers > 1:
        index = build_index_parallel(
            list(log), max_sessions_per_item=args.m, num_workers=args.workers
        )
    else:
        builder = IndexBuilder(max_sessions_per_item=args.m)
        index = builder.build(list(log))
    elapsed = time.perf_counter() - started
    size = save_index(index, args.out)
    print(
        f"built index over {index.num_sessions:,} sessions / "
        f"{index.num_items:,} items in {elapsed:.1f}s; "
        f"artifact {args.out} ({size / 1024:.0f} KiB)"
    )
    return 0


def cmd_recommend(args) -> int:
    index = load_index(args.index)
    model: VMISKNN | VMISKNNColumnar
    if args.engine == "columnar":
        model = VMISKNNColumnar(
            ColumnarSessionIndex.from_session_index(index), m=args.m, k=args.k
        )
    else:
        model = VMISKNN(index, m=args.m, k=args.k)
    for rank, scored in enumerate(
        model.recommend(args.session, how_many=args.count), start=1
    ):
        print(f"{rank:>3}. item {scored.item_id:>8}  score {scored.score:.4f}")
    return 0


def cmd_evaluate(args) -> int:
    log = ClickLog.from_tsv(args.clicks)
    split = temporal_split(log, test_days=args.test_days)
    params = {"m": args.m, "k": args.k}
    model_class = recommender_class(args.model)
    if model_class is not None:
        # drop knobs the chosen algorithm does not take (e.g. popularity)
        accepted = inspect.signature(model_class.__init__).parameters
        params = {key: value for key, value in params.items() if key in accepted}
    model = build_recommender(
        args.model,
        RecommenderConfig.from_params(params),
        clicks=list(split.train),
    )
    if args.batch_size > 0:
        engine = BatchPredictionEngine(
            model, num_workers=args.workers, cache_size=args.cache_size
        )
        with engine:
            result = evaluate_next_item_batched(
                engine,
                split.test_sequences(),
                cutoff=args.cutoff,
                batch_size=args.batch_size,
                measure_latency=True,
                max_predictions=args.max_predictions,
            )
            cache = engine.cache_info()
    else:
        result = evaluate_next_item(
            model,
            split.test_sequences(),
            cutoff=args.cutoff,
            measure_latency=True,
            max_predictions=args.max_predictions,
        )
        cache = None
    print(f"predictions: {result.predictions}")
    for metric, value in result.summary().items():
        print(f"{metric:<10} {value:.4f}")
    print(f"p90 latency: {result.latency_percentile(90) * 1e3:.2f} ms")
    if cache is not None:
        print(
            f"cache: {cache['hits']}/{cache['hits'] + cache['misses']} hits "
            f"({cache['hit_rate']:.1%})"
        )
    return 0


def cmd_grid_search(args) -> int:
    log = ClickLog.from_tsv(args.clicks)
    split = temporal_split(log, test_days=1)
    result = grid_search(
        list(split.train),
        split.test_sequences(),
        ks=args.ks,
        ms=args.ms,
        cutoff=args.cutoff,
        max_predictions=args.max_predictions,
    )
    print(result.heatmap(args.metric))
    best = result.best(args.metric)
    print(f"best {args.metric}: k={best.k}, m={best.m} -> {best.metric(args.metric):.4f}")
    return 0


def cmd_experiment(args) -> int:
    from repro.experiments import ExperimentConfig, run_experiment

    config = ExperimentConfig.load(args.config)
    report = run_experiment(config)
    print(report.render())
    if args.out:
        report.save_json(args.out)
        print(f"results written to {args.out}")
    return 0


def _cmd_index_build(args) -> int:
    from repro.index.lifecycle import DailyIndexLifecycle, IndexRegistry
    from repro.index.lifecycle.validation import IngestionPolicy

    log, parse_report = ClickLog.from_tsv_with_report(args.clicks)
    if parse_report.skipped:
        print(f"parse: {parse_report.summary()}")
    policy = IngestionPolicy(
        timestamp_policy=args.timestamp_policy,
        bot_policy=args.bot_policy,
        max_session_clicks=args.max_session_clicks,
        max_quarantine_rate=args.max_quarantine_rate,
    )
    lifecycle = DailyIndexLifecycle(
        IndexRegistry(args.registry),
        ingestion_policy=policy,
        max_sessions_per_item=args.m,
    )
    manifest, validation = lifecycle.build_and_register(
        list(log), provenance={"click_log": args.clicks}
    )
    print(f"validation: {validation.summary()}")
    if manifest is None:
        print(
            f"build refused: quarantine rate {validation.quarantine_rate:.1%} "
            f"exceeds {policy.max_quarantine_rate:.1%}"
        )
        return 1
    print(
        f"registered {manifest.version}: {manifest.num_sessions:,} sessions / "
        f"{manifest.num_items:,} items, "
        f"{manifest.artifact_bytes / 1024:.0f} KiB, "
        f"sha256 {manifest.checksum_sha256[:12]}..."
    )
    return 0


def _cmd_index_promote(args) -> int:
    from repro.index.lifecycle import DailyIndexLifecycle, IndexRegistry
    from repro.index.lifecycle.gate import GatePolicy

    registry = IndexRegistry(args.registry)
    versions = registry.versions()
    if not versions:
        print(f"no versions registered under {args.registry}")
        return 1
    version = args.version or versions[-1]
    log = ClickLog.from_tsv(args.clicks)
    split = temporal_split(log, test_days=args.test_days)
    holdout = split.test_sequences()
    lifecycle = DailyIndexLifecycle(
        registry,
        gate_policy=GatePolicy(
            max_recall_drop=args.max_recall_drop,
            max_mrr_drop=args.max_mrr_drop,
            max_predictions=args.max_predictions,
            m=args.gate_m,
            k=args.gate_k,
        ),
    )
    outcome = lifecycle.promote(version, holdout)
    assert outcome.gate is not None
    print(outcome.gate.summary())
    if not outcome.succeeded:
        print(f"promotion refused at {outcome.refused_at}:")
        for reason in outcome.refusal_reasons:
            print(f"  - {reason}")
        return 1
    print(f"promoted {version} (CURRENT -> {registry.current_version()})")
    return 0


def _cmd_index_rollback(args) -> int:
    from repro.index.lifecycle import IndexRegistry
    from repro.index.lifecycle.registry import RegistryError

    registry = IndexRegistry(args.registry)
    before = registry.current_version()
    try:
        after = registry.rollback()
    except RegistryError as error:
        print(f"rollback refused: {error}")
        return 1
    print(f"rolled back {before} -> {after}")
    return 0


def _cmd_index_list(args) -> int:
    from repro.index.lifecycle import IndexRegistry

    registry = IndexRegistry(args.registry)
    versions = registry.versions()
    if not versions:
        print(f"no versions registered under {args.registry}")
        return 0
    current = registry.current_version()
    for version in versions:
        manifest = registry.manifest(version)
        marker = " *CURRENT*" if version == current else ""
        print(
            f"{version}{marker}  {manifest.num_sessions:>8,} sessions  "
            f"{manifest.num_items:>7,} items  "
            f"{manifest.artifact_bytes / 1024:>8.0f} KiB  "
            f"sha256 {manifest.checksum_sha256[:12]}"
        )
    return 0


_INDEX_COMMANDS = {
    "build": _cmd_index_build,
    "promote": _cmd_index_promote,
    "rollback": _cmd_index_rollback,
    "list": _cmd_index_list,
}


def cmd_index(args) -> int:
    return _INDEX_COMMANDS[args.index_command](args)


def _arm_list(text: str | None) -> list[str] | None:
    if text is None or text == "all":
        return None
    return [part.strip() for part in text.split(",") if part.strip()]


def _cmd_bench_run(args) -> int:
    from repro.bench import run_arms, summarize_record

    try:
        published = run_arms(
            _arm_list(args.arms), args.profile, args.out, seed=args.seed
        )
    except ValueError as error:
        print(f"bench run refused: {error}")
        return 2
    for record, path in published:
        print(summarize_record(record))
        print(f"           -> {path}")
    return 0


def _cmd_bench_compare(args) -> int:
    from repro.bench import (
        BenchSchemaError,
        EnvelopePolicy,
        compare_dirs,
        load_record,
        record_path,
        save_record,
        tighten_baseline,
    )
    from repro.bench.comparator import ARM_ERROR, ARM_REGRESSION

    try:
        policy = (
            EnvelopePolicy.from_json(args.envelope_file)
            if args.envelope_file
            else None
        )
    except BenchSchemaError as error:
        print(f"bench compare refused: {error}")
        return 2
    report = compare_dirs(
        args.baseline, args.candidate, arms=_arm_list(args.arms), policy=policy
    )
    print(report.render())
    if args.update_baseline and report.exit_code == 0:
        for arm in report.arms:
            if arm.status in (ARM_ERROR, ARM_REGRESSION):
                continue
            base_path = record_path(args.baseline, arm.arm)
            cand_path = record_path(args.candidate, arm.arm)
            if not cand_path.exists():
                continue
            if not base_path.exists():
                saved = save_record(load_record(cand_path), args.baseline)
                print(f"new baseline committed: {saved}")
                continue
            tightened = tighten_baseline(
                load_record(base_path), load_record(cand_path), policy
            )
            if tightened is not None:
                saved = save_record(tightened, args.baseline)
                print(f"baseline ratcheted: {saved}")
    return report.exit_code


def _cmd_bench_list(args) -> int:
    from repro.bench import baseline_status

    for line in baseline_status(args.baseline):
        print(line)
    return 0


_BENCH_COMMANDS = {
    "run": _cmd_bench_run,
    "compare": _cmd_bench_compare,
    "list": _cmd_bench_list,
}


def cmd_bench(args) -> int:
    return _BENCH_COMMANDS[args.bench_command](args)


def _cmd_stream_produce(args) -> int:
    from repro.streaming import ClickProducer, PartitionedLog

    clicks = ClickLog.from_tsv(args.clicks)
    try:
        log = PartitionedLog(args.partitions, directory=args.log_dir)
    except ValueError as error:
        print(f"stream produce refused: {error}")
        return 2
    try:
        producer = ClickProducer(log, args.producer_id)
        receipts = producer.publish_all(clicks.clicks)
    finally:
        log.close()
    new = sum(1 for receipt in receipts if not receipt.deduplicated)
    print(
        f"published {len(receipts):,} clicks as producer "
        f"{args.producer_id!r} ({new:,} new, "
        f"{len(receipts) - new:,} deduplicated) -> "
        f"{log.num_partitions} partitions in {args.log_dir}"
    )
    return 0


def _stream_paths(args) -> tuple:
    from pathlib import Path

    log_dir = Path(args.log_dir)
    return log_dir, log_dir / f"offsets-{args.group}.json"


def _cmd_stream_consume(args) -> int:
    import json as json_module
    from pathlib import Path

    from repro.index.maintenance import IncrementalIndexer
    from repro.streaming import (
        CommittedOffsets,
        ConsumerGroup,
        PartitionedLog,
        StreamingIndexer,
        StreamingPolicy,
    )

    try:
        log = PartitionedLog.open(args.log_dir)
    except FileNotFoundError as error:
        print(f"stream consume refused: {error}")
        return 2
    try:
        _, offsets_path = _stream_paths(args)
        out_path = Path(args.out)
        state_path = Path(str(args.out) + ".state.json")
        if out_path.exists() and state_path.exists():
            index = load_index(out_path)
            state = json_module.loads(state_path.read_text(encoding="utf-8"))
            indexer = IncrementalIndexer.restore(index, state)
            resumed = True
        else:
            indexer = IncrementalIndexer(max_sessions_per_item=args.m)
            resumed = False
        group = ConsumerGroup(log, args.group, CommittedOffsets(offsets_path))
        try:
            policy = StreamingPolicy(
                session_gap_seconds=args.session_gap,
                allowed_lateness_seconds=args.lateness,
            )
        except ValueError as error:
            print(f"stream consume refused: {error}")
            return 2
        # Offsets are committed only after the index artifact is durably
        # written below: a crash in between replays, it never loses clicks.
        pipeline = StreamingIndexer(
            log, indexer, group=group, policy=policy, commit_each_step=False
        )
        pipeline.run_until_caught_up()
        if args.flush:
            pipeline.flush()
        save_index(indexer.index, out_path)
        state_path.write_text(
            json_module.dumps(indexer.state_dict()), encoding="utf-8"
        )
        pipeline.commit()
    finally:
        log.close()
    health = pipeline.health()
    print(
        f"{'resumed' if resumed else 'started'} group {args.group!r}: "
        f"applied {pipeline.sessions_applied:,} sessions "
        f"({pipeline.sessions_duplicate:,} duplicate, "
        f"{pipeline.sessions_stale:,} stale, "
        f"{pipeline.too_late_events:,} too-late clicks), "
        f"{health['pending_sessions']} still open"
        f"{' (flushed)' if args.flush else ''}"
    )
    print(
        f"index: {indexer.index.num_sessions:,} sessions, "
        f"{indexer.index.num_items:,} items -> {out_path} "
        f"(+ {state_path.name})"
    )
    return 0


def _cmd_stream_status(args) -> int:
    from repro.streaming import CommittedOffsets, PartitionedLog

    try:
        log = PartitionedLog.open(args.log_dir)
    except FileNotFoundError as error:
        print(f"stream status refused: {error}")
        return 2
    try:
        _, offsets_path = _stream_paths(args)
        offsets = CommittedOffsets(
            offsets_path if offsets_path.exists() else None
        )
        total_lag = 0
        print(f"log {args.log_dir}: {log.num_partitions} partitions, "
              f"{log.total_records():,} records")
        for partition in range(log.num_partitions):
            end = log.end_offset(partition)
            committed = offsets.get(partition)
            lag = max(0, end - committed)
            total_lag += lag
            print(
                f"  partition {partition}: end {end:>8,}  "
                f"committed[{args.group}] {committed:>8,}  lag {lag:>8,}"
            )
        head = log.max_event_time()
        head_text = f"{head}" if head is not None else "n/a"
        print(f"group {args.group!r} lag {total_lag:,} events; "
              f"event-time head {head_text}")
    finally:
        log.close()
    return 0


_STREAM_COMMANDS = {
    "produce": _cmd_stream_produce,
    "consume": _cmd_stream_consume,
    "status": _cmd_stream_status,
}


def cmd_stream(args) -> int:
    return _STREAM_COMMANDS[args.stream_command](args)


def cmd_serve(args) -> int:
    from repro.serving.app import ServingCluster
    from repro.serving.http import SerenadeHTTPServer
    from repro.serving.resilience import ResiliencePolicy
    from repro.serving.ring import ReplicationPolicy

    index = load_index(args.index)
    resilience = (
        None
        if args.no_guardrails
        else ResiliencePolicy(
            budget_ms=args.sla_ms, queue_capacity=args.max_inflight
        )
    )
    replication = (
        ReplicationPolicy(
            replication_factor=args.replication,
            virtual_nodes=args.vnodes,
            hedge_enabled=args.replication >= 2,
            hedge_fraction=args.hedge_fraction,
            budget_ms=args.sla_ms,
        )
        if args.replication >= 1
        else None
    )
    cluster = ServingCluster.with_index(
        index,
        num_pods=args.pods,
        m=args.m,
        k=args.k,
        engine=args.engine,
        cache_size=args.cache_size,
        resilience=resilience,
        wal_dir=args.wal_dir,
        replication=replication,
    )
    server = SerenadeHTTPServer(cluster, host=args.host, port=args.port)
    server.start()
    guardrails = (
        "guardrails off"
        if resilience is None
        else f"SLA {args.sla_ms:g} ms, max inflight {args.max_inflight}"
    )
    wal = f", WAL {args.wal_dir}" if args.wal_dir else ""
    ring = (
        f", ring R={args.replication} "
        f"(vnodes {args.vnodes}, hedge {args.hedge_fraction:g})"
        if replication is not None
        else ""
    )
    print(
        f"serving {index.num_items:,} items on "
        f"http://{args.host}:{server.port} "
        f"({args.pods} pods, {args.engine} engine, "
        f"cache {args.cache_size}, {guardrails}{wal}{ring}; "
        f"POST /v1/recommend, POST /v1/recommend_batch, "
        f"GET /healthz, GET /metrics)"
    )
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("shutting down")
        server.stop()
    return 0


_COMMANDS = {
    "generate": cmd_generate,
    "stats": cmd_stats,
    "sessionize": cmd_sessionize,
    "build-index": cmd_build_index,
    "recommend": cmd_recommend,
    "evaluate": cmd_evaluate,
    "grid-search": cmd_grid_search,
    "experiment": cmd_experiment,
    "index": cmd_index,
    "bench": cmd_bench,
    "stream": cmd_stream,
    "serve": cmd_serve,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
