"""Command-line interface for the Serenade reproduction."""

from repro.cli.main import build_parser, main

__all__ = ["build_parser", "main"]
