"""SARIF 2.1.0 output for editor and code-scanning integration.

One run object, one result per finding; rule metadata (name, rationale)
is published in the driver's rule table so viewers can show the help
text next to each result. Columns are emitted 1-based per the SARIF
spec (the engine stores ast's 0-based ``col_offset``).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from repro.analysis.diagnostics import META_RULE
from repro.analysis.registry import all_rules

if TYPE_CHECKING:
    from repro.analysis.engine import AnalysisReport

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _rule_table() -> list[dict[str, object]]:
    rules: list[dict[str, object]] = [
        {
            "id": META_RULE,
            "name": "MetaFinding",
            "shortDescription": {
                "text": "analysis problems: parse errors, suppression and "
                "baseline misuse"
            },
        }
    ]
    for cls in all_rules():
        rules.append(
            {
                "id": cls.rule_id,
                "name": cls.name,
                "shortDescription": {"text": cls.name},
                "fullDescription": {"text": " ".join(cls.rationale.split())},
            }
        )
    return rules


def render_sarif(report: "AnalysisReport") -> str:
    """The report as a SARIF 2.1.0 log, deterministic key order."""
    rules = _rule_table()
    rule_index = {rule["id"]: idx for idx, rule in enumerate(rules)}
    results = []
    for finding in report.findings:
        result: dict[str, object] = {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.column + 1,
                        },
                    }
                }
            ],
        }
        if finding.rule in rule_index:
            result["ruleIndex"] = rule_index[finding.rule]
        results.append(result)
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "serenade-lint",
                        "informationUri": (
                            "https://example.invalid/serenade-lint"
                        ),
                        "rules": rules,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "originalUriBaseIds": {
                    "SRCROOT": {"description": {"text": "repository root"}}
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
