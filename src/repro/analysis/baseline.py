"""The committed baseline: grandfathered findings that may only shrink.

A baseline entry matches findings by ``(rule, path, message)`` — line
numbers are deliberately excluded so unrelated edits above a
grandfathered finding do not resurrect it. Matching is multiset-style:
an entry with ``count: 2`` absorbs at most two identical findings.
Entries that match nothing are reported as SRN000 findings, so a fixed
violation *must* be deleted from the baseline in the same change.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.diagnostics import META_RULE, Diagnostic

BASELINE_VERSION = 1

Key = tuple[str, str, str]  # (rule, path, message)


@dataclass
class Baseline:
    """Multiset of grandfathered findings."""

    entries: Counter = field(default_factory=Counter)

    @classmethod
    def from_findings(cls, findings: list[Diagnostic]) -> "Baseline":
        baseline = cls()
        for finding in findings:
            if finding.rule == META_RULE:
                continue
            baseline.entries[(finding.rule, finding.path, finding.message)] += 1
        return baseline

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls()
        payload = json.loads(path.read_text(encoding="utf-8"))
        if payload.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"baseline {path} has unsupported version "
                f"{payload.get('version')!r}"
            )
        baseline = cls()
        for entry in payload.get("entries", []):
            key = (entry["rule"], entry["path"], entry["message"])
            baseline.entries[key] += int(entry.get("count", 1))
        return baseline

    def save(self, path: Path) -> None:
        entries = [
            {"rule": rule, "path": file_path, "message": message, "count": count}
            for (rule, file_path, message), count in sorted(self.entries.items())
        ]
        payload = {"version": BASELINE_VERSION, "entries": entries}
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def __len__(self) -> int:
        return sum(self.entries.values())

    def apply(
        self, findings: list[Diagnostic]
    ) -> tuple[list[Diagnostic], int, list[Diagnostic]]:
        """Split findings into (kept, baselined_count, unused_entry_findings).

        Consumes entries as findings match them; whatever remains in the
        multiset afterwards is unused and reported as SRN000.
        """
        remaining = Counter(self.entries)
        kept: list[Diagnostic] = []
        baselined = 0
        for finding in findings:
            key: Key = (finding.rule, finding.path, finding.message)
            if finding.suppressible and remaining.get(key, 0) > 0:
                remaining[key] -= 1
                baselined += 1
            else:
                kept.append(finding)
        unused = [
            Diagnostic(
                file_path,
                0,
                0,
                META_RULE,
                f"unused baseline entry for {rule}: {message!r} no longer "
                "occurs — delete it from the baseline",
            )
            for (rule, file_path, message), count in sorted(remaining.items())
            for _ in range(count)
        ]
        return kept, baselined, unused
