"""Serializable per-module summaries for the interprocedural phase.

The engine analyzes each file once and distils what the *project-wide*
rules need into a :class:`ModuleSummary`: per-class contract metadata
(locks, guards, frozen buffers, call orderings) and one
:class:`FunctionFact` per function/method recording its deadline
parameter, every call site (with the locks held around it and whether
the caller's deadline is forwarded), and every direct lock acquisition
with its held-context.

Summaries are the unit of caching: they are plain-JSON round-trippable
(:meth:`ModuleSummary.to_dict` / :meth:`ModuleSummary.from_dict`), so a
warm run rebuilds the whole call graph and lock graph without parsing a
single unchanged file. The interprocedural phase is recomputed from
summaries on every run — it is cheap relative to parsing, and it is what
lets a one-file edit refresh cross-module findings while every other
file stays cache-hit.

Traversal semantics deliberately mirror the original SRN004 walker:
``with self.<lock>:`` nesting defines the held-context, nested function
bodies are attributed to their enclosing function (a closure's calls
happen on behalf of its owner, conservatively), and ``with``-item
expressions are not scanned for call sites.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.analysis.symbols import (
    ClassInfo,
    FunctionDefs,
    collect_class_info,
    module_name_for,
    self_attr,
)

if TYPE_CHECKING:
    from repro.analysis.engine import ParsedModule

SUMMARY_VERSION = 1

#: method/function leaf names that can block long enough to matter for
#: the SLA budget (shared with SRN003's intra-function checks).
BLOCKING_NAMES = frozenset(
    {
        "recommend",
        "recommend_batch",
        "handle",
        "result",
        "submit",
        "sleep",
        "join",
        "wait",
        "acquire",
        "fit",
        "run",
    }
)


@dataclass
class CallFact:
    """One call site inside a function body."""

    #: "self" (self.m()), "attr" (self.x.m()), or "name" (f() / mod.f()).
    kind: str
    #: leaf callee name (the method/function identifier).
    method: str
    line: int
    col: int
    #: for kind="attr": the ``self.<attr>`` receiver attribute.
    attr: str | None = None
    #: for kind="name": the alias-expanded dotted target.
    dotted: str | None = None
    #: does any argument reference the caller's deadline parameter?
    passes_deadline: bool = False
    #: lock attributes held around the call (with-nesting + @holds_lock).
    held: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "method": self.method,
            "line": self.line,
            "col": self.col,
            "attr": self.attr,
            "dotted": self.dotted,
            "passes_deadline": self.passes_deadline,
            "held": list(self.held),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "CallFact":
        return cls(
            kind=payload["kind"],
            method=payload["method"],
            line=payload["line"],
            col=payload["col"],
            attr=payload.get("attr"),
            dotted=payload.get("dotted"),
            passes_deadline=payload.get("passes_deadline", False),
            held=tuple(payload.get("held", ())),
        )


@dataclass
class AcquireFact:
    """One direct ``with self.<lock>:`` acquisition."""

    lock: str
    line: int
    #: lock attributes already held when this acquisition runs.
    held: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {"lock": self.lock, "line": self.line, "held": list(self.held)}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "AcquireFact":
        return cls(
            lock=payload["lock"],
            line=payload["line"],
            held=tuple(payload.get("held", ())),
        )


@dataclass
class FunctionFact:
    """Interprocedural facts about one function or method."""

    qualname: str  #: "func" or "Class.method"
    name: str
    cls: str | None
    line: int
    col: int
    deadline_param: str | None = None
    calls: list[CallFact] = field(default_factory=list)
    acquires: list[AcquireFact] = field(default_factory=list)

    @property
    def blocks_directly(self) -> bool:
        return any(call.method in BLOCKING_NAMES for call in self.calls)

    def to_dict(self) -> dict[str, Any]:
        return {
            "qualname": self.qualname,
            "name": self.name,
            "cls": self.cls,
            "line": self.line,
            "col": self.col,
            "deadline_param": self.deadline_param,
            "calls": [call.to_dict() for call in self.calls],
            "acquires": [acq.to_dict() for acq in self.acquires],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "FunctionFact":
        return cls(
            qualname=payload["qualname"],
            name=payload["name"],
            cls=payload.get("cls"),
            line=payload["line"],
            col=payload["col"],
            deadline_param=payload.get("deadline_param"),
            calls=[CallFact.from_dict(c) for c in payload.get("calls", ())],
            acquires=[
                AcquireFact.from_dict(a) for a in payload.get("acquires", ())
            ],
        )


@dataclass
class ClassFact:
    """Serializable slice of :class:`~repro.analysis.symbols.ClassInfo`."""

    name: str
    line: int
    col: int
    lock_attrs: tuple[str, ...] = ()
    rlock_attrs: tuple[str, ...] = ()
    guarded: dict[str, str] = field(default_factory=dict)
    holds: dict[str, tuple[str, ...]] = field(default_factory=dict)
    attr_types: dict[str, str] = field(default_factory=dict)
    frozen_buffers: tuple[str, ...] = ()
    ordering: tuple[tuple[str, str], ...] = ()
    methods: tuple[str, ...] = ()

    @property
    def all_locks(self) -> set[str]:
        return set(self.lock_attrs) | set(self.rlock_attrs)

    def lock_node(self, lock_attr: str) -> str:
        return f"{self.name}.{lock_attr}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "line": self.line,
            "col": self.col,
            "lock_attrs": list(self.lock_attrs),
            "rlock_attrs": list(self.rlock_attrs),
            "guarded": dict(self.guarded),
            "holds": {k: list(v) for k, v in self.holds.items()},
            "attr_types": dict(self.attr_types),
            "frozen_buffers": list(self.frozen_buffers),
            "ordering": [list(pair) for pair in self.ordering],
            "methods": list(self.methods),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ClassFact":
        return cls(
            name=payload["name"],
            line=payload["line"],
            col=payload["col"],
            lock_attrs=tuple(payload.get("lock_attrs", ())),
            rlock_attrs=tuple(payload.get("rlock_attrs", ())),
            guarded=dict(payload.get("guarded", {})),
            holds={
                k: tuple(v) for k, v in payload.get("holds", {}).items()
            },
            attr_types=dict(payload.get("attr_types", {})),
            frozen_buffers=tuple(payload.get("frozen_buffers", ())),
            ordering=tuple(
                (pair[0], pair[1]) for pair in payload.get("ordering", ())
            ),
            methods=tuple(payload.get("methods", ())),
        )


@dataclass
class ModuleSummary:
    """Everything the project phase needs to know about one file."""

    relpath: str
    module_name: str | None
    classes: list[ClassFact] = field(default_factory=list)
    functions: list[FunctionFact] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": SUMMARY_VERSION,
            "relpath": self.relpath,
            "module_name": self.module_name,
            "classes": [fact.to_dict() for fact in self.classes],
            "functions": [fact.to_dict() for fact in self.functions],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ModuleSummary":
        return cls(
            relpath=payload["relpath"],
            module_name=payload.get("module_name"),
            classes=[ClassFact.from_dict(c) for c in payload.get("classes", ())],
            functions=[
                FunctionFact.from_dict(f) for f in payload.get("functions", ())
            ],
        )


# -- building ----------------------------------------------------------------


def deadline_param(node: ast.FunctionDef | ast.AsyncFunctionDef) -> str | None:
    """Name of the Deadline parameter, if the function takes one."""
    args = node.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if arg.arg == "deadline":
            return arg.arg
        annotation = arg.annotation
        if annotation is not None and "Deadline" in ast.dump(annotation):
            return arg.arg
    return None


def _class_fact(info: ClassInfo) -> ClassFact:
    return ClassFact(
        name=info.name,
        line=info.node.lineno,
        col=info.node.col_offset,
        lock_attrs=tuple(sorted(info.lock_attrs)),
        rlock_attrs=tuple(sorted(info.rlock_attrs)),
        guarded=dict(info.guarded),
        holds={k: tuple(sorted(v)) for k, v in info.holds.items()},
        attr_types=dict(info.attr_types),
        frozen_buffers=info.frozen_buffers,
        ordering=info.ordering,
        methods=tuple(info.methods),
    )


def _references_param(node: ast.expr, param: str) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and child.id == param:
            return True
    return False


def _classify_call(
    module: "ParsedModule", call: ast.Call, param: str | None
) -> CallFact | None:
    func = call.func
    passes = False
    if param is not None:
        passes = any(
            _references_param(arg, param) for arg in call.args
        ) or any(
            kw.value is not None and _references_param(kw.value, param)
            for kw in call.keywords
        )
    if isinstance(func, ast.Attribute):
        owner = func.value
        if isinstance(owner, ast.Name) and owner.id == "self":
            return CallFact(
                kind="self",
                method=func.attr,
                line=call.lineno,
                col=call.col_offset,
                passes_deadline=passes,
            )
        attr = self_attr(owner)
        if attr is not None:
            return CallFact(
                kind="attr",
                method=func.attr,
                line=call.lineno,
                col=call.col_offset,
                attr=attr,
                passes_deadline=passes,
            )
        dotted = module.qualified_name(func)
        if dotted is not None:
            return CallFact(
                kind="name",
                method=func.attr,
                line=call.lineno,
                col=call.col_offset,
                dotted=dotted,
                passes_deadline=passes,
            )
        # dynamic receiver (result of a call/subscript): keep the leaf
        # name so blocking-name heuristics still see it.
        return CallFact(
            kind="name",
            method=func.attr,
            line=call.lineno,
            col=call.col_offset,
            dotted=None,
            passes_deadline=passes,
        )
    if isinstance(func, ast.Name):
        dotted = module.aliases.get(func.id, func.id)
        return CallFact(
            kind="name",
            method=dotted.rsplit(".", 1)[-1],
            line=call.lineno,
            col=call.col_offset,
            dotted=dotted,
            passes_deadline=passes,
        )
    return None


class _FunctionWalker:
    """Collect calls/acquires with with-held lock context (SRN004-style)."""

    def __init__(
        self,
        module: "ParsedModule",
        info: ClassInfo | None,
        base_held: frozenset[str],
        param: str | None,
    ) -> None:
        self.module = module
        self.info = info
        self.base_held = base_held
        self.param = param
        self.calls: list[CallFact] = []
        self.acquires: list[AcquireFact] = []

    def walk(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self._walk_node(stmt, frozenset())

    def _walk_node(self, node: ast.AST, with_held: frozenset[str]) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = set(with_held)
            for item in node.items:
                attr = self_attr(item.context_expr)
                if (
                    self.info is not None
                    and attr is not None
                    and attr in self.info.all_locks
                ):
                    self.acquires.append(
                        AcquireFact(
                            lock=attr,
                            line=item.context_expr.lineno,
                            held=tuple(sorted(with_held)),
                        )
                    )
                    acquired.add(attr)
            for stmt in node.body:
                self._walk_node(stmt, frozenset(acquired))
            return
        if isinstance(node, ast.Call):
            fact = _classify_call(self.module, node, self.param)
            if fact is not None:
                fact.held = tuple(sorted(self.base_held | with_held))
                self.calls.append(fact)
        for child in ast.iter_child_nodes(node):
            self._walk_node(child, with_held)


def _function_fact(
    module: "ParsedModule",
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    info: ClassInfo | None,
) -> FunctionFact:
    param = deadline_param(func)
    base_held = frozenset(
        info.holds.get(func.name, set()) if info is not None else ()
    )
    walker = _FunctionWalker(module, info, base_held, param)
    walker.walk(func.body)
    cls_name = info.name if info is not None else None
    qualname = f"{cls_name}.{func.name}" if cls_name else func.name
    return FunctionFact(
        qualname=qualname,
        name=func.name,
        cls=cls_name,
        line=func.lineno,
        col=func.col_offset,
        deadline_param=param,
        calls=walker.calls,
        acquires=walker.acquires,
    )


def build_module_summary(module: "ParsedModule") -> ModuleSummary:
    """Distil one parsed module into its cacheable summary."""
    infos = collect_class_info(module)
    summary = ModuleSummary(
        relpath=module.relpath,
        module_name=module_name_for(module.relpath),
        classes=[_class_fact(info) for info in infos],
    )
    for stmt in module.tree.body:
        if isinstance(stmt, FunctionDefs):
            summary.functions.append(_function_fact(module, stmt, None))
    for info in infos:
        for method in info.methods.values():
            summary.functions.append(_function_fact(module, method, info))
    return summary
