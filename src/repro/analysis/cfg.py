"""Per-function control-flow graphs for the flow-sensitive rules.

The graph is statement-granular: every ``ast.stmt`` of a function body
becomes one node, plus three synthetic nodes — ``ENTRY``, ``EXIT``
(normal completion: ``return`` or falling off the end) and
``RAISE_EXIT`` (an exception escaping the function). Edges carry a kind:

* ``NORMAL`` — the statement completed and control continues;
* ``EXCEPTION`` — the statement raised; the edge leads to the innermost
  enclosing handler, the enclosing ``finally``, or ``RAISE_EXIT``.

Exception edges are deliberately conservative: any statement that
contains a call, subscript, attribute access or explicit ``raise`` is
assumed able to raise. ``try``/``finally`` is modelled by routing every
abrupt exit (exception, ``return``, ``break``, ``continue``) through the
``finally`` body before it reaches its real target; the ``finally``
block is shared between the normal and exceptional routes, which merges
their states conservatively — sound for the may-leak (SRN009) and
must-precede (SRN008) analyses built on top.

``break``/``continue`` target the enclosing loop, ``while True`` gets no
fall-through exit edge, and ``with`` bodies nest normally (the context
manager's ``__exit__`` runs on both routes, which is exactly why
``with`` counts as "closed on every path" for resource tracking).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

NORMAL = "normal"
EXCEPTION = "exception"

ENTRY = 0
EXIT = 1
RAISE_EXIT = 2


@dataclass
class Node:
    """One CFG node: a statement, or a synthetic entry/exit."""

    node_id: int
    stmt: ast.stmt | None
    #: outgoing (target node id, edge kind) pairs.
    succs: list[tuple[int, str]] = field(default_factory=list)


@dataclass
class CFG:
    """Control-flow graph of one function body."""

    nodes: dict[int, Node]

    @property
    def entry(self) -> Node:
        return self.nodes[ENTRY]

    @property
    def exit(self) -> Node:
        return self.nodes[EXIT]

    @property
    def raise_exit(self) -> Node:
        return self.nodes[RAISE_EXIT]

    def statements(self) -> list[Node]:
        return [node for node in self.nodes.values() if node.stmt is not None]


def _may_raise(stmt: ast.stmt) -> bool:
    """Conservatively: can executing this statement raise?"""
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    for node in ast.walk(stmt):
        if isinstance(node, (ast.Call, ast.Subscript, ast.Attribute, ast.Await)):
            return True
        if isinstance(node, ast.BinOp):
            return True
    return False


class _Builder:
    """Structural CFG construction with loop and finally context stacks."""

    def __init__(self) -> None:
        self.nodes: dict[int, Node] = {
            ENTRY: Node(ENTRY, None),
            EXIT: Node(EXIT, None),
            RAISE_EXIT: Node(RAISE_EXIT, None),
        }
        self._next_id = RAISE_EXIT + 1
        #: innermost-first (break target, continue target) node ids.
        self.loops: list[tuple[int, int]] = []
        #: innermost-first finally entry node ids abrupt exits route through.
        self.finallies: list[int] = []
        #: innermost-first exception targets: list of handler-entry ids
        #: (may end at a finally entry or RAISE_EXIT).
        self.exc_targets: list[list[int]] = [[RAISE_EXIT]]

    def new_node(self, stmt: ast.stmt) -> Node:
        node = Node(self._next_id, stmt)
        self.nodes[self._next_id] = node
        self._next_id += 1
        return node

    def edge(self, src: int, dst: int, kind: str = NORMAL) -> None:
        pair = (dst, kind)
        node = self.nodes[src]
        if pair not in node.succs:
            node.succs.append(pair)

    # -- abrupt-exit routing --------------------------------------------------

    def abrupt_target(self, real_target: int, below: int) -> int:
        """Route an abrupt exit through finallies inner than ``below``.

        ``below`` is the length of the finally stack at the point the
        real target was established (0 for return/raise, the loop's
        depth for break/continue).
        """
        pending = self.finallies[below:]
        if pending:
            return pending[-1]  # innermost finally first; it chains onward
        return real_target

    def block(self, stmts: list[ast.stmt], preds: list[int]) -> list[int]:
        """Wire a statement list; returns the fall-through predecessors."""
        current = preds
        for stmt in stmts:
            current = self.statement(stmt, current)
            if not current:
                break  # unreachable code after return/raise/break
        return current

    def statement(self, stmt: ast.stmt, preds: list[int]) -> list[int]:
        node = self.new_node(stmt)
        for pred in preds:
            self.edge(pred, node.node_id)
        if _may_raise(stmt) and not isinstance(
            stmt, (ast.Try, ast.With, ast.AsyncWith)
        ):
            for target in self.exc_targets[-1]:
                self.edge(node.node_id, target, EXCEPTION)

        if isinstance(stmt, ast.Return):
            self.edge(node.node_id, self.abrupt_target(EXIT, 0))
            return []
        if isinstance(stmt, ast.Raise):
            for target in self.exc_targets[-1]:
                self.edge(node.node_id, target, EXCEPTION)
            return []
        if isinstance(stmt, ast.Break):
            if self.loops:
                break_target, _ = self.loops[-1]
                self.edge(node.node_id, self.abrupt_target(break_target, 0))
            return []
        if isinstance(stmt, ast.Continue):
            if self.loops:
                _, continue_target = self.loops[-1]
                self.edge(node.node_id, self.abrupt_target(continue_target, 0))
            return []
        if isinstance(stmt, ast.If):
            then_out = self.block(stmt.body, [node.node_id])
            else_out = self.block(stmt.orelse, [node.node_id])
            if not stmt.orelse:
                else_out = [node.node_id]
            return then_out + else_out
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, node)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            body_out = self.block(stmt.body, [node.node_id])
            return body_out
        if isinstance(stmt, ast.Try):
            return self._try(stmt, node)
        return [node.node_id]

    def _loop(
        self, stmt: ast.While | ast.For | ast.AsyncFor, node: Node
    ) -> list[int]:
        # ``node`` doubles as the loop header (condition / iterator).
        after_preds: list[int] = []
        infinite = (
            isinstance(stmt, ast.While)
            and isinstance(stmt.test, ast.Constant)
            and bool(stmt.test.value)
        )
        if not infinite:
            after_preds.append(node.node_id)
        # break edges land on the loop's *successor*; we don't know its
        # node yet, so collect them through a placeholder join node — the
        # header re-test serves as the continue target.
        join = Node(self._next_id, None)
        self.nodes[self._next_id] = join
        self._next_id += 1
        self.loops.append((join.node_id, node.node_id))
        body_out = self.block(stmt.body, [node.node_id])
        self.loops.pop()
        for out in body_out:
            self.edge(out, node.node_id)  # back edge
        else_out = self.block(stmt.orelse, after_preds) if stmt.orelse else after_preds
        return else_out + [join.node_id]

    def _try(self, stmt: ast.Try, node: Node) -> list[int]:
        has_finally = bool(stmt.finalbody)
        finally_entry: Node | None = None
        if has_finally:
            # The finally body is wired once and shared by every route.
            finally_entry = Node(self._next_id, None)
            self.nodes[self._next_id] = finally_entry
            self._next_id += 1
            self.finallies.append(finally_entry.node_id)

        handler_entries: list[int] = []
        handler_nodes: list[Node] = []
        for handler in stmt.handlers:
            entry = Node(self._next_id, None)
            self.nodes[self._next_id] = entry
            self._next_id += 1
            handler_entries.append(entry.node_id)
            handler_nodes.append(entry)
        body_exc_targets = handler_entries or (
            [finally_entry.node_id] if finally_entry is not None
            else list(self.exc_targets[-1])
        )

        self.exc_targets.append(body_exc_targets)
        body_out = self.block(stmt.body, [node.node_id])
        self.exc_targets.pop()
        else_out = (
            self.block(stmt.orelse, body_out) if stmt.orelse else body_out
        )

        handler_out: list[int] = []
        for entry in handler_nodes:
            handler_out.extend(
                self.block(
                    stmt.handlers[handler_nodes.index(entry)].body,
                    [entry.node_id],
                )
            )

        if finally_entry is not None:
            self.finallies.pop()
            for out in else_out + handler_out:
                self.edge(out, finally_entry.node_id)
            # A handler itself raising, or no handler matching, reaches
            # the finally too (already routed via body_exc_targets when
            # there are no handlers).
            for entry_id in handler_entries:
                self.edge(entry_id, finally_entry.node_id, EXCEPTION)
            final_out = self.block(stmt.finalbody, [finally_entry.node_id])
            # The shared finally block continues to the normal successor
            # *and* re-raises toward the enclosing target: both routes
            # pass through the same nodes, conservatively merging state.
            outer = self.abrupt_target(RAISE_EXIT, 0) if not self.finallies else (
                self.finallies[-1]
            )
            if not self.finallies:
                outer_targets = list(self.exc_targets[-1])
            else:
                outer_targets = [outer]
            for out in final_out:
                for target in outer_targets:
                    self.edge(out, target, EXCEPTION)
            return final_out
        return else_out + handler_out


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Build the statement-level CFG of one function body."""
    builder = _Builder()
    out = builder.block(func.body, [ENTRY])
    for pred in out:
        builder.edge(pred, EXIT)
    return CFG(nodes=builder.nodes)
