"""serenade-lint: project-invariant static analysis for this repository.

The serving claims of the paper (p90 < 7 ms under a 50 ms SLA) rest on
invariants the code can only keep by discipline: all timing flows
through injectable clocks, deadlines propagate through every stage,
thread-shared state stays under its declared lock. ``repro.analysis``
is an AST-based rule engine that enforces those invariants *before*
code runs:

* ``python -m repro.analysis src/repro`` — CLI for CI and the pre-PR
  checklist (text or ``--format json`` output, exit 1 on findings);
* :func:`analyze_paths` — the pytest-importable API, used by
  ``tests/analysis`` to keep the tree clean forever.

Rules (see ``docs/static-analysis.md`` for the catalog):

========  ==============================================================
SRN001    clock hygiene — no direct ``time.*``/``datetime.now``/
          module-level ``random.*`` calls outside the injected seams
SRN002    float equality — no ``==``/``!=`` on score-typed expressions
          in ranking code; use :mod:`repro.core.floatcmp`
SRN003    deadline propagation — a function accepting a ``Deadline``
          must check or forward it, never construct a fresh one
SRN004    lock discipline — ``@guarded_by`` attributes only touched
          under their lock; lock-acquisition graph must be acyclic
SRN005    serving-path exception hygiene — no broad ``except`` that
          swallows without counting a metric or logging
SRN000    meta — malformed/unused suppressions, unused baseline
          entries, unparsable files
========  ==============================================================

Findings are silenced inline with ``# serenade: ignore[SRN00x] reason``
(the reason is mandatory) or grandfathered in the committed baseline
file; unused suppressions and baseline entries are themselves findings,
so the baseline can only shrink.
"""

from __future__ import annotations

from repro.analysis.baseline import Baseline
from repro.analysis.config import AnalysisConfig, load_config
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.engine import AnalysisReport, analyze_paths
from repro.analysis.registry import all_rules, get_rule

# Importing the rules package registers every rule.
from repro.analysis import rules as _rules  # noqa: F401

__all__ = [
    "AnalysisConfig",
    "AnalysisReport",
    "Baseline",
    "Diagnostic",
    "all_rules",
    "analyze_paths",
    "get_rule",
    "load_config",
]
