"""Inline suppressions: ``# serenade: ignore[SRN00x] reason``.

A suppression silences findings of the listed rules **on its own line**
and must carry a non-empty reason — a suppression without a reason is
itself a finding (SRN000), as is a suppression that silenced nothing.
That pair of meta-rules is what keeps the suppression count honest: the
set can only shrink unless someone writes down *why* it grew.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.analysis.diagnostics import META_RULE, Diagnostic
from repro.analysis.registry import RULE_ID_RE

#: matches the marker inside a COMMENT token; the marker must be a real
#: comment — the same text inside a docstring or string literal is prose.
SUPPRESSION_RE = re.compile(
    r"#\s*serenade:\s*ignore\s*(?:\[(?P<rules>[^\]]*)\])?(?P<reason>[^#]*)"
)


@dataclass
class Suppression:
    """One inline suppression comment."""

    line: int
    rules: tuple[str, ...]
    reason: str
    #: rules that actually silenced a finding (filled by the engine).
    used_rules: set[str] = field(default_factory=set)

    def covers(self, rule_id: str) -> bool:
        return rule_id in self.rules


def scan_suppressions(
    relpath: str, source_lines: list[str]
) -> tuple[list[Suppression], list[Diagnostic]]:
    """Find suppressions and malformed-suppression findings in a file."""
    suppressions: list[Suppression] = []
    problems: list[Diagnostic] = []
    for lineno, column, text in _iter_comments(source_lines):
        if "serenade:" not in text:
            continue
        match = SUPPRESSION_RE.search(text)
        if match is None:
            continue
        column = column + match.start()
        rules_text = match.group("rules")
        reason = (match.group("reason") or "").strip()
        if rules_text is None:
            problems.append(
                Diagnostic(
                    relpath,
                    lineno,
                    column,
                    META_RULE,
                    "suppression must name the rules it silences: "
                    "`# serenade: ignore[SRN00x] reason`",
                )
            )
            continue
        rules = tuple(
            rule.strip() for rule in rules_text.split(",") if rule.strip()
        )
        bad = [rule for rule in rules if not RULE_ID_RE.match(rule)]
        if not rules or bad:
            problems.append(
                Diagnostic(
                    relpath,
                    lineno,
                    column,
                    META_RULE,
                    f"suppression names invalid rule ids {bad or '(none)'}; "
                    "expected SRNnnn",
                )
            )
            continue
        if META_RULE in rules:
            problems.append(
                Diagnostic(
                    relpath,
                    lineno,
                    column,
                    META_RULE,
                    "SRN000 meta findings cannot be suppressed",
                )
            )
            continue
        if not reason:
            problems.append(
                Diagnostic(
                    relpath,
                    lineno,
                    column,
                    META_RULE,
                    "suppression requires a reason: "
                    "`# serenade: ignore[%s] <why this is safe>`"
                    % ",".join(rules),
                )
            )
            continue
        suppressions.append(Suppression(lineno, rules, reason))
    return suppressions, problems


def _iter_comments(source_lines: list[str]) -> list[tuple[int, int, str]]:
    """(line, column, text) for each comment token in the source."""
    source = "\n".join(source_lines) + "\n"
    comments: list[tuple[int, int, str]] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.start[1], token.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Unparsable tail; the engine reports the syntax error separately.
        pass
    return comments


def unused_suppression_findings(
    relpath: str, suppressions: list[Suppression]
) -> list[Diagnostic]:
    """SRN000 findings for suppressions (or listed rules) that did nothing."""
    findings = []
    for suppression in suppressions:
        unused = [
            rule
            for rule in suppression.rules
            if rule not in suppression.used_rules
        ]
        if unused:
            findings.append(
                Diagnostic(
                    relpath,
                    suppression.line,
                    0,
                    META_RULE,
                    "unused suppression for %s: no matching finding on this "
                    "line — remove it" % ",".join(unused),
                )
            )
    return findings
