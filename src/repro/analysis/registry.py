"""Rule registry: how rules declare themselves to the engine.

A rule is a class with ``rule_id``/``name``/``rationale`` attributes and
a ``check_module`` method; rules that need a whole-project view (the
call graph, the lock-acquisition graph) also implement ``project``,
which receives the cached-or-fresh module summaries and is recomputed
every run. Registration is a decorator so adding a rule is: write the
class, decorate it, import the module from :mod:`repro.analysis.rules`.

The legacy ``finalize`` hook (parsed modules instead of summaries) still
exists but only sees the modules parsed *this* run — under the warm
cache that is a subset of the project, so project-wide logic belongs in
``project``.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, Iterable, Iterator, Protocol, TypeVar

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.analysis.config import AnalysisConfig
    from repro.analysis.diagnostics import Diagnostic
    from repro.analysis.engine import ParsedModule
    from repro.analysis.summaries import ModuleSummary

RULE_ID_RE = re.compile(r"^SRN\d{3}$")


class Rule(Protocol):
    """The interface the engine drives."""

    rule_id: str
    name: str
    rationale: str

    def check_module(
        self, module: "ParsedModule", config: "AnalysisConfig"
    ) -> Iterator["Diagnostic"]:
        """Yield findings for one parsed module."""
        ...  # pragma: no cover - protocol

    def project(
        self, summaries: "list[ModuleSummary]", config: "AnalysisConfig"
    ) -> Iterator["Diagnostic"]:
        """Yield interprocedural findings from module summaries (optional)."""
        ...  # pragma: no cover - protocol

    def finalize(
        self, modules: "Iterable[ParsedModule]", config: "AnalysisConfig"
    ) -> Iterator["Diagnostic"]:
        """Legacy whole-project hook; sees only freshly parsed modules."""
        ...  # pragma: no cover - protocol


_RULES: dict[str, type] = {}

_RuleT = TypeVar("_RuleT", bound=type)


def register(cls: _RuleT) -> _RuleT:
    """Class decorator adding a rule to the registry."""
    rule_id = getattr(cls, "rule_id", "")
    if not RULE_ID_RE.match(rule_id):
        raise ValueError(f"rule id {rule_id!r} does not match SRNnnn")
    if rule_id in _RULES:
        raise ValueError(f"rule {rule_id} registered twice")
    _RULES[rule_id] = cls
    return cls


def all_rules() -> list[type]:
    """Registered rule classes, ordered by rule id."""
    return [cls for _, cls in sorted(_RULES.items())]


def get_rule(rule_id: str) -> type:
    try:
        return _RULES[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown rule {rule_id!r}; known: {sorted(_RULES)}"
        ) from None


def known_rule_ids() -> set[str]:
    return set(_RULES)
