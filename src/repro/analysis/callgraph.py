"""The project call graph, built from module summaries.

Nodes are ``(relpath, qualname)`` function references; edges come from
the :class:`~repro.analysis.summaries.CallFact` records, resolved
alias-aware:

* ``self.m()`` — a method of the caller's own class;
* ``self.attr.m()`` — through the class's ``attr_types`` map (the
  ``self.x = ClassName(...)`` / annotated-``__init__``-param inference
  SRN004 introduced);
* ``f()`` / ``mod.f()`` / ``Class.method()`` — through the import-alias
  map against every module's dotted import path.

Unresolvable calls (dynamic receivers, stdlib, third-party) simply have
no edge — every analysis on top is designed so a missing edge can hide a
finding but never invent one.

:func:`strongly_connected` (Tarjan, iterative, deterministic) moved here
from SRN004, which now imports it: the lock-acquisition graph and the
call graph share their cycle machinery.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.summaries import (
    BLOCKING_NAMES,
    CallFact,
    ClassFact,
    FunctionFact,
    ModuleSummary,
)

FunctionRef = tuple[str, str]  # (relpath, qualname)


class ProjectIndex:
    """Symbol + call-graph index over a set of module summaries."""

    def __init__(self, summaries: list[ModuleSummary]) -> None:
        self.summaries = summaries
        #: class name -> (fact, relpath); later definitions win, matching
        #: the original SRN004 global-by-name resolution.
        self.classes: dict[str, tuple[ClassFact, str]] = {}
        #: (relpath, qualname) -> fact.
        self.functions: dict[FunctionRef, FunctionFact] = {}
        #: (class name, method name) -> (relpath, fact).
        self.methods: dict[tuple[str, str], tuple[str, FunctionFact]] = {}
        #: dotted module path -> summary.
        self.modules: dict[str, ModuleSummary] = {}
        for summary in summaries:
            if summary.module_name is not None:
                self.modules[summary.module_name] = summary
            for cls in summary.classes:
                self.classes[cls.name] = (cls, summary.relpath)
            for func in summary.functions:
                ref = (summary.relpath, func.qualname)
                self.functions[ref] = func
                if func.cls is not None:
                    self.methods[(func.cls, func.name)] = (
                        summary.relpath,
                        func,
                    )

    # -- resolution -----------------------------------------------------------

    def resolve(
        self, summary: ModuleSummary, caller: FunctionFact, call: CallFact
    ) -> FunctionRef | None:
        """The project function a call site targets, if determinable."""
        if call.kind == "self":
            if caller.cls is None:
                return None
            ref = (summary.relpath, f"{caller.cls}.{call.method}")
            if ref in self.functions:
                return ref
            return None
        if call.kind == "attr":
            if caller.cls is None or call.attr is None:
                return None
            entry = self.classes.get(caller.cls)
            if entry is None:
                return None
            type_name = entry[0].attr_types.get(call.attr)
            if type_name is None:
                return None
            target = self.methods.get((type_name, call.method))
            if target is None:
                return None
            return (target[0], target[1].qualname)
        if call.dotted is None:
            return None
        return self._resolve_dotted(summary, call.dotted)

    def _resolve_dotted(
        self, summary: ModuleSummary, dotted: str
    ) -> FunctionRef | None:
        if "." not in dotted:
            # bare name: a function of the caller's own module.
            ref = (summary.relpath, dotted)
            if ref in self.functions:
                return ref
            return None
        head, leaf = dotted.rsplit(".", 1)
        # module.function — the module's dotted path is the prefix.
        module = self.modules.get(head)
        if module is not None:
            ref = (module.relpath, leaf)
            if ref in self.functions:
                return ref
        # Class.method / pkg.Class.method — penultimate segment names a
        # known class (classes are registered by re-exported name, so
        # ``from repro.streaming import PartitionedLog`` still resolves).
        cls_name = head.rsplit(".", 1)[-1]
        target = self.methods.get((cls_name, leaf))
        if target is not None:
            return (target[0], target[1].qualname)
        return None

    # -- call graph -----------------------------------------------------------

    def edges(self) -> Iterator[tuple[FunctionRef, FunctionRef, CallFact]]:
        """Every resolved (caller, callee, site) edge, deterministic order."""
        for summary in self.summaries:
            for func in summary.functions:
                caller = (summary.relpath, func.qualname)
                for call in func.calls:
                    callee = self.resolve(summary, func, call)
                    if callee is not None:
                        yield caller, callee, call

    def callees(self) -> dict[FunctionRef, list[tuple[FunctionRef, CallFact]]]:
        out: dict[FunctionRef, list[tuple[FunctionRef, CallFact]]] = {}
        for caller, callee, site in self.edges():
            out.setdefault(caller, []).append((callee, site))
        return out

    def may_block(self) -> set[FunctionRef]:
        """Functions that can reach a blocking operation, transitively.

        Seeds are functions containing a call whose leaf name is in
        :data:`~repro.analysis.summaries.BLOCKING_NAMES`; blocking-ness
        then propagates callee → caller over the resolved call graph to
        fixpoint.
        """
        blocking: set[FunctionRef] = {
            ref
            for ref, func in self.functions.items()
            if any(call.method in BLOCKING_NAMES for call in func.calls)
        }
        callers: dict[FunctionRef, set[FunctionRef]] = {}
        for caller, callee, _ in self.edges():
            callers.setdefault(callee, set()).add(caller)
        frontier = sorted(blocking)
        while frontier:
            ref = frontier.pop()
            for caller in sorted(callers.get(ref, ())):
                if caller not in blocking:
                    blocking.add(caller)
                    frontier.append(caller)
        return blocking


def strongly_connected(graph: dict[str, set[str]]) -> list[set[str]]:
    """Tarjan's SCC, iterative, deterministic order."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    result: list[set[str]] = []
    counter = 0

    for start in sorted(graph):
        if start in index:
            continue
        work: list[tuple[str, Iterator[str]]] = [
            (start, iter(sorted(graph[start])))
        ]
        index[start] = lowlink[start] = counter
        counter += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in index:
                    index[child] = lowlink[child] = counter
                    counter += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(sorted(graph[child]))))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                result.append(component)
    return result
