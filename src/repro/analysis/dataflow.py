"""The abstract-interpretation core: forward dataflow over a CFG.

A rule instantiates :class:`ForwardAnalysis` with three ingredients:

* ``initial`` — the fact at function entry;
* ``join(a, b)`` — the lattice join (must be commutative, associative,
  idempotent and monotone for the worklist to terminate);
* ``transfer(stmt, fact)`` — the effect of completing one statement.

Exception edges propagate the statement's *input* fact by default: a
statement that raised is assumed not to have completed its effect, which
is the conservative direction for both may-leak (a ``close()`` that
raised first did not close) and must-precede (a call that raised did not
happen). Override ``exception_transfer`` for other semantics.

Facts must be immutable values with ``==`` (frozensets, tuples, frozen
dataclasses, dicts are copied by the analysis' own transfer); the solver
iterates to fixpoint with a worklist and is deterministic — nodes are
processed in ascending id order.
"""

from __future__ import annotations

import ast
from typing import Callable, Generic, TypeVar

from repro.analysis.cfg import CFG, ENTRY, EXCEPTION, Node

Fact = TypeVar("Fact")


class ForwardAnalysis(Generic[Fact]):
    """A forward may/must dataflow problem over one function CFG."""

    def __init__(
        self,
        initial: Fact,
        join: Callable[[Fact, Fact], Fact],
        transfer: Callable[[ast.stmt, Fact], Fact],
        exception_transfer: Callable[[ast.stmt, Fact], Fact] | None = None,
    ) -> None:
        self.initial = initial
        self.join = join
        self.transfer = transfer
        self.exception_transfer = exception_transfer or (
            lambda stmt, fact: fact
        )

    def solve(self, cfg: CFG) -> dict[int, Fact]:
        """Fact *entering* each node, at fixpoint.

        Unreachable nodes are absent from the result. Synthetic nodes
        (entry/exits/joins) have identity transfer.
        """
        facts: dict[int, Fact] = {ENTRY: self.initial}
        worklist: list[int] = [ENTRY]
        in_worklist = {ENTRY}
        while worklist:
            worklist.sort(reverse=True)
            node_id = worklist.pop()
            in_worklist.discard(node_id)
            node = cfg.nodes[node_id]
            incoming = facts[node_id]
            for succ_id, kind in node.succs:
                out = self._edge_fact(node, incoming, kind)
                if succ_id not in facts:
                    facts[succ_id] = out
                    changed = True
                else:
                    merged = self.join(facts[succ_id], out)
                    changed = merged != facts[succ_id]
                    facts[succ_id] = merged
                if changed and succ_id not in in_worklist:
                    worklist.append(succ_id)
                    in_worklist.add(succ_id)
        return facts

    def _edge_fact(self, node: Node, incoming: Fact, kind: str) -> Fact:
        if node.stmt is None:
            return incoming
        if kind == EXCEPTION:
            return self.exception_transfer(node.stmt, incoming)
        return self.transfer(node.stmt, incoming)
