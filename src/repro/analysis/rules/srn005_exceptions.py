"""SRN005: serving-path exception hygiene.

A broad ``except Exception:`` on the serving path is sometimes the
right call — degrade instead of 500 — but *silently* swallowing is
never right: every broad handler must re-raise, log, or bump a metric
so the failure is visible to monitoring. A handler that does none of
those turns an outage into a mystery.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import register

if TYPE_CHECKING:
    from repro.analysis.config import AnalysisConfig
    from repro.analysis.engine import ParsedModule

_BROAD_NAMES = frozenset({"Exception", "BaseException"})

#: attribute names whose call counts as "made the failure visible".
_EVIDENCE_CALLS = frozenset(
    {
        "warning",
        "error",
        "exception",
        "critical",
        "info",
        "debug",
        "log",
        "increment",
        "inc",
        "observe",
        "record",
        "record_failure",
        "record_fallback",
        "add_metric",
        "set",
    }
)


def _is_broad(handler: ast.ExceptHandler) -> bool:
    exc = handler.type
    if exc is None:
        return True  # bare except
    names: list[ast.expr] = (
        list(exc.elts) if isinstance(exc, ast.Tuple) else [exc]
    )
    for name in names:
        if isinstance(name, ast.Name) and name.id in _BROAD_NAMES:
            return True
        if isinstance(name, ast.Attribute) and name.attr in _BROAD_NAMES:
            return True
    return False


def _has_evidence(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.AugAssign):
            return True  # counter bump, e.g. self.shed_count += 1
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in _EVIDENCE_CALLS:
                return True
            if isinstance(func, ast.Name) and func.id in _EVIDENCE_CALLS:
                return True
    return False


@register
class ExceptionHygieneRule:
    rule_id = "SRN005"
    name = "exception-hygiene"
    rationale = (
        "Broad except handlers on the serving path must leave evidence — "
        "a re-raise, a log line, or a metric bump — or failures degrade "
        "silently and monitoring sees a healthy service."
    )

    def check_module(
        self, module: "ParsedModule", config: "AnalysisConfig"
    ) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node):
                continue
            if _has_evidence(node):
                continue
            caught = "bare except" if node.type is None else "broad except"
            yield Diagnostic(
                module.relpath,
                node.lineno,
                node.col_offset,
                self.rule_id,
                f"{caught} swallows the failure without logging, metrics, "
                "or re-raise; add logger.warning(..., exc_info=True) or a "
                "counter bump so monitoring can see it",
            )

    def finalize(
        self, modules: "Iterable[ParsedModule]", config: "AnalysisConfig"
    ) -> Iterator[Diagnostic]:
        return iter(())
