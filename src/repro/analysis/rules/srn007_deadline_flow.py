"""SRN007: interprocedural deadline propagation.

SRN003 checks deadline hygiene *inside* one function (loops re-check,
``.result()`` carries a timeout). What it cannot see is a deadline
silently dropped at a call boundary: a serving entry point receives a
:class:`~repro.core.deadline.Deadline`, calls a helper that also accepts
one and transitively blocks — but doesn't pass it. The budget the client
negotiated evaporates one frame down the stack, and the tail-latency SLA
is lost where no intra-function rule can see it.

This rule runs over the project call graph
(:class:`~repro.analysis.callgraph.ProjectIndex`): for every function
that takes a deadline, every resolved call edge to a project function
that (a) also accepts a deadline and (b) may transitively reach a
blocking operation must reference the caller's deadline in some
argument. Unresolvable calls (stdlib, dynamic receivers) produce no
edge and no finding — the rule under-approximates rather than guesses.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.analysis.callgraph import ProjectIndex
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import register

if TYPE_CHECKING:
    from repro.analysis.config import AnalysisConfig
    from repro.analysis.engine import ParsedModule
    from repro.analysis.summaries import ModuleSummary


@register
class DeadlineFlowRule:
    rule_id = "SRN007"
    name = "deadline-flow"
    rationale = (
        "A deadline that stops flowing at a call boundary silently "
        "un-bounds every blocking operation below it; the SLA is only as "
        "good as the deepest frame that still knows the budget."
    )

    def check_module(
        self, module: "ParsedModule", config: "AnalysisConfig"
    ) -> Iterator[Diagnostic]:
        return iter(())

    def project(
        self, summaries: "list[ModuleSummary]", config: "AnalysisConfig"
    ) -> Iterator[Diagnostic]:
        index = ProjectIndex(summaries)
        blocking = index.may_block()
        for summary in summaries:
            for func in summary.functions:
                if func.deadline_param is None:
                    continue
                for call in func.calls:
                    if call.passes_deadline:
                        continue
                    callee_ref = index.resolve(summary, func, call)
                    if callee_ref is None or callee_ref not in blocking:
                        continue
                    callee = index.functions[callee_ref]
                    if callee.deadline_param is None:
                        continue
                    yield Diagnostic(
                        summary.relpath,
                        call.line,
                        call.col,
                        self.rule_id,
                        f"{func.qualname} holds deadline "
                        f"{func.deadline_param!r} but calls blocking "
                        f"{callee.qualname} (which accepts "
                        f"{callee.deadline_param!r}) without passing it; "
                        "the budget stops flowing here",
                    )
