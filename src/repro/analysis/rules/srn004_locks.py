"""SRN004: lock discipline and deadlock detection.

Classes declare which lock guards which attributes with the runtime
decorators in :mod:`repro.core.locking`::

    @guarded_by("_lock", "_entries", "hits", "misses")
    class LRUResultCache: ...

        @holds_lock("_lock")
        def _evict(self) -> None: ...   # caller must already hold _lock

The rule then checks, statically:

* accesses to a guarded attribute happen under ``with self.<lock>:``, in
  ``__init__``/``__post_init__``, or in an ``@holds_lock`` method;
* writes to *undeclared* attributes outside ``__init__`` in a class that
  declares guards (mutable state must be declared one way or the other);
* ``@holds_lock`` methods are only called while the lock is held;
* project-wide: a lock-acquisition graph (nodes ``Class.lock``, edges
  "acquired while holding") — a cycle is a potential deadlock, and a
  plain ``Lock`` re-acquired while held is a guaranteed one.

The project-wide phase runs over the cached
:class:`~repro.analysis.summaries.ModuleSummary` facts (acquire sites
with held-context, alias-resolved call sites), so a warm cache rebuilds
the acquisition graph without re-parsing anything; the class collector
and SCC machinery this rule originally owned now live in
:mod:`repro.analysis.symbols` and :mod:`repro.analysis.callgraph`,
shared with the other interprocedural rules.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.analysis.callgraph import strongly_connected
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import register
from repro.analysis.summaries import CallFact, ClassFact, FunctionFact
from repro.analysis.symbols import INIT_METHODS, ClassInfo, collect_class_info, self_attr

if TYPE_CHECKING:
    from repro.analysis.config import AnalysisConfig
    from repro.analysis.engine import ParsedModule
    from repro.analysis.summaries import ModuleSummary

#: (acquisition site file, line) — dedup/reporting key for graph edges.
_Site = tuple[str, int]


@register
class LockDisciplineRule:
    rule_id = "SRN004"
    name = "lock-discipline"
    rationale = (
        "Undeclared shared state and inconsistent lock ordering are the "
        "two concurrency failure modes the serving path cannot afford; "
        "@guarded_by makes the protocol checkable and the acquisition "
        "graph makes ordering cycles visible before they deadlock."
    )

    def check_module(
        self, module: "ParsedModule", config: "AnalysisConfig"
    ) -> Iterator[Diagnostic]:
        for info in collect_class_info(module):
            if not info.guarded and not info.holds:
                continue
            yield from self._check_class(module, info)

    # -- intra-class checks ---------------------------------------------------

    def _check_class(
        self, module: "ParsedModule", info: ClassInfo
    ) -> Iterator[Diagnostic]:
        for lock_attr in set(info.guarded.values()):
            if lock_attr not in info.all_locks:
                yield Diagnostic(
                    info.relpath,
                    info.node.lineno,
                    info.node.col_offset,
                    self.rule_id,
                    f"@guarded_by names {lock_attr!r} but {info.name} never "
                    "assigns a threading.Lock/RLock to that attribute",
                )
        for method_name, method in info.methods.items():
            base_held = set(info.holds.get(method_name, ()))
            yield from self._walk_method(module, info, method_name, method.body, base_held)

    def _walk_method(
        self,
        module: "ParsedModule",
        info: ClassInfo,
        method_name: str,
        stmts: list[ast.stmt],
        held: set[str],
    ) -> Iterator[Diagnostic]:
        for stmt in stmts:
            yield from self._walk_node(module, info, method_name, stmt, held)

    def _walk_node(
        self,
        module: "ParsedModule",
        info: ClassInfo,
        method_name: str,
        node: ast.AST,
        held: set[str],
    ) -> Iterator[Diagnostic]:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = set(held)
            for item in node.items:
                attr = self_attr(item.context_expr)
                if attr is not None and attr in info.all_locks:
                    acquired = acquired | {attr}
                yield from self._check_expr(
                    module, info, method_name, item.context_expr, held
                )
            for stmt in node.body:
                yield from self._walk_node(
                    module, info, method_name, stmt, acquired
                )
            return
        yield from self._check_expr(module, info, method_name, node, held)
        for child in ast.iter_child_nodes(node):
            yield from self._walk_node(module, info, method_name, child, held)

    def _check_expr(
        self,
        module: "ParsedModule",
        info: ClassInfo,
        method_name: str,
        node: ast.AST,
        held: set[str],
    ) -> Iterator[Diagnostic]:
        in_init = method_name in INIT_METHODS
        attr = self_attr(node)
        if attr is not None and isinstance(node, ast.Attribute):
            lock = info.guarded.get(attr)
            if lock is not None and not in_init and lock not in held:
                yield Diagnostic(
                    info.relpath,
                    node.lineno,
                    node.col_offset,
                    self.rule_id,
                    f"access to {info.name}.{attr} guarded by {lock!r} "
                    f"outside `with self.{lock}:` (and {method_name!r} is "
                    "not @holds_lock)",
                )
            elif (
                lock is None
                and info.guarded
                and isinstance(node.ctx, ast.Store)
                and not in_init
                and attr not in info.all_locks
            ):
                yield Diagnostic(
                    info.relpath,
                    node.lineno,
                    node.col_offset,
                    self.rule_id,
                    f"write to undeclared attribute {info.name}.{attr} "
                    "outside __init__; declare it in @guarded_by or assign "
                    "it only during construction",
                )
        if isinstance(node, ast.Call):
            callee = self_attr(node.func)
            if callee is not None and callee in info.holds and not in_init:
                missing = info.holds[callee] - held
                if missing:
                    yield Diagnostic(
                        info.relpath,
                        node.lineno,
                        node.col_offset,
                        self.rule_id,
                        f"call to @holds_lock method {info.name}.{callee} "
                        f"without holding {sorted(missing)!r}",
                    )

    # -- project-wide lock graph (from summaries) -----------------------------

    def project(
        self, summaries: "list[ModuleSummary]", config: "AnalysisConfig"
    ) -> Iterator[Diagnostic]:
        #: class name -> (relpath, fact); later definitions win the name
        #: but keep their first insertion position (dict semantics), which
        #: keeps report order stable.
        classes: dict[str, tuple[str, ClassFact]] = {}
        functions: dict[tuple[str, str], FunctionFact] = {}
        for summary in summaries:
            for cls in summary.classes:
                classes[cls.name] = (summary.relpath, cls)
            for func in summary.functions:
                functions[(summary.relpath, func.qualname)] = func

        def method_fact(
            relpath: str, cls_name: str, method: str
        ) -> FunctionFact | None:
            return functions.get((relpath, f"{cls_name}.{method}"))

        def resolve(cls: ClassFact, call: CallFact) -> tuple[str, str] | None:
            """``self.m()`` / ``self.attr.m()`` -> (class, method)."""
            if call.kind == "self":
                if call.method in cls.methods:
                    return (cls.name, call.method)
                return None
            if call.kind == "attr" and call.attr is not None:
                type_name = cls.attr_types.get(call.attr)
                if type_name is not None and type_name in classes:
                    if call.method in classes[type_name][1].methods:
                        return (type_name, call.method)
            return None

        # What each (class, method) acquires directly, plus call edges for
        # the transitive fixpoint.
        direct: dict[tuple[str, str], set[str]] = {}
        calls: dict[tuple[str, str], list[tuple[str, str]]] = {}
        edges: dict[tuple[str, str], _Site] = {}
        self_edges: dict[str, _Site] = {}

        for cls_name, (relpath, cls) in classes.items():
            for method_name in cls.methods:
                fact = method_fact(relpath, cls_name, method_name)
                if fact is None:
                    continue
                key = (cls_name, method_name)
                direct[key] = set()
                calls[key] = []
                for acquire in fact.acquires:
                    node_id = cls.lock_node(acquire.lock)
                    direct[key].add(node_id)
                    site = (relpath, acquire.line)
                    if acquire.lock in acquire.held:
                        self_edges.setdefault(node_id, site)
                    for holder in sorted(acquire.held):
                        edge = (cls.lock_node(holder), node_id)
                        if edge[0] != edge[1]:
                            edges.setdefault(edge, site)
                for call in fact.calls:
                    callee = resolve(cls, call)
                    if callee is not None:
                        calls[key].append(callee)

        acquires = dict(direct)
        changed = True
        while changed:
            changed = False
            for key, callees in calls.items():
                for callee in callees:
                    extra = acquires.get(callee, set()) - acquires[key]
                    if extra:
                        acquires[key] |= extra
                        changed = True

        # Call-mediated edges: holding H, calling something that acquires L.
        for cls_name, (relpath, cls) in classes.items():
            rlocks = set(cls.rlock_attrs)
            for method_name in cls.methods:
                fact = method_fact(relpath, cls_name, method_name)
                if fact is None:
                    continue
                for call in fact.calls:
                    if not call.held:
                        continue
                    callee = resolve(cls, call)
                    if callee is None:
                        continue
                    site = (relpath, call.line)
                    for target in sorted(acquires.get(callee, set())):
                        for holder in call.held:
                            holder_id = cls.lock_node(holder)
                            if holder_id == target:
                                # Re-entry through a call chain; RLocks are fine.
                                if holder not in rlocks:
                                    self_edges.setdefault(target, site)
                            else:
                                edges.setdefault((holder_id, target), site)

        yield from self._report_self_edges(classes, self_edges)
        yield from self._report_cycles(edges)

    def _report_self_edges(
        self,
        classes: dict[str, tuple[str, ClassFact]],
        self_edges: dict[str, _Site],
    ) -> Iterator[Diagnostic]:
        for node_id, (relpath, lineno) in sorted(self_edges.items()):
            class_name, _, lock_attr = node_id.partition(".")
            entry = classes.get(class_name)
            if entry is not None and lock_attr in entry[1].rlock_attrs:
                continue  # RLock re-entry is legal
            yield Diagnostic(
                relpath,
                lineno,
                0,
                self.rule_id,
                f"lock {node_id} re-acquired while already held; "
                "threading.Lock is not reentrant — this deadlocks",
            )

    def _report_cycles(
        self, edges: dict[tuple[str, str], _Site]
    ) -> Iterator[Diagnostic]:
        graph: dict[str, set[str]] = {}
        for src, dst in edges:
            graph.setdefault(src, set()).add(dst)
            graph.setdefault(dst, set())
        for component in strongly_connected(graph):
            if len(component) < 2:
                continue
            members = sorted(component)
            sites = sorted(
                site
                for edge, site in edges.items()
                if edge[0] in component and edge[1] in component
            )
            relpath, lineno = sites[0] if sites else ("<unknown>", 0)
            yield Diagnostic(
                relpath,
                lineno,
                0,
                self.rule_id,
                "lock-ordering cycle (potential deadlock): "
                + " -> ".join([*members, members[0]]),
            )
