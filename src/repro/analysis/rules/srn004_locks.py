"""SRN004: lock discipline and deadlock detection.

Classes declare which lock guards which attributes with the runtime
decorators in :mod:`repro.core.locking`::

    @guarded_by("_lock", "_entries", "hits", "misses")
    class LRUResultCache: ...

        @holds_lock("_lock")
        def _evict(self) -> None: ...   # caller must already hold _lock

The rule then checks, statically:

* accesses to a guarded attribute happen under ``with self.<lock>:``, in
  ``__init__``/``__post_init__``, or in an ``@holds_lock`` method;
* writes to *undeclared* attributes outside ``__init__`` in a class that
  declares guards (mutable state must be declared one way or the other);
* ``@holds_lock`` methods are only called while the lock is held;
* project-wide: a lock-acquisition graph (nodes ``Class.lock``, edges
  "acquired while holding") — a cycle is a potential deadlock, and a
  plain ``Lock`` re-acquired while held is a guaranteed one.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import register

if TYPE_CHECKING:
    from repro.analysis.config import AnalysisConfig
    from repro.analysis.engine import ParsedModule

_LOCK_CONSTRUCTORS = {
    "threading.Lock": "lock",
    "threading.RLock": "rlock",
    "threading.Condition": "rlock",  # Condition wraps an RLock by default
}

_INIT_METHODS = frozenset({"__init__", "__post_init__", "__enter__"})

_FunctionDef = (ast.FunctionDef, ast.AsyncFunctionDef)


@dataclass
class ClassInfo:
    """Everything SRN004 needs to know about one class."""

    name: str
    relpath: str
    node: ast.ClassDef
    lock_attrs: set[str] = field(default_factory=set)
    rlock_attrs: set[str] = field(default_factory=set)
    #: attribute -> lock attribute guarding it (from @guarded_by).
    guarded: dict[str, str] = field(default_factory=dict)
    #: method name -> lock attrs the caller must hold (from @holds_lock).
    holds: dict[str, set[str]] = field(default_factory=dict)
    methods: dict[str, ast.FunctionDef] = field(default_factory=dict)
    #: attribute -> class name, inferred from ``self.x = ClassName(...)``.
    attr_types: dict[str, str] = field(default_factory=dict)

    @property
    def all_locks(self) -> set[str]:
        return self.lock_attrs | self.rlock_attrs

    def lock_node(self, lock_attr: str) -> str:
        return f"{self.name}.{lock_attr}"


def _self_attr(node: ast.AST) -> str | None:
    """``self.X`` -> ``"X"``; anything else -> ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _string_args(call: ast.Call) -> list[str]:
    return [
        arg.value
        for arg in call.args
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str)
    ]


def _decorator_call(node: ast.expr, name: str) -> ast.Call | None:
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id == name:
            return node
        if isinstance(func, ast.Attribute) and func.attr == name:
            return node
    return None


def collect_class_info(module: "ParsedModule") -> list[ClassInfo]:
    infos: list[ClassInfo] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        info = ClassInfo(name=node.name, relpath=module.relpath, node=node)
        for decorator in node.decorator_list:
            call = _decorator_call(decorator, "guarded_by")
            if call is not None:
                names = _string_args(call)
                if names:
                    lock_attr, *attrs = names
                    for attr in attrs:
                        info.guarded[attr] = lock_attr
        for item in node.body:
            if not isinstance(item, _FunctionDef):
                continue
            info.methods[item.name] = item
            for decorator in item.decorator_list:
                call = _decorator_call(decorator, "holds_lock")
                if call is not None:
                    info.holds.setdefault(item.name, set()).update(
                        _string_args(call)
                    )
            param_types: dict[str, str] = {}
            if item.name == "__init__":
                for arg in [*item.args.posonlyargs, *item.args.args]:
                    leaf = _annotation_class(arg.annotation)
                    if leaf is not None:
                        param_types[arg.arg] = leaf
            for stmt in ast.walk(item):
                targets: list[ast.expr]
                value: ast.expr | None
                if isinstance(stmt, ast.Assign):
                    targets, value = stmt.targets, stmt.value
                elif isinstance(stmt, ast.AnnAssign):
                    targets, value = [stmt.target], stmt.value
                else:
                    continue
                annotated = (
                    _annotation_class(stmt.annotation)
                    if isinstance(stmt, ast.AnnAssign)
                    else None
                )
                for target in targets:
                    attr = _self_attr(target)
                    if attr is None:
                        continue
                    if isinstance(value, ast.Call):
                        qualified = module.qualified_name(value.func)
                        kind = _LOCK_CONSTRUCTORS.get(qualified or "")
                        if kind == "lock":
                            info.lock_attrs.add(attr)
                            continue
                        if kind == "rlock":
                            info.rlock_attrs.add(attr)
                            continue
                        if qualified is not None and item.name == "__init__":
                            leaf = qualified.rsplit(".", 1)[-1]
                            if leaf[:1].isupper():
                                info.attr_types[attr] = leaf
                                continue
                    if item.name != "__init__":
                        continue
                    if annotated is not None:
                        info.attr_types.setdefault(attr, annotated)
                    elif isinstance(value, ast.Name) and value.id in param_types:
                        info.attr_types.setdefault(attr, param_types[value.id])
        infos.append(info)
    return infos


def _annotation_class(annotation: ast.expr | None) -> str | None:
    """Class name from a simple annotation (``B``, ``mod.B``, ``"B"``)."""
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        leaf = annotation.value.strip().rsplit(".", 1)[-1]
    elif isinstance(annotation, ast.Name):
        leaf = annotation.id
    elif isinstance(annotation, ast.Attribute):
        leaf = annotation.attr
    else:
        return None
    if leaf[:1].isupper() and leaf.isidentifier():
        return leaf
    return None


@register
class LockDisciplineRule:
    rule_id = "SRN004"
    name = "lock-discipline"
    rationale = (
        "Undeclared shared state and inconsistent lock ordering are the "
        "two concurrency failure modes the serving path cannot afford; "
        "@guarded_by makes the protocol checkable and the acquisition "
        "graph makes ordering cycles visible before they deadlock."
    )

    def check_module(
        self, module: "ParsedModule", config: "AnalysisConfig"
    ) -> Iterator[Diagnostic]:
        for info in collect_class_info(module):
            if not info.guarded and not info.holds:
                continue
            yield from self._check_class(module, info)

    # -- intra-class checks ---------------------------------------------------

    def _check_class(
        self, module: "ParsedModule", info: ClassInfo
    ) -> Iterator[Diagnostic]:
        for lock_attr in set(info.guarded.values()):
            if lock_attr not in info.all_locks:
                yield Diagnostic(
                    info.relpath,
                    info.node.lineno,
                    info.node.col_offset,
                    self.rule_id,
                    f"@guarded_by names {lock_attr!r} but {info.name} never "
                    "assigns a threading.Lock/RLock to that attribute",
                )
        for method_name, method in info.methods.items():
            base_held = set(info.holds.get(method_name, ()))
            yield from self._walk_method(module, info, method_name, method.body, base_held)

    def _walk_method(
        self,
        module: "ParsedModule",
        info: ClassInfo,
        method_name: str,
        stmts: list[ast.stmt],
        held: set[str],
    ) -> Iterator[Diagnostic]:
        for stmt in stmts:
            yield from self._walk_node(module, info, method_name, stmt, held)

    def _walk_node(
        self,
        module: "ParsedModule",
        info: ClassInfo,
        method_name: str,
        node: ast.AST,
        held: set[str],
    ) -> Iterator[Diagnostic]:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = set(held)
            for item in node.items:
                attr = _self_attr(item.context_expr)
                if attr is not None and attr in info.all_locks:
                    acquired = acquired | {attr}
                yield from self._check_expr(
                    module, info, method_name, item.context_expr, held
                )
            for stmt in node.body:
                yield from self._walk_node(
                    module, info, method_name, stmt, acquired
                )
            return
        yield from self._check_expr(module, info, method_name, node, held)
        for child in ast.iter_child_nodes(node):
            yield from self._walk_node(module, info, method_name, child, held)

    def _check_expr(
        self,
        module: "ParsedModule",
        info: ClassInfo,
        method_name: str,
        node: ast.AST,
        held: set[str],
    ) -> Iterator[Diagnostic]:
        in_init = method_name in _INIT_METHODS
        attr = _self_attr(node)
        if attr is not None and isinstance(node, ast.Attribute):
            lock = info.guarded.get(attr)
            if lock is not None and not in_init and lock not in held:
                yield Diagnostic(
                    info.relpath,
                    node.lineno,
                    node.col_offset,
                    self.rule_id,
                    f"access to {info.name}.{attr} guarded by {lock!r} "
                    f"outside `with self.{lock}:` (and {method_name!r} is "
                    "not @holds_lock)",
                )
            elif (
                lock is None
                and info.guarded
                and isinstance(node.ctx, ast.Store)
                and not in_init
                and attr not in info.all_locks
            ):
                yield Diagnostic(
                    info.relpath,
                    node.lineno,
                    node.col_offset,
                    self.rule_id,
                    f"write to undeclared attribute {info.name}.{attr} "
                    "outside __init__; declare it in @guarded_by or assign "
                    "it only during construction",
                )
        if isinstance(node, ast.Call):
            callee = _self_attr(node.func)
            if callee is not None and callee in info.holds and not in_init:
                missing = info.holds[callee] - held
                if missing:
                    yield Diagnostic(
                        info.relpath,
                        node.lineno,
                        node.col_offset,
                        self.rule_id,
                        f"call to @holds_lock method {info.name}.{callee} "
                        f"without holding {sorted(missing)!r}",
                    )

    # -- project-wide lock graph ---------------------------------------------

    def finalize(
        self, modules: "Iterable[ParsedModule]", config: "AnalysisConfig"
    ) -> Iterator[Diagnostic]:
        classes: dict[str, ClassInfo] = {}
        class_modules: dict[str, "ParsedModule"] = {}
        for module in modules:
            for info in collect_class_info(module):
                classes[info.name] = info
                class_modules[info.name] = module

        # What each (class, method) acquires, transitively (fixpoint).
        direct: dict[tuple[str, str], set[str]] = {}
        calls: dict[tuple[str, str], list[tuple[str, str]]] = {}
        edges: dict[tuple[str, str], tuple[str, int]] = {}
        self_edges: dict[str, tuple[str, int]] = {}

        for info in classes.values():
            for method_name, method in info.methods.items():
                key = (info.name, method_name)
                direct[key] = set()
                calls[key] = []
                self._scan_graph(
                    info, classes, method.body, set(), key, direct, calls,
                    edges, self_edges,
                )

        acquires = dict(direct)
        changed = True
        while changed:
            changed = False
            for key, callees in calls.items():
                for callee in callees:
                    extra = acquires.get(callee, set()) - acquires[key]
                    if extra:
                        acquires[key] |= extra
                        changed = True

        # Call-mediated edges: holding H, calling something that acquires L.
        for info in classes.values():
            for method_name, method in info.methods.items():
                key = (info.name, method_name)
                self._scan_call_edges(
                    info, classes, method.body,
                    set(info.holds.get(method_name, ())),
                    acquires, edges, self_edges,
                )

        yield from self._report_self_edges(classes, self_edges)
        yield from self._report_cycles(edges)

    def _lock_nodes(self, info: ClassInfo, held: set[str]) -> set[str]:
        return {info.lock_node(attr) for attr in held}

    def _scan_graph(
        self,
        info: ClassInfo,
        classes: dict[str, ClassInfo],
        stmts: list[ast.stmt],
        held: set[str],
        key: tuple[str, str],
        direct: dict[tuple[str, str], set[str]],
        calls: dict[tuple[str, str], list[tuple[str, str]]],
        edges: dict[tuple[str, str], tuple[str, int]],
        self_edges: dict[str, tuple[str, int]],
    ) -> None:
        for stmt in stmts:
            self._scan_graph_node(
                info, classes, stmt, held, key, direct, calls, edges, self_edges
            )

    def _scan_graph_node(
        self,
        info: ClassInfo,
        classes: dict[str, ClassInfo],
        node: ast.AST,
        held: set[str],
        key: tuple[str, str],
        direct: dict[tuple[str, str], set[str]],
        calls: dict[tuple[str, str], list[tuple[str, str]]],
        edges: dict[tuple[str, str], tuple[str, int]],
        self_edges: dict[str, tuple[str, int]],
    ) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = set(held)
            for item in node.items:
                attr = _self_attr(item.context_expr)
                if attr is not None and attr in info.all_locks:
                    node_id = info.lock_node(attr)
                    direct[key].add(node_id)
                    site = (info.relpath, item.context_expr.lineno)
                    if attr in held:
                        self_edges.setdefault(node_id, site)
                    for holder in held:
                        edge = (info.lock_node(holder), node_id)
                        if edge[0] != edge[1]:
                            edges.setdefault(edge, site)
                    acquired.add(attr)
            for stmt in node.body:
                self._scan_graph_node(
                    info, classes, stmt, acquired, key, direct, calls,
                    edges, self_edges,
                )
            return
        callee = self._resolve_call(info, classes, node)
        if callee is not None:
            calls[key].append(callee)
        for child in ast.iter_child_nodes(node):
            self._scan_graph_node(
                info, classes, child, held, key, direct, calls, edges,
                self_edges,
            )

    def _scan_call_edges(
        self,
        info: ClassInfo,
        classes: dict[str, ClassInfo],
        stmts: list[ast.stmt],
        held: set[str],
        acquires: dict[tuple[str, str], set[str]],
        edges: dict[tuple[str, str], tuple[str, int]],
        self_edges: dict[str, tuple[str, int]],
    ) -> None:
        for stmt in stmts:
            self._scan_call_edges_node(
                info, classes, stmt, held, acquires, edges, self_edges
            )

    def _scan_call_edges_node(
        self,
        info: ClassInfo,
        classes: dict[str, ClassInfo],
        node: ast.AST,
        held: set[str],
        acquires: dict[tuple[str, str], set[str]],
        edges: dict[tuple[str, str], tuple[str, int]],
        self_edges: dict[str, tuple[str, int]],
    ) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = set(held)
            for item in node.items:
                attr = _self_attr(item.context_expr)
                if attr is not None and attr in info.all_locks:
                    acquired.add(attr)
            for stmt in node.body:
                self._scan_call_edges_node(
                    info, classes, stmt, acquired, acquires, edges, self_edges
                )
            return
        if held:
            callee = self._resolve_call(info, classes, node)
            if callee is not None and isinstance(node, ast.Call):
                site = (info.relpath, node.lineno)
                callee_class = classes.get(callee[0])
                reentrant_ok = (
                    callee_class.rlock_attrs if callee_class else set()
                )
                for target in acquires.get(callee, set()):
                    for holder in held:
                        holder_id = info.lock_node(holder)
                        if holder_id == target:
                            # Re-entry through a call chain; RLocks are fine.
                            if holder not in info.rlock_attrs:
                                self_edges.setdefault(target, site)
                        else:
                            edges.setdefault((holder_id, target), site)
                del reentrant_ok
        for child in ast.iter_child_nodes(node):
            self._scan_call_edges_node(
                info, classes, child, held, acquires, edges, self_edges
            )

    def _resolve_call(
        self,
        info: ClassInfo,
        classes: dict[str, ClassInfo],
        node: ast.AST,
    ) -> tuple[str, str] | None:
        """``self.m()`` / ``self.attr.m()`` -> (class name, method name)."""
        if not isinstance(node, ast.Call):
            return None
        func = node.func
        if not isinstance(func, ast.Attribute):
            return None
        owner = func.value
        attr = _self_attr(owner)
        if isinstance(owner, ast.Name) and owner.id == "self":
            if func.attr in info.methods:
                return (info.name, func.attr)
            return None
        if attr is not None:
            type_name = info.attr_types.get(attr)
            if type_name is not None and type_name in classes:
                if func.attr in classes[type_name].methods:
                    return (type_name, func.attr)
        return None

    def _report_self_edges(
        self,
        classes: dict[str, ClassInfo],
        self_edges: dict[str, tuple[str, int]],
    ) -> Iterator[Diagnostic]:
        for node_id, (relpath, lineno) in sorted(self_edges.items()):
            class_name, _, lock_attr = node_id.partition(".")
            info = classes.get(class_name)
            if info is not None and lock_attr in info.rlock_attrs:
                continue  # RLock re-entry is legal
            yield Diagnostic(
                relpath,
                lineno,
                0,
                self.rule_id,
                f"lock {node_id} re-acquired while already held; "
                "threading.Lock is not reentrant — this deadlocks",
            )

    def _report_cycles(
        self, edges: dict[tuple[str, str], tuple[str, int]]
    ) -> Iterator[Diagnostic]:
        graph: dict[str, set[str]] = {}
        for src, dst in edges:
            graph.setdefault(src, set()).add(dst)
            graph.setdefault(dst, set())
        for component in _strongly_connected(graph):
            if len(component) < 2:
                continue
            members = sorted(component)
            sites = sorted(
                site
                for edge, site in edges.items()
                if edge[0] in component and edge[1] in component
            )
            relpath, lineno = sites[0] if sites else ("<unknown>", 0)
            yield Diagnostic(
                relpath,
                lineno,
                0,
                self.rule_id,
                "lock-ordering cycle (potential deadlock): "
                + " -> ".join([*members, members[0]]),
            )


def _strongly_connected(graph: dict[str, set[str]]) -> list[set[str]]:
    """Tarjan's SCC, iterative, deterministic order."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    result: list[set[str]] = []
    counter = 0

    for start in sorted(graph):
        if start in index:
            continue
        work: list[tuple[str, Iterator[str]]] = [(start, iter(sorted(graph[start])))]
        index[start] = lowlink[start] = counter
        counter += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in index:
                    index[child] = lowlink[child] = counter
                    counter += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(sorted(graph[child]))))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                result.append(component)
    return result
