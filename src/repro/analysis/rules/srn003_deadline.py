"""SRN003: deadline propagation.

Any function that accepts a ``Deadline`` owns part of the 50 ms SLA
budget. The contract:

* the parameter must actually be used (a dead ``deadline`` parameter is
  an SLA hole — callers believe the budget is honoured);
* fresh ``Deadline(...)`` / ``Deadline.after_ms(...)`` construction is
  forbidden except as the ``deadline = Deadline...`` default-fill inside
  an ``if deadline is None:`` guard — constructing a new budget mid-call
  silently resets the clock the caller started;
* loops containing blocking calls must consult the deadline somewhere in
  the loop body (check-before-iterate);
* ``future.result()`` with no timeout blocks unboundedly; it must derive
  its timeout from the deadline.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import register
from repro.analysis.summaries import BLOCKING_NAMES

if TYPE_CHECKING:
    from repro.analysis.config import AnalysisConfig
    from repro.analysis.engine import ParsedModule

#: shared with the interprocedural may-block fixpoint (SRN007).
_BLOCKING_NAMES = BLOCKING_NAMES

_FunctionDef = (ast.FunctionDef, ast.AsyncFunctionDef)


def _deadline_param(node: ast.FunctionDef | ast.AsyncFunctionDef) -> str | None:
    """Name of the Deadline parameter, if the function takes one."""
    args = node.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if arg.arg == "deadline":
            return arg.arg
        annotation = arg.annotation
        if annotation is not None and "Deadline" in ast.dump(annotation):
            return arg.arg
    return None


def _is_deadline_constructor(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Name) and func.id == "Deadline":
        return True
    if isinstance(func, ast.Attribute):
        # Deadline.after_ms(...), deadline_mod.Deadline(...)
        if func.attr == "Deadline":
            return True
        value = func.value
        if isinstance(value, ast.Name) and value.id == "Deadline":
            return True
    return False


def _is_none_guard(test: ast.expr, param: str) -> bool:
    """``<param> is None`` (the default-fill idiom)."""
    return (
        isinstance(test, ast.Compare)
        and isinstance(test.left, ast.Name)
        and test.left.id == param
        and len(test.ops) == 1
        and isinstance(test.ops[0], ast.Is)
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
    )


@register
class DeadlinePropagationRule:
    rule_id = "SRN003"
    name = "deadline-propagation"
    rationale = (
        "A Deadline parameter is a promise to honour the caller's "
        "latency budget; dropping it, re-minting it, or blocking without "
        "it silently breaks the 50 ms SLA chain."
    )

    def check_module(
        self, module: "ParsedModule", config: "AnalysisConfig"
    ) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, _FunctionDef):
                continue
            param = _deadline_param(node)
            if param is None:
                continue
            yield from self._check_function(module, node, param)

    def _check_function(
        self,
        module: "ParsedModule",
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        param: str,
    ) -> Iterator[Diagnostic]:
        body_nodes = [n for stmt in func.body for n in ast.walk(stmt)]
        reads = [
            n
            for n in body_nodes
            if isinstance(n, ast.Name)
            and n.id == param
            and isinstance(n.ctx, ast.Load)
        ]
        if not reads:
            yield Diagnostic(
                module.relpath,
                func.lineno,
                func.col_offset,
                self.rule_id,
                f"function {func.name!r} accepts a deadline but never "
                "consults it; check deadline.expired()/remaining() before "
                "work and forward it to callees",
            )
            return

        guarded_lines = self._none_guard_lines(func, param)
        for node in body_nodes:
            if isinstance(node, ast.Call) and _is_deadline_constructor(node):
                if node.lineno not in guarded_lines:
                    yield Diagnostic(
                        module.relpath,
                        node.lineno,
                        node.col_offset,
                        self.rule_id,
                        "constructs a fresh Deadline inside a "
                        "deadline-accepting function; forward the caller's "
                        "budget instead of re-minting it",
                    )

        read_lines = {n.lineno for n in reads}
        for node in body_nodes:
            if isinstance(node, (ast.For, ast.While, ast.AsyncFor)):
                yield from self._check_loop(module, node, read_lines)

        for node in body_nodes:
            finding = self._naked_result_call(module, node)
            if finding is not None:
                yield finding

    def _none_guard_lines(
        self, func: ast.FunctionDef | ast.AsyncFunctionDef, param: str
    ) -> set[int]:
        """Lines inside ``if <param> is None:`` blocks (default-fill zone)."""
        lines: set[int] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.If) and _is_none_guard(node.test, param):
                for stmt in node.body:
                    for inner in ast.walk(stmt):
                        lineno = getattr(inner, "lineno", None)
                        if lineno is not None:
                            lines.add(lineno)
        return lines

    def _check_loop(
        self,
        module: "ParsedModule",
        loop: ast.For | ast.While | ast.AsyncFor,
        read_lines: set[int],
    ) -> Iterator[Diagnostic]:
        blocking = None
        for node in ast.walk(loop):
            if isinstance(node, ast.Call):
                name = None
                if isinstance(node.func, ast.Attribute):
                    name = node.func.attr
                elif isinstance(node.func, ast.Name):
                    name = node.func.id
                if name in _BLOCKING_NAMES:
                    blocking = node
                    break
        if blocking is None:
            return
        last_line = max(
            (getattr(n, "lineno", loop.lineno) for n in ast.walk(loop)),
            default=loop.lineno,
        )
        if not any(loop.lineno <= line <= last_line for line in read_lines):
            yield Diagnostic(
                module.relpath,
                loop.lineno,
                loop.col_offset,
                self.rule_id,
                "loop performs blocking calls without consulting the "
                "deadline; check deadline.expired()/remaining() each "
                "iteration",
            )

    def _naked_result_call(
        self, module: "ParsedModule", node: ast.AST
    ) -> Diagnostic | None:
        if not isinstance(node, ast.Call):
            return None
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "result"):
            return None
        # ignore `self.result(...)`-style domain methods with arguments or
        # keyword timeouts — only flag the zero-argument blocking form.
        if node.args or node.keywords:
            return None
        return Diagnostic(
            module.relpath,
            node.lineno,
            node.col_offset,
            self.rule_id,
            "blocking Future.result() without a deadline-derived timeout; "
            "pass timeout=deadline.remaining() (None only when no deadline "
            "was given)",
        )

    def finalize(
        self, modules: "Iterable[ParsedModule]", config: "AnalysisConfig"
    ) -> Iterator[Diagnostic]:
        return iter(())
