"""SRN001: clock and RNG hygiene.

Serving, cluster, core, and index code must take time and randomness
through injected seams (a ``Clock`` parameter, ``VirtualClock``, a
``random.Random`` instance passed in) so the deterministic simulation
harness can control them. A direct ``time.monotonic()`` call inside a
function body escapes the harness; the *reference* ``time.monotonic``
as a default argument is the seam itself and is allowed — only calls
are flagged.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import register

if TYPE_CHECKING:
    from repro.analysis.config import AnalysisConfig
    from repro.analysis.engine import ParsedModule

#: time.* functions that read the wall/monotonic clock or block on it.
_TIME_FUNCTIONS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "sleep",
    }
)

#: datetime constructors that capture "now" implicitly.
_DATETIME_NOW = frozenset(
    {
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: module-level random.* functions sharing the hidden global Random().
#: random.Random / random.SystemRandom constructors are the seam — allowed.
_RANDOM_FUNCTIONS = frozenset(
    {
        "random",
        "uniform",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "gauss",
        "normalvariate",
        "lognormvariate",
        "expovariate",
        "betavariate",
        "gammavariate",
        "triangular",
        "vonmisesvariate",
        "paretovariate",
        "weibullvariate",
        "seed",
        "getrandbits",
        "randbytes",
        "getstate",
        "setstate",
    }
)

#: numpy.random module-level functions using the hidden global state.
#: numpy.random.default_rng / Generator / SeedSequence are the seam.
_NUMPY_RANDOM_ALLOWED = frozenset({"default_rng", "Generator", "SeedSequence"})


@register
class ClockHygieneRule:
    rule_id = "SRN001"
    name = "clock-hygiene"
    rationale = (
        "Direct time/datetime/global-random calls bypass the injected "
        "Clock and rng seams, making latency and sampling behaviour "
        "invisible to the deterministic simulation harness."
    )

    def check_module(
        self, module: "ParsedModule", config: "AnalysisConfig"
    ) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = module.qualified_name(node.func)
            if qualified is None:
                continue
            verdict = _classify(qualified)
            if verdict is None:
                continue
            yield Diagnostic(
                module.relpath,
                node.lineno,
                node.col_offset,
                self.rule_id,
                verdict,
            )

    def finalize(
        self, modules: "Iterable[ParsedModule]", config: "AnalysisConfig"
    ) -> Iterator[Diagnostic]:
        return iter(())


def _classify(qualified: str) -> str | None:
    """Return the finding message for a banned call, else ``None``."""
    if "." in qualified:
        head, _, tail = qualified.partition(".")
        if head == "time" and tail in _TIME_FUNCTIONS:
            return (
                f"direct call to time.{tail}(); inject a Clock "
                "(see repro.core.deadline.Clock) so the simulation "
                "harness can control time"
            )
        if qualified in _DATETIME_NOW:
            return (
                f"direct call to {qualified}(); take 'now' from an "
                "injected clock instead"
            )
        if head == "random" and tail in _RANDOM_FUNCTIONS:
            return (
                f"call to global random.{tail}(); pass a seeded "
                "random.Random instance through the call chain"
            )
        if qualified.startswith("numpy.random."):
            leaf = qualified.rsplit(".", 1)[1]
            if leaf not in _NUMPY_RANDOM_ALLOWED:
                return (
                    f"call to global {qualified}(); use an injected "
                    "numpy.random.default_rng(seed) Generator"
                )
        return None
    # bare name resolved through `from time import monotonic` etc.
    return None
