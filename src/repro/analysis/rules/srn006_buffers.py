"""SRN006: columnar buffer contracts.

The vectorized scorer's speed rests on three properties of the columnar
index arrays: pinned dtypes (``int64``/``float64``), C-contiguity, and
immutability after construction — the serving path shares one
:class:`ColumnarSessionIndex` across pods without locks precisely
because nothing writes to it. Classes declare the contract with
:func:`repro.core.contracts.frozen_buffers`::

    @frozen_buffers("item_ids", "posting_sessions", ...)
    class ColumnarSessionIndex: ...

The rule checks, per declared buffer attribute:

* no store, subscript store, augmented assignment, or in-place mutator
  call (``resize``/``sort``/``fill``/``put``/``partition``/``setflags``)
  after construction — construction being ``__init__``/``__post_init__``
  plus the private helper methods they (transitively) call on ``self``;
* construction assigns the buffer through a dtype-pinning conversion:
  ``np.asarray``/``np.array``/``np.ascontiguousarray`` without an
  explicit ``dtype`` inherit whatever the caller passed — on the hot
  path that silently turns an ``int32`` list into an object array and a
  20x slowdown. ``np.ascontiguousarray`` applied to an expression rooted
  at an already-frozen ``self`` buffer is exempt (its dtype is pinned);
* construction must not bind a buffer to a bare caller-supplied name:
  ``self.ids = ids`` aliases memory the caller still owns and can
  mutate — convert or copy it.

A module-level helper used as ``self.ids = _as_int_array(ids)`` is
followed one level deep: if every ``return`` in the helper pins a dtype
the assignment is fine; a dtype-less conversion inside the helper is
flagged at the assignment site.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import register
from repro.analysis.symbols import (
    INIT_METHODS,
    ClassInfo,
    FunctionDefs,
    collect_class_info,
    self_attr,
)

if TYPE_CHECKING:
    from repro.analysis.config import AnalysisConfig
    from repro.analysis.engine import ParsedModule

_CONVERSIONS = frozenset(
    {"numpy.asarray", "numpy.array", "numpy.ascontiguousarray"}
)
_MUTATORS = frozenset(
    {"resize", "sort", "fill", "put", "partition", "itemset", "setflags"}
)


def _construction_methods(info: ClassInfo) -> set[str]:
    """``__init__``-family plus private helpers reachable via self-calls."""
    construction = {name for name in info.methods if name in INIT_METHODS}
    frontier = list(construction)
    while frontier:
        method = info.methods.get(frontier.pop())
        if method is None:
            continue
        for node in ast.walk(method):
            if not isinstance(node, ast.Call):
                continue
            callee = self_attr(node.func)
            if (
                callee is not None
                and callee.startswith("_")
                and callee in info.methods
                and callee not in construction
            ):
                construction.add(callee)
                frontier.append(callee)
    return construction


def _has_dtype(call: ast.Call) -> bool:
    if any(kw.arg == "dtype" for kw in call.keywords):
        return True
    return len(call.args) >= 2  # positional dtype


def _rooted_at_frozen_self(node: ast.expr, frozen: tuple[str, ...]) -> bool:
    """Is the expression built from ``self.<frozen buffer>``?"""
    current = node
    while isinstance(current, ast.Subscript):
        current = current.value
    attr = self_attr(current)
    return attr is not None and attr in frozen


def _module_helpers(module: "ParsedModule") -> dict[str, ast.FunctionDef]:
    return {
        stmt.name: stmt
        for stmt in module.tree.body
        if isinstance(stmt, FunctionDefs)
    }


@register
class BufferContractRule:
    rule_id = "SRN006"
    name = "frozen-buffer-contracts"
    rationale = (
        "The columnar scorer assumes int64/float64 C-contiguous arrays "
        "that never change after ColumnarSessionIndex construction; a "
        "stray in-place write or dtype-less conversion silently breaks "
        "lock-free sharing or falls off the vectorized fast path."
    )

    def check_module(
        self, module: "ParsedModule", config: "AnalysisConfig"
    ) -> Iterator[Diagnostic]:
        helpers = _module_helpers(module)
        for info in collect_class_info(module):
            if not info.frozen_buffers:
                continue
            construction = _construction_methods(info)
            for method_name, method in info.methods.items():
                in_construction = method_name in construction
                yield from self._check_method(
                    module, info, helpers, method, in_construction
                )

    def _check_method(
        self,
        module: "ParsedModule",
        info: ClassInfo,
        helpers: dict[str, ast.FunctionDef],
        method: ast.FunctionDef,
        in_construction: bool,
    ) -> Iterator[Diagnostic]:
        for node in ast.walk(method):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    yield from self._check_store(
                        module, info, helpers, node, target, in_construction
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_mutator(info, node, in_construction)

    def _check_store(
        self,
        module: "ParsedModule",
        info: ClassInfo,
        helpers: dict[str, ast.FunctionDef],
        stmt: ast.stmt,
        target: ast.expr,
        in_construction: bool,
    ) -> Iterator[Diagnostic]:
        frozen = info.frozen_buffers
        # Subscript store: self.buf[...] = ... / self.buf[...] += ...
        if isinstance(target, ast.Subscript) and _rooted_at_frozen_self(
            target, frozen
        ):
            if not in_construction:
                attr = self._frozen_root(target, frozen)
                yield Diagnostic(
                    info.relpath,
                    target.lineno,
                    target.col_offset,
                    self.rule_id,
                    f"in-place write to frozen buffer {info.name}.{attr} "
                    "after construction; the index is shared lock-free and "
                    "must never be mutated",
                )
            return
        attr = self_attr(target)
        if attr is None or attr not in frozen:
            return
        if not in_construction:
            yield Diagnostic(
                info.relpath,
                target.lineno,
                target.col_offset,
                self.rule_id,
                f"frozen buffer {info.name}.{attr} reassigned after "
                "construction; @frozen_buffers attributes are "
                "write-once in __init__",
            )
            return
        value = getattr(stmt, "value", None)
        if value is None or isinstance(stmt, ast.AugAssign):
            return
        yield from self._check_construction_value(
            module, info, helpers, attr, value
        )

    def _frozen_root(
        self, node: ast.expr, frozen: tuple[str, ...]
    ) -> str | None:
        current = node
        while isinstance(current, ast.Subscript):
            current = current.value
        return self_attr(current)

    def _check_construction_value(
        self,
        module: "ParsedModule",
        info: ClassInfo,
        helpers: dict[str, ast.FunctionDef],
        attr: str,
        value: ast.expr,
    ) -> Iterator[Diagnostic]:
        if isinstance(value, ast.Name):
            yield Diagnostic(
                info.relpath,
                value.lineno,
                value.col_offset,
                self.rule_id,
                f"frozen buffer {info.name}.{attr} aliases the "
                f"caller-owned name {value.id!r}; convert it "
                "(np.ascontiguousarray(..., dtype=...)) so later caller "
                "mutations cannot reach the shared index",
            )
            return
        if not isinstance(value, ast.Call):
            return
        qualified = module.qualified_name(value.func)
        if qualified in _CONVERSIONS:
            yield from self._check_conversion(
                module, info, attr, value, qualified
            )
            return
        # One level of module-helper return flow.
        if isinstance(value.func, ast.Name):
            helper = helpers.get(value.func.id)
            if helper is None:
                return
            for node in ast.walk(helper):
                if not isinstance(node, ast.Return) or node.value is None:
                    continue
                returned = node.value
                if not isinstance(returned, ast.Call):
                    continue
                returned_qual = module.qualified_name(returned.func)
                if returned_qual in _CONVERSIONS and not _has_dtype(returned):
                    yield Diagnostic(
                        info.relpath,
                        value.lineno,
                        value.col_offset,
                        self.rule_id,
                        f"frozen buffer {info.name}.{attr} built by "
                        f"{value.func.id}() whose "
                        f"{returned_qual.rsplit('.', 1)[-1]} return has no "
                        "explicit dtype; pin int64/float64 so the hot path "
                        "never sees a surprise dtype",
                    )

    def _check_conversion(
        self,
        module: "ParsedModule",
        info: ClassInfo,
        attr: str,
        call: ast.Call,
        qualified: str,
    ) -> Iterator[Diagnostic]:
        if _has_dtype(call):
            return
        if (
            qualified == "numpy.ascontiguousarray"
            and call.args
            and _rooted_at_frozen_self(call.args[0], info.frozen_buffers)
        ):
            return  # re-layout of an already-pinned frozen buffer
        yield Diagnostic(
            info.relpath,
            call.lineno,
            call.col_offset,
            self.rule_id,
            f"frozen buffer {info.name}.{attr} assigned from dtype-less "
            f"{qualified.rsplit('.', 1)[-1]}(); pin dtype=np.int64/np.float64 "
            "explicitly — inherited dtypes fall off the vectorized path",
        )

    def _check_mutator(
        self, info: ClassInfo, call: ast.Call, in_construction: bool
    ) -> Iterator[Diagnostic]:
        if in_construction:
            return
        func = call.func
        if not isinstance(func, ast.Attribute) or func.attr not in _MUTATORS:
            return
        if _rooted_at_frozen_self(func.value, info.frozen_buffers):
            attr = self_attr(func.value) or "<buffer>"
            yield Diagnostic(
                info.relpath,
                call.lineno,
                call.col_offset,
                self.rule_id,
                f"in-place mutator .{func.attr}() on frozen buffer "
                f"{info.name}.{attr} after construction; the shared index "
                "must stay immutable",
            )
