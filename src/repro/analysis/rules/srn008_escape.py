"""SRN008: guarded state escaping its lock, and happens-before contracts.

Two ways replicated-shard state corrupts without any rule in SRN004's
reach:

1. **Escape**: a ``@guarded_by`` container leaves the lock's custody —
   returned raw, or handed to a thread/executor/replication callback.
   Every later mutation happens outside the lock the class promised.
   The rule flags ``return self.<guarded container>`` and passing a
   guarded attribute into a concurrency-launch call
   (``Thread``/``Timer``/``submit``/``map``/``apply_async``/
   ``add_done_callback``/...). Only *container* attributes count
   (inferred from their ``__init__`` initializer: ``{}``/``[]``/
   ``set()``/``dict()``/``defaultdict``/``deque``/``OrderedDict``) —
   returning a guarded int is a value copy, not an escape.

2. **Ordering**: the ring's correctness leans on happens-before edges
   (WAL append before ack, state update before predict). A class
   declares them with :func:`repro.core.contracts.happens_before`::

       @happens_before("update_session", "predict")
       class RingCoordinator: ...

   and the rule runs a must-analysis over each method's CFG: at every
   call of the *second* operation, a call of the *first* must have
   completed on **all** paths from function entry (facts are sets of
   completed call names; the join is intersection; exception edges
   assume the call did not complete). Matching is by leaf call name, so
   ``leader.update_session(...)`` satisfies the edge for a later
   ``leader.predict(...)``.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import ForwardAnalysis
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import register
from repro.analysis.symbols import (
    INIT_METHODS,
    ClassInfo,
    FunctionDefs,
    collect_class_info,
    self_attr,
)

if TYPE_CHECKING:
    from repro.analysis.config import AnalysisConfig
    from repro.analysis.engine import ParsedModule

#: constructors of container types whose guarded instances must not escape.
_CONTAINER_CALLS = frozenset(
    {"dict", "list", "set", "defaultdict", "deque", "OrderedDict", "Counter"}
)

#: call leaf names that move their arguments onto another thread of control.
_LAUNCH_CALLS = frozenset(
    {
        "Thread",
        "Timer",
        "submit",
        "map",
        "apply_async",
        "apply",
        "add_done_callback",
        "call_soon",
        "call_soon_threadsafe",
        "run_in_executor",
        "start_new_thread",
    }
)


def _container_attrs(info: ClassInfo) -> set[str]:
    """Guarded attributes initialized to a mutable container in __init__."""
    init = info.methods.get("__init__")
    if init is None:
        return set()
    containers: set[str] = set()
    for stmt in ast.walk(init):
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            targets, value = [stmt.target], stmt.value
        else:
            continue
        if value is None:
            continue
        is_container = isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp))
        if isinstance(value, ast.Call):
            func = value.func
            leaf = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr
                if isinstance(func, ast.Attribute)
                else None
            )
            is_container = leaf in _CONTAINER_CALLS
        if not is_container:
            continue
        for target in targets:
            attr = self_attr(target)
            if attr is not None and attr in info.guarded:
                containers.add(attr)
    return containers


def _call_names(stmt: ast.stmt) -> list[str]:
    """Leaf names of the calls *this CFG node executes*, in order.

    The CFG is statement-granular, so a compound statement's body runs as
    separate nodes — counting the whole subtree at the header would make
    an ``else``-branch call look completed on the ``then`` path (and
    nested ``def`` bodies look executed at definition time). Only the
    header expressions (``if``/``while`` test, ``for`` iterable, ``with``
    items) execute at the header node; simple statements execute whole.
    """
    headers: list[ast.expr]
    if isinstance(stmt, (ast.If, ast.While)):
        headers = [stmt.test]
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        headers = [stmt.iter]
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        headers = [item.context_expr for item in stmt.items]
    elif isinstance(stmt, (ast.Try, *FunctionDefs, ast.ClassDef)):
        headers = []
    else:
        headers = [stmt]  # type: ignore[list-item]
    names: list[str] = []
    for header in headers:
        for node in ast.walk(header):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                names.append(func.attr)
            elif isinstance(func, ast.Name):
                names.append(func.id)
    return names


@register
class SharedStateEscapeRule:
    rule_id = "SRN008"
    name = "shared-state-escape"
    rationale = (
        "A guarded container that escapes its lock is mutated unsynchronized "
        "by whoever received it, and an acknowledged write that was not yet "
        "logged is lost on failover; both invariants are declared on the "
        "class and checked here against every method."
    )

    def check_module(
        self, module: "ParsedModule", config: "AnalysisConfig"
    ) -> Iterator[Diagnostic]:
        for info in collect_class_info(module):
            if info.guarded:
                yield from self._check_escapes(info)
            if info.ordering:
                yield from self._check_ordering(info)

    # -- escape ---------------------------------------------------------------

    def _check_escapes(self, info: ClassInfo) -> Iterator[Diagnostic]:
        containers = _container_attrs(info)
        if not containers:
            return
        for method_name, method in info.methods.items():
            if method_name in INIT_METHODS:
                continue
            for node in ast.walk(method):
                if isinstance(node, ast.Return) and node.value is not None:
                    attr = self_attr(node.value)
                    if attr in containers:
                        yield Diagnostic(
                            info.relpath,
                            node.lineno,
                            node.col_offset,
                            self.rule_id,
                            f"{info.name}.{method_name} returns guarded "
                            f"container self.{attr} by reference; the caller "
                            "mutates it outside "
                            f"{info.guarded[attr]!r} — return a copy",
                        )
                elif isinstance(node, ast.Call):
                    yield from self._check_launch(info, containers, node)

    def _check_launch(
        self, info: ClassInfo, containers: set[str], call: ast.Call
    ) -> Iterator[Diagnostic]:
        func = call.func
        leaf = (
            func.attr
            if isinstance(func, ast.Attribute)
            else func.id
            if isinstance(func, ast.Name)
            else None
        )
        if leaf not in _LAUNCH_CALLS:
            return
        arguments = list(call.args) + [
            kw.value for kw in call.keywords if kw.value is not None
        ]
        for argument in arguments:
            for node in ast.walk(argument):
                attr = self_attr(node)
                if attr in containers:
                    yield Diagnostic(
                        info.relpath,
                        node.lineno,
                        node.col_offset,
                        self.rule_id,
                        f"guarded container self.{attr} escapes to "
                        f"{leaf}(); the other thread of control mutates it "
                        f"outside {info.guarded[attr]!r} — pass a snapshot",
                    )

    # -- happens-before -------------------------------------------------------

    def _check_ordering(self, info: ClassInfo) -> Iterator[Diagnostic]:
        for method_name, method in info.methods.items():
            if method_name in INIT_METHODS:
                continue
            cfg = build_cfg(method)
            analysis: ForwardAnalysis[frozenset[str]] = ForwardAnalysis(
                initial=frozenset(),
                join=lambda a, b: a & b,
                transfer=lambda stmt, fact: fact | frozenset(_call_names(stmt)),
            )
            facts = analysis.solve(cfg)
            for node in cfg.statements():
                entering = facts.get(node.node_id)
                if entering is None:
                    continue  # unreachable
                assert node.stmt is not None
                called_here = _call_names(node.stmt)
                for first, second in info.ordering:
                    if second not in called_here:
                        continue
                    if first in entering or first in called_here[: called_here.index(second)]:
                        continue
                    yield Diagnostic(
                        info.relpath,
                        node.stmt.lineno,
                        node.stmt.col_offset,
                        self.rule_id,
                        f"{info.name} declares happens_before("
                        f"{first!r}, {second!r}) but this {second}() call is "
                        f"reachable without a completed {first}() on some "
                        "path",
                    )
