"""SRN009: resource lifecycle — close on every exit path.

WAL handles, thread pools and session stores hold file descriptors and
worker threads; a path that leaves one open (early ``return``, or an
exception between open and close) leaks until process exit — in the
streaming consumer that is a descriptor per restart, in the benchmark
loop it is a thread pool per iteration.

The rule runs a may-leak forward analysis over each function's CFG.
A *resource* is a local bound to a tracked constructor::

    log = PartitionedLog(path)          # open
    pool = ThreadPoolExecutor(4)        # open
    store = SessionStore.open(path)     # open (Class.open factory)

The fact is the set of ``(name, line)`` pairs that *may* still be open;
``close()``/``shutdown()``/``stop()``/``terminate()`` on the name clears
it on the normal edge only — the exception edge keeps the input fact,
because a ``close()`` that raised did not close. Escapes (returning the
resource, storing it on ``self``, yielding it, aliasing it, or passing
it to another call) transfer ownership and stop the tracking; ``with``
blocks are managed and never tracked at all. Anything still open
entering ``EXIT`` or ``RAISE_EXIT`` is a finding, annotated with which
kind of path leaks.

Tracked type names come from the ``types`` option of
``[tool.serenade-lint.rules.SRN009]``; the default set covers the
repo's own resource classes plus ``concurrent.futures`` pools.

One deliberate coarseness: the transfer inspects a compound statement's
whole subtree at its CFG header node, so a ``close()`` anywhere inside a
``try`` construct releases the resource for every path through it —
that is what certifies the ``open(); try: ... finally: close()`` idiom
without special-casing ``finally`` (the close's own exception edge
included). The cost is a missed finding when the close is buried in
one branch of a conditional inside the try; the rule under-approximates
rather than flag the canonical correct pattern.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.analysis.cfg import EXIT, RAISE_EXIT, build_cfg
from repro.analysis.dataflow import ForwardAnalysis
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import register

if TYPE_CHECKING:
    from repro.analysis.config import AnalysisConfig
    from repro.analysis.engine import ParsedModule

DEFAULT_TYPES = (
    "SessionStore",
    "PartitionedLog",
    "ThreadPoolExecutor",
    "ProcessPoolExecutor",
)

_CLOSERS = frozenset({"close", "shutdown", "stop", "terminate", "join"})

#: (open-variable name, open-site line) — one tracked may-open resource.
_Open = tuple[str, int]


def _leaf_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _type_leaf(func: ast.expr) -> str | None:
    """The class leaf for ``Store(...)`` or ``pkg.Store(...)``."""
    name = _leaf_name(func)
    return name


def _resource_ctor(value: ast.expr, types: frozenset[str]) -> bool:
    """Is this expression a tracked-resource construction?"""
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    leaf = _type_leaf(func)
    if leaf in types:
        return True
    # Class.open(...) factory: the attribute owner names the class.
    if (
        isinstance(func, ast.Attribute)
        and func.attr == "open"
        and _type_leaf(func.value) in types
    ):
        return True
    return False


@register
class ResourceLifecycleRule:
    rule_id = "SRN009"
    name = "resource-lifecycle"
    rationale = (
        "A WAL handle or thread pool left open on one exit path leaks a "
        "descriptor or worker threads per call; `with` or try/finally "
        "makes every path — including the exception edge — release it."
    )

    def check_module(
        self, module: "ParsedModule", config: "AnalysisConfig"
    ) -> Iterator[Diagnostic]:
        types = frozenset(
            config.option("SRN009", "types", list(DEFAULT_TYPES))
        )
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(module, node, types)

    def _check_function(
        self,
        module: "ParsedModule",
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        types: frozenset[str],
    ) -> Iterator[Diagnostic]:
        cfg = build_cfg(func)

        def transfer(stmt: ast.stmt, fact: frozenset[_Open]) -> frozenset[_Open]:
            out = set(fact)
            # Rebinding: any assignment to a plain name drops prior state;
            # a tracked constructor RHS opens it.
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                value = stmt.value
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name):
                        out = {
                            entry for entry in out if entry[0] != target.id
                        }
                        if value is not None and _resource_ctor(value, types):
                            out.add((target.id, stmt.lineno))
            # Closing and escaping both end our responsibility.
            for name in _released_names(stmt):
                out = {entry for entry in out if entry[0] != name}
            return frozenset(out)

        analysis: ForwardAnalysis[frozenset[_Open]] = ForwardAnalysis(
            initial=frozenset(),
            join=lambda a, b: a | b,
            transfer=transfer,
        )
        facts = analysis.solve(cfg)
        normal_open = facts.get(EXIT, frozenset())
        raise_open = facts.get(RAISE_EXIT, frozenset())
        for name, line in sorted(normal_open | raise_open):
            if (name, line) in normal_open:
                path = "on some exit path"
            else:
                path = "when an exception escapes"
            yield Diagnostic(
                module.relpath,
                line,
                0,
                self.rule_id,
                f"{func.name} opens {name!r} here but may not close it "
                f"{path}; use `with` or try/finally so every path — "
                "including the exception edge — releases it",
            )


def _released_names(stmt: ast.stmt) -> set[str]:
    """Names whose resource this statement closes or gives away."""
    released: set[str] = set()
    for node in ast.walk(stmt):
        # name.close() / name.shutdown() / ...
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _CLOSERS
                and isinstance(func.value, ast.Name)
            ):
                released.add(func.value.id)
            # passing the bare name to any call transfers ownership.
            for argument in list(node.args) + [
                kw.value for kw in node.keywords if kw.value is not None
            ]:
                if isinstance(argument, ast.Name):
                    released.add(argument.id)
        # return name / yield name — ownership moves to the caller.
        elif isinstance(node, ast.Return):
            released |= _names_in(node.value)
        elif isinstance(node, (ast.Yield, ast.YieldFrom)):
            released |= _names_in(node.value)
        # self.attr = name / other = name — aliased beyond our tracking.
        elif isinstance(node, ast.Assign):
            if isinstance(node.value, ast.Name) and node.targets:
                released.add(node.value.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.value, ast.Name):
                released.add(node.value.id)
    return released


def _names_in(value: ast.expr | None) -> set[str]:
    if value is None:
        return set()
    if isinstance(value, ast.Name):
        return {value.id}
    if isinstance(value, ast.Tuple):
        return {
            element.id
            for element in value.elts
            if isinstance(element, ast.Name)
        }
    return set()
