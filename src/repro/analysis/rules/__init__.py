"""Rule modules; importing this package registers every rule."""

from repro.analysis.rules import (  # noqa: F401  (import = registration)
    srn001_clock,
    srn002_float_eq,
    srn003_deadline,
    srn004_locks,
    srn005_exceptions,
    srn006_buffers,
    srn007_deadline_flow,
    srn008_escape,
    srn009_resources,
)

__all__ = [
    "srn001_clock",
    "srn002_float_eq",
    "srn003_deadline",
    "srn004_locks",
    "srn005_exceptions",
    "srn006_buffers",
    "srn007_deadline_flow",
    "srn008_escape",
    "srn009_resources",
]
