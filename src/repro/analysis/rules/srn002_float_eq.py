"""SRN002: no exact float equality on score expressions.

Ranking scores accumulate float error along different evaluation orders
(the SQL engine sums per-shard, the reference engine sums per-session),
so ``score == other`` is order-dependent. Ranking code must compare
through the tie envelope helpers in :mod:`repro.core.floatcmp`, which
use the differential oracle's relative epsilon.
"""

from __future__ import annotations

import ast
import re
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import register

if TYPE_CHECKING:
    from repro.analysis.config import AnalysisConfig
    from repro.analysis.engine import ParsedModule

#: identifiers that name score-like float quantities in this codebase.
_SCORE_NAME_RE = re.compile(
    r"(?:^|_)(?:score|scores|similarity|sim|weight|weights|match|idf|"
    r"decay|boost|rank_value)(?:_|$)|(?:^|_)(?:scored|weighted)(?:_|$)",
    re.IGNORECASE,
)


def _is_score_name(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return bool(_SCORE_NAME_RE.search(node.id))
    if isinstance(node, ast.Attribute):
        return bool(_SCORE_NAME_RE.search(node.attr))
    return False


def _is_float_constant(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


@register
class FloatEqualityRule:
    rule_id = "SRN002"
    name = "float-equality"
    rationale = (
        "Exact ==/!= on float scores is evaluation-order dependent; the "
        "reference and SQL engines sum in different orders, so ties must "
        "go through repro.core.floatcmp's relative-epsilon envelope."
    )

    def check_module(
        self, module: "ParsedModule", config: "AnalysisConfig"
    ) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[index], operands[index + 1]
                if not self._float_equality(left, right):
                    continue
                op_text = "==" if isinstance(op, ast.Eq) else "!="
                yield Diagnostic(
                    module.relpath,
                    node.lineno,
                    node.col_offset,
                    self.rule_id,
                    f"exact float {op_text} on a score expression; use "
                    "repro.core.floatcmp.scores_tied/scores_differ/"
                    "is_zero_score instead",
                )

    @staticmethod
    def _float_equality(left: ast.expr, right: ast.expr) -> bool:
        # flag `<anything> == 0.5`-style float-literal comparisons and
        # `score == other` comparisons between score-named expressions.
        # A non-float constant operand (string/int/None sentinel) means
        # this is not a float comparison, whatever the names say.
        if _is_float_constant(left) or _is_float_constant(right):
            return True
        if any(isinstance(operand, ast.Constant) for operand in (left, right)):
            return False
        return _is_score_name(left) or _is_score_name(right)

    def finalize(
        self, modules: "Iterable[ParsedModule]", config: "AnalysisConfig"
    ) -> Iterator[Diagnostic]:
        return iter(())
