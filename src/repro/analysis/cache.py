"""On-disk per-file result cache keyed by content hash.

CI lint time must stay flat as the tree grows, so the engine caches the
expensive per-file work — parsing, the per-module rule phase, and the
module summary — keyed by:

* the sha256 of the file's bytes (a content edit invalidates only that
  file), and
* a run *fingerprint* covering the engine/summary schema versions, the
  registered rule ids, and the scoping/options configuration (any rule
  or config change invalidates everything — stale summaries are worse
  than a cold run).

The interprocedural phase is deliberately **not** cached: it is
recomputed from summaries every run, which is what keeps cross-module
findings correct when one file of a call chain changes while its peers
are cache-hits. One entry is one JSON file named by the sha256 of the
repo-relative path, so entries never collide and a cache wipe is just
``rm -r``. Corrupt or unreadable entries degrade to a cache miss.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.summaries import SUMMARY_VERSION, ModuleSummary
from repro.analysis.suppress import Suppression

CACHE_SCHEMA_VERSION = 1


def content_hash(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


_PACKAGE_FINGERPRINT: str | None = None


def package_fingerprint() -> str:
    """Hash of the analysis package's own source.

    Folding this into the run fingerprint means editing a rule (or the
    engine, or the summary schema) invalidates every cache entry — the
    cache can never replay findings a deleted check produced.
    """
    global _PACKAGE_FINGERPRINT
    if _PACKAGE_FINGERPRINT is None:
        root = Path(__file__).parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(path.relative_to(root).as_posix().encode("utf-8"))
            digest.update(path.read_bytes())
        _PACKAGE_FINGERPRINT = digest.hexdigest()
    return _PACKAGE_FINGERPRINT


def run_fingerprint(
    rule_ids: list[str],
    config_payload: dict[str, Any],
    engine_version: int,
) -> str:
    """Hash of everything besides file content that affects per-file results."""
    payload = {
        "cache_schema": CACHE_SCHEMA_VERSION,
        "summary_version": SUMMARY_VERSION,
        "engine_version": engine_version,
        "package": package_fingerprint(),
        "rules": sorted(rule_ids),
        "config": config_payload,
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    ).hexdigest()


@dataclass
class CacheEntry:
    """The cached result of analyzing one file."""

    relpath: str
    #: per-module rule findings (before suppression/baselining).
    findings: list[Diagnostic]
    #: SRN000 problems found while parsing (bad suppressions etc.).
    problems: list[Diagnostic]
    suppressions: list[Suppression]
    summary: ModuleSummary


def _diag_to_dict(diag: Diagnostic) -> dict[str, Any]:
    return {
        "path": diag.path,
        "line": diag.line,
        "column": diag.column,
        "rule": diag.rule,
        "message": diag.message,
    }


def _diag_from_dict(payload: dict[str, Any]) -> Diagnostic:
    return Diagnostic(
        payload["path"],
        payload["line"],
        payload["column"],
        payload["rule"],
        payload["message"],
    )


class SummaryCache:
    """One directory of per-file JSON entries under a shared fingerprint."""

    def __init__(self, directory: Path, fingerprint: str) -> None:
        self.directory = directory
        self.fingerprint = fingerprint
        self.hits = 0
        self.misses = 0

    def _entry_path(self, relpath: str) -> Path:
        name = hashlib.sha256(relpath.encode("utf-8")).hexdigest()
        return self.directory / f"{name}.json"

    def load(self, relpath: str, file_hash: str) -> CacheEntry | None:
        """The cached entry for this exact content, or None."""
        path = self._entry_path(relpath)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (
            payload.get("fingerprint") != self.fingerprint
            or payload.get("content_hash") != file_hash
            or payload.get("relpath") != relpath
        ):
            self.misses += 1
            return None
        try:
            entry = CacheEntry(
                relpath=relpath,
                findings=[_diag_from_dict(d) for d in payload["findings"]],
                problems=[_diag_from_dict(d) for d in payload["problems"]],
                suppressions=[
                    Suppression(
                        line=s["line"],
                        rules=tuple(s["rules"]),
                        reason=s["reason"],
                    )
                    for s in payload["suppressions"]
                ],
                summary=ModuleSummary.from_dict(payload["summary"]),
            )
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def store(self, entry: CacheEntry, file_hash: str) -> None:
        """Persist one file's results; failures are non-fatal."""
        payload = {
            "fingerprint": self.fingerprint,
            "content_hash": file_hash,
            "relpath": entry.relpath,
            "findings": [_diag_to_dict(d) for d in entry.findings],
            "problems": [_diag_to_dict(d) for d in entry.problems],
            "suppressions": [
                {"line": s.line, "rules": list(s.rules), "reason": s.reason}
                for s in entry.suppressions
            ],
            "summary": entry.summary.to_dict(),
        }
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            path = self._entry_path(entry.relpath)
            tmp = path.with_suffix(".tmp")
            tmp.write_text(
                json.dumps(payload, sort_keys=True), encoding="utf-8"
            )
            tmp.replace(path)
        except OSError:
            pass  # a read-only checkout just runs cold every time
