"""``python -m repro.analysis`` — the serenade-lint CLI.

Exit codes: 0 clean, 1 findings, 2 usage/configuration error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.baseline import Baseline
from repro.analysis.config import AnalysisConfig, discover_config, load_config
from repro.analysis.engine import analyze_paths, iter_rule_docs


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="serenade-lint: project-invariant static analysis",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the per-file result cache",
    )
    parser.add_argument(
        "--config",
        metavar="PYPROJECT",
        help="explicit pyproject.toml (default: discovered from first path)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report findings even when baselined",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline file from current findings and exit",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for rule_id, name, rationale in iter_rule_docs():
            print(f"{rule_id} {name}")
            print(f"    {rationale}")
        return 0

    try:
        if args.config:
            config: AnalysisConfig = load_config(args.config)
        else:
            config = discover_config(Path(args.paths[0]))
    except (OSError, ValueError) as error:
        print(f"error: cannot load config: {error}", file=sys.stderr)
        return 2

    try:
        report = analyze_paths(
            args.paths,
            config,
            use_baseline=not args.no_baseline,
            use_cache=not args.no_cache,
        )
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.update_baseline:
        baseline_path = config.baseline_path()
        if baseline_path is None:
            print("error: no baseline file configured", file=sys.stderr)
            return 2
        Baseline.from_findings(report.raw_findings).save(baseline_path)
        print(
            f"wrote {baseline_path} with "
            f"{len(report.raw_findings)} entr(y/ies)"
        )
        return 0

    if args.format == "json":
        print(report.render_json())
    elif args.format == "sarif":
        print(report.render_sarif())
    else:
        print(report.render_text())
    return 0 if report.clean else 1


if __name__ == "__main__":
    sys.exit(main())
