"""The finding type shared by every rule and output format."""

from __future__ import annotations

from dataclasses import asdict, dataclass

#: Rule id of meta findings (parse errors, suppression/baseline misuse).
#: SRN000 findings are never suppressible and never baselined.
META_RULE = "SRN000"


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: a rule violated at a position in a file.

    Ordering is (path, line, column, rule, message), which is also the
    report order — deterministic across runs and machines.
    """

    path: str  #: repo-relative POSIX path
    line: int  #: 1-based line
    column: int  #: 0-based column (ast convention)
    rule: str  #: e.g. ``"SRN001"``
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.column}: {self.rule} {self.message}"

    def to_json(self) -> dict[str, object]:
        return asdict(self)

    @property
    def suppressible(self) -> bool:
        return self.rule != META_RULE
