"""The analysis engine: parse once, cache per file, run scoped rules.

Flow per run:

1. Collect ``.py`` files (explicit files verbatim, directories walked
   recursively, ``__pycache__``/hidden dirs skipped).
2. For each file, consult the content-hash cache. A hit replays the
   stored per-module findings, suppressions and
   :class:`~repro.analysis.summaries.ModuleSummary` without parsing; a
   miss parses the file into a :class:`ParsedModule` (AST, source lines,
   import-alias map, inline suppressions), runs every covered rule's
   ``check_module``, builds the summary, and stores the entry.
3. Run the interprocedural phase: each rule's optional
   ``project(summaries, config)`` hook over the summaries its path scope
   covers. This phase is recomputed every run — it is cheap relative to
   parsing, and recomputing it is what keeps cross-module findings
   correct when only one file of a call chain changed. (The legacy
   ``finalize(modules, config)`` hook still runs, but only over the
   modules parsed *this* run — rules needing project state must use
   ``project``.)
4. Drop findings silenced by a same-line suppression, then findings
   absorbed by the committed baseline.
5. Emit SRN000 meta findings: parse errors, malformed or unused
   suppressions, unused baseline entries.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.analysis.baseline import Baseline
from repro.analysis.cache import CacheEntry, SummaryCache, content_hash, run_fingerprint
from repro.analysis.config import AnalysisConfig
from repro.analysis.diagnostics import META_RULE, Diagnostic
from repro.analysis.registry import all_rules
from repro.analysis.summaries import ModuleSummary, build_module_summary
from repro.analysis.suppress import (
    Suppression,
    scan_suppressions,
    unused_suppression_findings,
)

REPORT_VERSION = 2


@dataclass
class ParsedModule:
    """One source file, parsed once and shared by every rule."""

    path: Path
    relpath: str
    tree: ast.Module
    source_lines: list[str]
    #: local name -> fully qualified name, from import statements.
    #: ``import time`` -> {"time": "time"}; ``from time import monotonic as m``
    #: -> {"m": "time.monotonic"}; ``import numpy as np`` -> {"np": "numpy"}.
    aliases: dict[str, str] = field(default_factory=dict)
    suppressions: list[Suppression] = field(default_factory=list)

    def qualified_name(self, node: ast.AST) -> str | None:
        """Resolve a Name/Attribute chain to a dotted name, alias-expanded.

        ``np.random.seed`` with ``import numpy as np`` resolves to
        ``numpy.random.seed``. Returns ``None`` for non-name expressions
        (calls, subscripts) anywhere in the chain.
        """
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        parts.append(current.id)
        parts.reverse()
        head = self.aliases.get(parts[0], parts[0])
        return ".".join([head, *parts[1:]])


@dataclass
class AnalysisReport:
    """Everything one run produced, ready to render."""

    findings: list[Diagnostic]
    suppressed: int
    baselined: int
    files: int
    rules: list[str]
    #: findings after suppression but before baselining (--update-baseline).
    raw_findings: list[Diagnostic] = field(default_factory=list)
    #: files parsed and rule-checked this run (cache misses + cold files).
    analyzed: int = 0
    #: files replayed from the content-hash cache.
    cached: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def render_text(self) -> str:
        lines = [finding.render() for finding in self.findings]
        lines.append(
            f"{len(self.findings)} finding(s) in {self.files} file(s) "
            f"({self.analyzed} analyzed, {self.cached} cached, "
            f"{self.suppressed} suppressed, {self.baselined} baselined)"
        )
        return "\n".join(lines)

    def render_json(self) -> str:
        payload = {
            "version": REPORT_VERSION,
            "tool": "serenade-lint",
            "findings": [finding.to_json() for finding in self.findings],
            "counts": {
                "findings": len(self.findings),
                "suppressed": self.suppressed,
                "baselined": self.baselined,
                "files": self.files,
                "analyzed": self.analyzed,
                "cached": self.cached,
            },
            "rules": self.rules,
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    def render_sarif(self) -> str:
        from repro.analysis.sarif import render_sarif

        return render_sarif(self)


def collect_files(paths: Sequence[str | Path], config: AnalysisConfig) -> list[Path]:
    """Expand the CLI path arguments into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            files.add(path.resolve())
            continue
        if not path.is_dir():
            raise FileNotFoundError(f"no such file or directory: {path}")
        for candidate in sorted(path.rglob("*.py")):
            if any(
                part == "__pycache__" or part.startswith(".")
                for part in candidate.parts
            ):
                continue
            files.add(candidate.resolve())
    return sorted(
        path for path in files if not config.is_excluded(config.relpath(path))
    )


def parse_module(
    path: Path, config: AnalysisConfig, source: str | None = None
) -> tuple[ParsedModule | None, list[Diagnostic]]:
    """Parse one file; on syntax error return a meta finding instead."""
    relpath = config.relpath(path)
    if source is None:
        source = path.read_text(encoding="utf-8")
    source_lines = source.splitlines()
    suppressions, problems = scan_suppressions(relpath, source_lines)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        problems.append(
            Diagnostic(
                relpath,
                error.lineno or 1,
                (error.offset or 1) - 1,
                META_RULE,
                f"syntax error: {error.msg}",
            )
        )
        return None, problems
    module = ParsedModule(
        path=path,
        relpath=relpath,
        tree=tree,
        source_lines=source_lines,
        aliases=_collect_aliases(tree),
        suppressions=suppressions,
    )
    return module, problems


def _collect_aliases(tree: ast.Module) -> dict[str, str]:
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                local = name.asname or name.name.split(".", 1)[0]
                target = name.name if name.asname else local
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue  # relative imports never reach stdlib clock/rng
            for name in node.names:
                if name.name == "*":
                    continue
                local = name.asname or name.name
                aliases[local] = f"{node.module}.{name.name}"
    return aliases


def analyze_paths(
    paths: Sequence[str | Path],
    config: AnalysisConfig,
    *,
    use_baseline: bool = True,
    use_cache: bool = True,
) -> AnalysisReport:
    """Run every registered rule over ``paths`` and build the report."""
    files = collect_files(paths, config)
    rules = [cls() for cls in all_rules()]

    cache: SummaryCache | None = None
    cache_dir = config.cache_dir()
    if use_cache and cache_dir is not None:
        cache = SummaryCache(
            cache_dir,
            run_fingerprint(
                [rule.rule_id for rule in rules],
                config.fingerprint_payload(),
                REPORT_VERSION,
            ),
        )

    meta: list[Diagnostic] = []
    raw: list[Diagnostic] = []
    modules: list[ParsedModule] = []  # parsed this run (cache misses)
    summaries: list[ModuleSummary] = []  # every file, cached or fresh
    suppressions_by_path: dict[str, list[Suppression]] = {}
    analyzed = 0
    cached = 0

    for path in files:
        relpath = config.relpath(path)
        source = path.read_text(encoding="utf-8")
        file_hash = content_hash(source.encode("utf-8"))
        if cache is not None:
            entry = cache.load(relpath, file_hash)
            if entry is not None:
                raw.extend(entry.findings)
                meta.extend(entry.problems)
                summaries.append(entry.summary)
                suppressions_by_path[relpath] = entry.suppressions
                cached += 1
                continue
        module, problems = parse_module(path, config, source)
        analyzed += 1
        meta.extend(problems)
        file_findings: list[Diagnostic] = []
        suppressions: list[Suppression] = []
        if module is None:
            summary = ModuleSummary(relpath=relpath, module_name=None)
        else:
            modules.append(module)
            suppressions = module.suppressions
            summary = build_module_summary(module)
            for rule in rules:
                if config.rule_applies(rule.rule_id, relpath):
                    file_findings.extend(rule.check_module(module, config))
        summaries.append(summary)
        suppressions_by_path[relpath] = suppressions
        raw.extend(file_findings)
        if cache is not None:
            cache.store(
                CacheEntry(
                    relpath=relpath,
                    findings=file_findings,
                    problems=problems,
                    suppressions=suppressions,
                    summary=summary,
                ),
                file_hash,
            )

    # Interprocedural phase — always recomputed from summaries.
    for rule in rules:
        project = getattr(rule, "project", None)
        if project is not None:
            covered_summaries = [
                summary
                for summary in summaries
                if config.rule_applies(rule.rule_id, summary.relpath)
            ]
            raw.extend(project(covered_summaries, config))
        finalize = getattr(rule, "finalize", None)
        if finalize is not None:
            covered = [
                module
                for module in modules
                if config.rule_applies(rule.rule_id, module.relpath)
            ]
            raw.extend(finalize(covered, config))

    survived, suppressed = _apply_suppressions(raw, suppressions_by_path)
    unbaselined = sorted(survived)

    baselined = 0
    if use_baseline:
        baseline_path = config.baseline_path()
        baseline = (
            Baseline.load(baseline_path) if baseline_path is not None else Baseline()
        )
        survived, baselined, unused_entries = baseline.apply(survived)
        meta.extend(unused_entries)

    for relpath, suppressions in suppressions_by_path.items():
        meta.extend(unused_suppression_findings(relpath, suppressions))

    findings = sorted(survived + meta)
    return AnalysisReport(
        findings=findings,
        suppressed=suppressed,
        baselined=baselined,
        files=len(files),
        rules=[rule.rule_id for rule in rules],
        raw_findings=unbaselined,
        analyzed=analyzed,
        cached=cached,
    )


def _apply_suppressions(
    findings: Iterable[Diagnostic],
    suppressions_by_path: dict[str, list[Suppression]],
) -> tuple[list[Diagnostic], int]:
    survived: list[Diagnostic] = []
    suppressed = 0
    for finding in findings:
        suppressions = suppressions_by_path.get(finding.path)
        suppression = (
            _suppression_on_line(suppressions, finding.line)
            if suppressions is not None
            else None
        )
        if (
            finding.suppressible
            and suppression is not None
            and suppression.covers(finding.rule)
        ):
            suppression.used_rules.add(finding.rule)
            suppressed += 1
        else:
            survived.append(finding)
    return survived, suppressed


def _suppression_on_line(
    suppressions: list[Suppression], line: int
) -> Suppression | None:
    for suppression in suppressions:
        if suppression.line == line:
            return suppression
    return None


def iter_rule_docs() -> Iterator[tuple[str, str, str]]:
    """(rule_id, name, rationale) for ``--list-rules`` and the docs."""
    for cls in all_rules():
        yield cls.rule_id, cls.name, cls.rationale
