"""The analysis engine: parse once, run scoped rules, filter, report.

Flow per run:

1. Collect ``.py`` files (explicit files verbatim, directories walked
   recursively, ``__pycache__``/hidden dirs skipped) and parse each once
   into a :class:`ParsedModule` carrying the AST, source lines, the
   import-alias map, and the file's inline suppressions.
2. For each registered rule, run ``check_module`` over the modules its
   path scope covers, then ``finalize`` with all covered modules (this
   is where the project-wide lock graph lives).
3. Drop findings silenced by a same-line suppression, then findings
   absorbed by the committed baseline.
4. Emit SRN000 meta findings: parse errors, malformed or unused
   suppressions, unused baseline entries.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.analysis.baseline import Baseline
from repro.analysis.config import AnalysisConfig
from repro.analysis.diagnostics import META_RULE, Diagnostic
from repro.analysis.registry import all_rules
from repro.analysis.suppress import (
    Suppression,
    scan_suppressions,
    unused_suppression_findings,
)

REPORT_VERSION = 1


@dataclass
class ParsedModule:
    """One source file, parsed once and shared by every rule."""

    path: Path
    relpath: str
    tree: ast.Module
    source_lines: list[str]
    #: local name -> fully qualified name, from import statements.
    #: ``import time`` -> {"time": "time"}; ``from time import monotonic as m``
    #: -> {"m": "time.monotonic"}; ``import numpy as np`` -> {"np": "numpy"}.
    aliases: dict[str, str] = field(default_factory=dict)
    suppressions: list[Suppression] = field(default_factory=list)

    def qualified_name(self, node: ast.AST) -> str | None:
        """Resolve a Name/Attribute chain to a dotted name, alias-expanded.

        ``np.random.seed`` with ``import numpy as np`` resolves to
        ``numpy.random.seed``. Returns ``None`` for non-name expressions
        (calls, subscripts) anywhere in the chain.
        """
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        parts.append(current.id)
        parts.reverse()
        head = self.aliases.get(parts[0], parts[0])
        return ".".join([head, *parts[1:]])


@dataclass
class AnalysisReport:
    """Everything one run produced, ready to render."""

    findings: list[Diagnostic]
    suppressed: int
    baselined: int
    files: int
    rules: list[str]
    #: findings after suppression but before baselining (--update-baseline).
    raw_findings: list[Diagnostic] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    def render_text(self) -> str:
        lines = [finding.render() for finding in self.findings]
        lines.append(
            f"{len(self.findings)} finding(s) in {self.files} file(s) "
            f"({self.suppressed} suppressed, {self.baselined} baselined)"
        )
        return "\n".join(lines)

    def render_json(self) -> str:
        payload = {
            "version": REPORT_VERSION,
            "tool": "serenade-lint",
            "findings": [finding.to_json() for finding in self.findings],
            "counts": {
                "findings": len(self.findings),
                "suppressed": self.suppressed,
                "baselined": self.baselined,
                "files": self.files,
            },
            "rules": self.rules,
        }
        return json.dumps(payload, indent=2, sort_keys=True)


def collect_files(paths: Sequence[str | Path], config: AnalysisConfig) -> list[Path]:
    """Expand the CLI path arguments into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            files.add(path.resolve())
            continue
        if not path.is_dir():
            raise FileNotFoundError(f"no such file or directory: {path}")
        for candidate in sorted(path.rglob("*.py")):
            if any(
                part == "__pycache__" or part.startswith(".")
                for part in candidate.parts
            ):
                continue
            files.add(candidate.resolve())
    return sorted(
        path for path in files if not config.is_excluded(config.relpath(path))
    )


def parse_module(
    path: Path, config: AnalysisConfig
) -> tuple[ParsedModule | None, list[Diagnostic]]:
    """Parse one file; on syntax error return a meta finding instead."""
    relpath = config.relpath(path)
    source = path.read_text(encoding="utf-8")
    source_lines = source.splitlines()
    suppressions, problems = scan_suppressions(relpath, source_lines)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        problems.append(
            Diagnostic(
                relpath,
                error.lineno or 1,
                (error.offset or 1) - 1,
                META_RULE,
                f"syntax error: {error.msg}",
            )
        )
        return None, problems
    module = ParsedModule(
        path=path,
        relpath=relpath,
        tree=tree,
        source_lines=source_lines,
        aliases=_collect_aliases(tree),
        suppressions=suppressions,
    )
    return module, problems


def _collect_aliases(tree: ast.Module) -> dict[str, str]:
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                local = name.asname or name.name.split(".", 1)[0]
                target = name.name if name.asname else local
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue  # relative imports never reach stdlib clock/rng
            for name in node.names:
                if name.name == "*":
                    continue
                local = name.asname or name.name
                aliases[local] = f"{node.module}.{name.name}"
    return aliases


def analyze_paths(
    paths: Sequence[str | Path],
    config: AnalysisConfig,
    *,
    use_baseline: bool = True,
) -> AnalysisReport:
    """Run every registered rule over ``paths`` and build the report."""
    files = collect_files(paths, config)
    meta: list[Diagnostic] = []
    modules: list[ParsedModule] = []
    for path in files:
        module, problems = parse_module(path, config)
        meta.extend(problems)
        if module is not None:
            modules.append(module)

    rules = [cls() for cls in all_rules()]
    raw: list[Diagnostic] = []
    for rule in rules:
        covered = [
            module
            for module in modules
            if config.rule_applies(rule.rule_id, module.relpath)
        ]
        for module in covered:
            raw.extend(rule.check_module(module, config))
        finalize = getattr(rule, "finalize", None)
        if finalize is not None:
            raw.extend(finalize(covered, config))

    by_path = {module.relpath: module for module in modules}
    survived, suppressed = _apply_suppressions(raw, by_path)
    unbaselined = sorted(survived)

    baselined = 0
    if use_baseline:
        baseline_path = config.baseline_path()
        baseline = (
            Baseline.load(baseline_path) if baseline_path is not None else Baseline()
        )
        survived, baselined, unused_entries = baseline.apply(survived)
        meta.extend(unused_entries)

    for module in modules:
        meta.extend(unused_suppression_findings(module.relpath, module.suppressions))

    findings = sorted(survived + meta)
    return AnalysisReport(
        findings=findings,
        suppressed=suppressed,
        baselined=baselined,
        files=len(files),
        rules=[rule.rule_id for rule in rules],
        raw_findings=unbaselined,
    )


def _apply_suppressions(
    findings: Iterable[Diagnostic], by_path: dict[str, ParsedModule]
) -> tuple[list[Diagnostic], int]:
    survived: list[Diagnostic] = []
    suppressed = 0
    for finding in findings:
        module = by_path.get(finding.path)
        suppression = (
            _suppression_on_line(module.suppressions, finding.line)
            if module is not None
            else None
        )
        if (
            finding.suppressible
            and suppression is not None
            and suppression.covers(finding.rule)
        ):
            suppression.used_rules.add(finding.rule)
            suppressed += 1
        else:
            survived.append(finding)
    return survived, suppressed


def _suppression_on_line(
    suppressions: list[Suppression], line: int
) -> Suppression | None:
    for suppression in suppressions:
        if suppression.line == line:
            return suppression
    return None


def iter_rule_docs() -> Iterator[tuple[str, str, str]]:
    """(rule_id, name, rationale) for ``--list-rules`` and the docs."""
    for cls in all_rules():
        yield cls.rule_id, cls.name, cls.rationale
