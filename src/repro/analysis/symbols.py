"""Project-wide symbol collection shared by every interprocedural rule.

Historically each rule re-derived what it needed from the AST; the class
collector below started life inside SRN004 (lock discipline) and was
hoisted here when the dataflow engine arrived, because the call graph,
the buffer rules and the summaries all need the same facts:

* :func:`collect_class_info` — one :class:`ClassInfo` per class:
  declared locks, ``@guarded_by``/``@holds_lock`` metadata,
  ``@frozen_buffers``/``@happens_before`` contracts, methods, and the
  ``self.attr`` → class-name type hints used for alias-aware call
  resolution;
* :func:`module_name_for` — the dotted import path a repo-relative
  source file denotes (``src/repro/serving/app.py`` →
  ``repro.serving.app``), which is how cross-module call targets are
  matched against import aliases;
* small AST helpers (:func:`self_attr`, :func:`decorator_call`,
  :func:`annotation_class`) reused verbatim by the rules.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.analysis.engine import ParsedModule

_LOCK_CONSTRUCTORS = {
    "threading.Lock": "lock",
    "threading.RLock": "rlock",
    "threading.Condition": "rlock",  # Condition wraps an RLock by default
}

INIT_METHODS = frozenset({"__init__", "__post_init__", "__enter__"})

FunctionDefs = (ast.FunctionDef, ast.AsyncFunctionDef)


@dataclass
class ClassInfo:
    """Everything the interprocedural rules need to know about one class."""

    name: str
    relpath: str
    node: ast.ClassDef
    lock_attrs: set[str] = field(default_factory=set)
    rlock_attrs: set[str] = field(default_factory=set)
    #: attribute -> lock attribute guarding it (from @guarded_by).
    guarded: dict[str, str] = field(default_factory=dict)
    #: method name -> lock attrs the caller must hold (from @holds_lock).
    holds: dict[str, set[str]] = field(default_factory=dict)
    methods: dict[str, ast.FunctionDef] = field(default_factory=dict)
    #: attribute -> class name, inferred from ``self.x = ClassName(...)``.
    attr_types: dict[str, str] = field(default_factory=dict)
    #: buffer attributes declared immutable-after-init (@frozen_buffers).
    frozen_buffers: tuple[str, ...] = ()
    #: (first, second) call orderings declared with @happens_before.
    ordering: tuple[tuple[str, str], ...] = ()

    @property
    def all_locks(self) -> set[str]:
        return self.lock_attrs | self.rlock_attrs

    def lock_node(self, lock_attr: str) -> str:
        return f"{self.name}.{lock_attr}"


def self_attr(node: ast.AST) -> str | None:
    """``self.X`` -> ``"X"``; anything else -> ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def string_args(call: ast.Call) -> list[str]:
    return [
        arg.value
        for arg in call.args
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str)
    ]


def decorator_call(node: ast.expr, name: str) -> ast.Call | None:
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id == name:
            return node
        if isinstance(func, ast.Attribute) and func.attr == name:
            return node
    return None


def annotation_class(annotation: ast.expr | None) -> str | None:
    """Class name from a simple annotation (``B``, ``mod.B``, ``"B"``)."""
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        leaf = annotation.value.strip().rsplit(".", 1)[-1]
    elif isinstance(annotation, ast.Name):
        leaf = annotation.id
    elif isinstance(annotation, ast.Attribute):
        leaf = annotation.attr
    else:
        return None
    if leaf[:1].isupper() and leaf.isidentifier():
        return leaf
    return None


def module_name_for(relpath: str) -> str | None:
    """Dotted import path of a repo-relative source file, if derivable.

    ``src/repro/serving/app.py`` → ``repro.serving.app``;
    ``src/repro/core/__init__.py`` → ``repro.core``. Files outside a
    ``src/`` layout fall back to their path with slashes as dots, which
    keeps same-module resolution working for fixture trees.
    """
    if not relpath.endswith(".py"):
        return None
    parts = relpath[: -len(".py")].split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if not parts:
        return None
    return ".".join(parts)


def collect_class_info(module: "ParsedModule") -> list[ClassInfo]:
    """Per-class lock/contract/type facts (originally SRN004's collector)."""
    infos: list[ClassInfo] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        info = ClassInfo(name=node.name, relpath=module.relpath, node=node)
        frozen: list[str] = []
        ordering: list[tuple[str, str]] = []
        for decorator in node.decorator_list:
            call = decorator_call(decorator, "guarded_by")
            if call is not None:
                names = string_args(call)
                if names:
                    lock_attr, *attrs = names
                    for attr in attrs:
                        info.guarded[attr] = lock_attr
            call = decorator_call(decorator, "frozen_buffers")
            if call is not None:
                frozen.extend(string_args(call))
            call = decorator_call(decorator, "happens_before")
            if call is not None:
                names = string_args(call)
                if len(names) == 2:
                    ordering.append((names[0], names[1]))
        info.frozen_buffers = tuple(dict.fromkeys(frozen))
        info.ordering = tuple(dict.fromkeys(ordering))
        for item in node.body:
            if not isinstance(item, FunctionDefs):
                continue
            info.methods[item.name] = item
            for decorator in item.decorator_list:
                call = decorator_call(decorator, "holds_lock")
                if call is not None:
                    info.holds.setdefault(item.name, set()).update(
                        string_args(call)
                    )
            param_types: dict[str, str] = {}
            if item.name == "__init__":
                for arg in [*item.args.posonlyargs, *item.args.args]:
                    leaf = annotation_class(arg.annotation)
                    if leaf is not None:
                        param_types[arg.arg] = leaf
            for stmt in ast.walk(item):
                targets: list[ast.expr]
                value: ast.expr | None
                if isinstance(stmt, ast.Assign):
                    targets, value = stmt.targets, stmt.value
                elif isinstance(stmt, ast.AnnAssign):
                    targets, value = [stmt.target], stmt.value
                else:
                    continue
                annotated = (
                    annotation_class(stmt.annotation)
                    if isinstance(stmt, ast.AnnAssign)
                    else None
                )
                for target in targets:
                    attr = self_attr(target)
                    if attr is None:
                        continue
                    if isinstance(value, ast.Call):
                        qualified = module.qualified_name(value.func)
                        kind = _LOCK_CONSTRUCTORS.get(qualified or "")
                        if kind == "lock":
                            info.lock_attrs.add(attr)
                            continue
                        if kind == "rlock":
                            info.rlock_attrs.add(attr)
                            continue
                        if qualified is not None and item.name == "__init__":
                            leaf = qualified.rsplit(".", 1)[-1]
                            if leaf[:1].isupper():
                                info.attr_types[attr] = leaf
                                continue
                    if item.name != "__init__":
                        continue
                    if annotated is not None:
                        info.attr_types.setdefault(attr, annotated)
                    elif isinstance(value, ast.Name) and value.id in param_types:
                        info.attr_types.setdefault(attr, param_types[value.id])
        infos.append(info)
    return infos
