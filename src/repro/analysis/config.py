"""Per-path rule configuration, loaded from ``[tool.serenade-lint]``.

The configuration lives in ``pyproject.toml`` so the scoping decisions
(which layers each invariant covers) are reviewed like code::

    [tool.serenade-lint]
    baseline = "serenade-lint-baseline.json"
    exclude = ["src/repro/baselines"]

    [tool.serenade-lint.rules.SRN001]
    paths = ["src/repro/serving", "src/repro/core"]

A rule with no ``paths`` entry applies everywhere (minus ``exclude``).
Python 3.10 has no ``tomllib``; a minimal TOML-subset reader covers the
table/string/list/bool/number shapes this section uses.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Any

SECTION = "serenade-lint"
DEFAULT_BASELINE = "serenade-lint-baseline.json"
DEFAULT_CACHE = ".serenade-lint-cache"


@dataclass
class AnalysisConfig:
    """Resolved configuration for one analysis run."""

    #: directory repo-relative paths are resolved against.
    root: Path = field(default_factory=Path.cwd)
    #: baseline file path (relative to root); ``None`` disables baselining.
    baseline: str | None = DEFAULT_BASELINE
    #: path prefixes excluded from every rule.
    exclude: tuple[str, ...] = ()
    #: rule id -> path prefixes the rule is scoped to (empty = everywhere).
    rule_paths: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: rule id -> free-form options (rule-specific knobs).
    rule_options: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: per-file result cache directory (relative to root); ``None``
    #: disables caching. Configs built in code default to disabled so
    #: fixture/unit runs never write cache directories; ``load_config``
    #: defaults it on.
    cache: str | None = None

    def relpath(self, path: Path) -> str:
        """Repo-relative POSIX form of ``path`` (absolute if outside root)."""
        try:
            rel = path.resolve().relative_to(self.root.resolve())
        except ValueError:
            return path.resolve().as_posix()
        return rel.as_posix()

    def is_excluded(self, relpath: str) -> bool:
        return any(_under(relpath, prefix) for prefix in self.exclude)

    def rule_applies(self, rule_id: str, relpath: str) -> bool:
        """Does ``rule_id`` cover the file at ``relpath``?"""
        if self.is_excluded(relpath):
            return False
        scoped = self.rule_paths.get(rule_id)
        if not scoped:
            return True
        return any(_under(relpath, prefix) for prefix in scoped)

    def baseline_path(self) -> Path | None:
        if self.baseline is None:
            return None
        return self.root / self.baseline

    def option(self, rule_id: str, key: str, default: Any = None) -> Any:
        return self.rule_options.get(rule_id, {}).get(key, default)

    def cache_dir(self) -> Path | None:
        if self.cache is None:
            return None
        return self.root / self.cache

    def fingerprint_payload(self) -> dict[str, Any]:
        """The config facets that affect per-file results (cache key input)."""
        return {
            "exclude": list(self.exclude),
            "rule_paths": {
                rule: list(paths)
                for rule, paths in sorted(self.rule_paths.items())
            },
            "rule_options": {
                rule: dict(sorted(options.items()))
                for rule, options in sorted(self.rule_options.items())
            },
        }


def _under(relpath: str, prefix: str) -> bool:
    """Is ``relpath`` the prefix path itself or inside it?"""
    pure = PurePosixPath(relpath)
    pure_prefix = PurePosixPath(prefix)
    return pure == pure_prefix or pure.is_relative_to(pure_prefix)


def load_config(pyproject: str | Path) -> AnalysisConfig:
    """Load ``[tool.serenade-lint]`` from a pyproject file."""
    pyproject = Path(pyproject)
    payload = _load_toml(pyproject)
    section = payload.get("tool", {}).get(SECTION, {})
    rules = section.get("rules", {})
    rule_paths: dict[str, tuple[str, ...]] = {}
    rule_options: dict[str, dict[str, Any]] = {}
    for rule_id, options in rules.items():
        options = dict(options)
        paths = options.pop("paths", [])
        if paths:
            rule_paths[rule_id] = tuple(str(p) for p in paths)
        if options:
            rule_options[rule_id] = options
    cache = section.get("cache", DEFAULT_CACHE)
    if cache is False:  # `cache = false` opts a repo out
        cache = None
    return AnalysisConfig(
        root=pyproject.parent,
        baseline=section.get("baseline", DEFAULT_BASELINE),
        exclude=tuple(str(p) for p in section.get("exclude", [])),
        rule_paths=rule_paths,
        rule_options=rule_options,
        cache=str(cache) if cache is not None else None,
    )


def discover_config(start: str | Path) -> AnalysisConfig:
    """Find the nearest ``pyproject.toml`` at or above ``start``.

    Falls back to a default config rooted at ``start`` (all rules
    everywhere, no baseline) when no pyproject declares the section.
    """
    start = Path(start).resolve()
    if start.is_file():
        start = start.parent
    for directory in (start, *start.parents):
        candidate = directory / "pyproject.toml"
        if candidate.is_file():
            config = load_config(candidate)
            return config
    return AnalysisConfig(root=start, baseline=None)


# -- TOML loading -------------------------------------------------------------


def _load_toml(path: Path) -> dict[str, Any]:
    text = path.read_text(encoding="utf-8")
    try:
        import tomllib
    except ImportError:  # Python 3.10: stdlib tomllib arrived in 3.11
        return _parse_minimal_toml(text)
    return tomllib.loads(text)


_TABLE_RE = re.compile(r"^\[([^\]]+)\]\s*$")
_KEY_RE = re.compile(r"^([A-Za-z0-9_.\"'-]+)\s*=\s*(.+)$")


def _parse_minimal_toml(text: str) -> dict[str, Any]:
    """A TOML subset reader: tables, strings, string lists, bools, numbers.

    Good enough for the ``[tool.serenade-lint]`` section (and the other
    flat tables of this repo's pyproject); not a general TOML parser —
    multi-line values and inline tables are out of scope and raise.
    """
    root: dict[str, Any] = {}
    current = root
    pending: str | None = None
    for raw in text.splitlines():
        line = raw.strip()
        if pending is not None:
            pending += " " + line
            if _balanced(pending):
                key, value = pending.split("=", 1)
                current[_unquote(key.strip())] = _parse_value(value.strip())
                pending = None
            continue
        if not line or line.startswith("#"):
            continue
        table = _TABLE_RE.match(line)
        if table:
            name = table.group(1).strip()
            if name.startswith("["):  # array-of-tables [[x]] unsupported
                raise ValueError(f"unsupported TOML construct: {line!r}")
            current = root
            for part in _split_table_name(name):
                current = current.setdefault(part, {})
            continue
        entry = _KEY_RE.match(line)
        if entry:
            value_text = entry.group(2).strip()
            if not _balanced(value_text):
                pending = line
                continue
            current[_unquote(entry.group(1).strip())] = _parse_value(value_text)
            continue
        raise ValueError(f"unsupported TOML line: {line!r}")
    if pending is not None:
        raise ValueError(f"unterminated TOML value: {pending!r}")
    return root


def _split_table_name(name: str) -> list[str]:
    parts: list[str] = []
    token = ""
    quote: str | None = None
    for char in name:
        if quote:
            if char == quote:
                quote = None
            else:
                token += char
        elif char in ("'", '"'):
            quote = char
        elif char == ".":
            parts.append(token.strip())
            token = ""
        else:
            token += char
    parts.append(token.strip())
    return [part for part in parts if part]


def _balanced(value: str) -> bool:
    """Are all brackets/quotes of a (single-line joined) value closed?"""
    depth = 0
    quote: str | None = None
    for char in value:
        if quote:
            if char == quote:
                quote = None
        elif char in ("'", '"'):
            quote = char
        elif char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        elif char == "#" and depth == 0:
            break
    return depth <= 0 and quote is None


def _strip_comment(value: str) -> str:
    out = ""
    quote: str | None = None
    for char in value:
        if quote:
            if char == quote:
                quote = None
        elif char in ("'", '"'):
            quote = char
        elif char == "#":
            break
        out += char
    return out.strip()


def _parse_value(value: str) -> Any:
    value = _strip_comment(value)
    if value.startswith("["):
        inner = value.strip()[1:-1].strip()
        if not inner:
            return []
        return [_parse_value(item) for item in _split_items(inner)]
    if value in ("true", "false"):
        return value == "true"
    if value and (value[0] in "\"'"):
        return _unquote(value)
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        pass
    raise ValueError(f"unsupported TOML value: {value!r}")


def _split_items(inner: str) -> list[str]:
    items: list[str] = []
    token = ""
    depth = 0
    quote: str | None = None
    for char in inner:
        if quote:
            token += char
            if char == quote:
                quote = None
        elif char in ("'", '"'):
            token += char
            quote = char
        elif char == "[":
            depth += 1
            token += char
        elif char == "]":
            depth -= 1
            token += char
        elif char == "," and depth == 0:
            if token.strip():
                items.append(token.strip())
            token = ""
        else:
            token += char
    if token.strip():
        items.append(token.strip())
    return items


def _unquote(text: str) -> str:
    text = text.strip()
    if len(text) >= 2 and text[0] in "\"'" and text[-1] == text[0]:
        return text[1:-1]
    return text
