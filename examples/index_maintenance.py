"""Index lifecycle beyond the paper: incremental daily maintenance and a
compressed query-time index (both proposed as future work in §7 and
implemented here).

Run with::

    python examples/index_maintenance.py
"""

from __future__ import annotations

import time

from repro.core import VMISKNN
from repro.data import SECONDS_PER_DAY, generate_clickstream
from repro.index import (
    CompressedSessionIndex,
    IncrementalIndexer,
    build_index,
    compression_ratio,
)


def main() -> None:
    log = generate_clickstream(
        num_sessions=20_000, num_items=2_000, days=14, seed=5
    )
    _, last = log.time_range()
    history, new_day = log.split_at(last - SECONDS_PER_DAY)
    print(
        f"history: {len(history):,} clicks; "
        f"new day: {len(new_day):,} clicks"
    )

    # --- incremental maintenance vs daily full rebuild --------------------
    indexer = IncrementalIndexer(max_sessions_per_item=500)
    indexer.apply_batch(list(history))

    started = time.perf_counter()
    added = indexer.apply_batch(list(new_day))
    incremental = time.perf_counter() - started

    started = time.perf_counter()
    rebuilt = build_index(list(log), max_sessions_per_item=500)
    rebuild = time.perf_counter() - started

    identical = (
        indexer.index.item_to_sessions == rebuilt.item_to_sessions
        and indexer.index.session_timestamps == rebuilt.session_timestamps
    )
    print(
        f"\nincremental ingest of {added:,} sessions: "
        f"{incremental * 1e3:.0f} ms; full rebuild: {rebuild * 1e3:.0f} ms "
        f"({rebuild / incremental:.1f}x); results identical: {identical}"
    )

    # --- compressed query-time index --------------------------------------
    compressed = CompressedSessionIndex.from_index(indexer.index)
    ratio = compression_ratio(indexer.index, compressed)
    print(f"\ncompression ratio: {ratio:.2f}x")

    plain_model = VMISKNN(indexer.index, m=500, k=100)
    compressed_model = VMISKNN(compressed, m=500, k=100)
    session = [10, 11, 42]
    plain = [s.item_id for s in plain_model.recommend(session, 5)]
    packed = [s.item_id for s in compressed_model.recommend(session, 5)]
    print(f"recommendations identical on compressed index: {plain == packed}")

    started = time.perf_counter()
    for _ in range(200):
        plain_model.recommend(session, 21)
    plain_time = time.perf_counter() - started
    started = time.perf_counter()
    for _ in range(200):
        compressed_model.recommend(session, 21)
    compressed_time = time.perf_counter() - started
    print(
        f"query latency: plain {plain_time / 200 * 1e6:.0f} us vs "
        f"compressed {compressed_time / 200 * 1e6:.0f} us "
        f"({compressed_time / plain_time:.2f}x, hot cache)"
    )


if __name__ == "__main__":
    main()
