"""Quickstart: train VMIS-kNN on a synthetic clickstream and recommend.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import VMISKNN
from repro.data import generate_clickstream, temporal_split
from repro.eval import evaluate_next_item


def main() -> None:
    # 1. A synthetic e-commerce clickstream: 5,000 sessions over 10 days.
    log = generate_clickstream(
        num_sessions=5_000, num_items=1_000, days=10, seed=42
    )
    print(
        f"generated {len(log):,} clicks, {log.num_sessions():,} sessions, "
        f"{log.num_items():,} items"
    )

    # 2. Hold out the last day, build the index from the rest.
    split = temporal_split(log, test_days=1)
    model = VMISKNN.from_clicks(list(split.train), m=500, k=100)

    # 3. Next-item recommendations for an evolving session.
    session = [17, 42]
    recommendations = model.recommend(session, how_many=5)
    print(f"\nsession {session} -> top-5 next items:")
    for rank, scored in enumerate(recommendations, start=1):
        print(f"  {rank}. item {scored.item_id:>5}  score {scored.score:.3f}")

    # 4. Offline evaluation on the held-out day (the paper's protocol).
    result = evaluate_next_item(
        model, split.test_sequences(), cutoff=20, measure_latency=True
    )
    print(f"\nevaluation over {result.predictions} predictions:")
    for metric, value in result.summary().items():
        print(f"  {metric:<9} {value:.4f}")
    print(
        f"  p90 prediction latency: "
        f"{result.latency_percentile(90) * 1e3:.2f} ms"
    )


if __name__ == "__main__":
    main()
