"""Where does the quality come from? Per-prefix-length and per-popularity
breakdowns of VMIS-kNN vs the legacy item-to-item CF — the diagnostics an
operator runs before an A/B test.

Run with::

    python examples/quality_analysis.py
"""

from __future__ import annotations

from repro.baselines import ItemKNNRecommender
from repro.core import VMISKNN
from repro.data import generate_clickstream, temporal_split
from repro.eval import breakdown_evaluation


def main() -> None:
    log = generate_clickstream(
        num_sessions=12_000, num_items=2_000, num_categories=80, days=12, seed=19
    )
    split = temporal_split(log, test_days=1)
    train = list(split.train)
    sequences = split.test_sequences()

    models = {
        "VMIS-kNN": VMISKNN.from_clicks(train, m=500, k=100),
        "legacy item-knn": ItemKNNRecommender().fit(train),
    }
    for name, model in models.items():
        report = breakdown_evaluation(
            model, sequences, train, cutoff=20, max_predictions=1500
        )
        print(f"\n===== {name} =====")
        print(report.render())

    print(
        "\nreading guide: VMIS-kNN keeps improving with longer prefixes "
        "(it uses the whole session), while item-knn is flat (it only sees "
        "the last item) — the reason serenade-hist beats the legacy system."
    )


if __name__ == "__main__":
    main()
