"""End-to-end Serenade deployment: offline index build, artifact
serialization, a routed serving cluster with business rules, and a load
test — Figure 1 of the paper in one script.

Run with::

    python examples/ecommerce_serving.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.cluster import ClusterSimulator, TrafficGenerator, format_timeline, ramp_rate
from repro.core import VMISKNN
from repro.data import generate_clickstream, temporal_split
from repro.index import IndexBuilder, load_index, save_index
from repro.serving import (
    BusinessRules,
    RecommendationRequest,
    ServingCluster,
    ServingVariant,
    exclude_seen_in_session,
    exclude_unavailable,
)


def main() -> None:
    # ---- offline component (left half of Figure 1) ----------------------
    log = generate_clickstream(
        num_sessions=20_000, num_items=2_000, days=14, seed=7
    )
    split = temporal_split(log, test_days=1)

    builder = IndexBuilder(max_sessions_per_item=500)
    index = builder.build(list(split.train))
    report = builder.last_report
    print(
        f"index built: {report.sessions:,} sessions, "
        f"{report.distinct_items:,} items, "
        f"{report.postings_after_truncation:,} postings "
        f"({report.truncation_ratio:.0%} kept after truncation to m)"
    )

    artifact = Path(tempfile.mkdtemp()) / "daily-index.vmis"
    size = save_index(index, artifact)
    print(f"index artifact: {artifact} ({size / 1024:.0f} KiB)")

    # ---- online component (right half of Figure 1) ----------------------
    serving_index = load_index(artifact)
    out_of_stock = {1, 2, 3}
    rules = BusinessRules(
        [exclude_unavailable(out_of_stock), exclude_seen_in_session]
    )
    cluster = ServingCluster(
        lambda: VMISKNN(serving_index, m=500, k=100),
        num_pods=2,
        rules=rules,
    )

    # A user browses three products; each page view is one request.
    for item in (10, 11, 42):
        response = cluster.handle(
            RecommendationRequest(
                "visitor-1", item, variant=ServingVariant.HIST
            )
        )
    print(
        f"\nvisitor-1 on pod {response.served_by}: "
        f"{len(response.items)} recommendations in "
        f"{response.service_seconds * 1e3:.2f} ms"
    )
    print("top 5:", [scored.item_id for scored in response.items[:5]])

    # A privacy-conscious user: depersonalised serving, no state touched.
    anonymous = cluster.handle(
        RecommendationRequest("visitor-2", 42, consent=False)
    )
    print(
        f"depersonalised response: {len(anonymous.items)} items "
        "(session state untouched)"
    )

    # ---- load test (Figure 3b, scaled down) ------------------------------
    generator = TrafficGenerator(split.test, seed=3)
    simulator = ClusterSimulator(cluster, cores_per_pod=3, sla_millis=50)
    result = simulator.run(
        generator.generate(
            ramp_rate(100, 1100, 40.0), duration=60.0, sample_fraction=0.1
        ),
        bucket_seconds=20.0,
        observed_fraction=0.1,
    )
    print(f"\nload test ({result.total_requests} sampled requests):")
    print(format_timeline(result.timeline))
    summary = result.latency.summary_ms()
    print(
        f"p90 = {summary['p90']:.2f} ms, p99.5 = {summary['p99.5']:.2f} ms, "
        f"SLA attainment = {result.sla_attainment:.2%}"
    )


if __name__ == "__main__":
    main()
