"""Fault injection: kill a serving pod mid-traffic and watch the system
degrade gracefully — the §4.2 trade-off ("session data could be
temporarily lost in cases of machine failures") made measurable.

Run with::

    python examples/fault_tolerance.py
"""

from __future__ import annotations

from repro.cluster import TrafficGenerator, constant_rate
from repro.cluster.chaos import ChaosInjector, PodKill
from repro.core import SessionIndex
from repro.data import generate_clickstream, temporal_split
from repro.serving import ServingCluster


def main() -> None:
    log = generate_clickstream(num_sessions=10_000, num_items=1_200, seed=8)
    split = temporal_split(log)
    index = SessionIndex.from_clicks(split.train, max_sessions_per_item=500)
    cluster = ServingCluster.with_index(index, num_pods=3, m=500, k=100)

    generator = TrafficGenerator(split.test, seed=5)
    injector = ChaosInjector(
        cluster,
        [PodKill(at_time=10.0, pod_id="pod-1", restart_at=20.0)],
    )
    print("running 30 s of traffic; pod-1 dies at t=10 s, returns at t=20 s")
    report = injector.run(generator.generate(constant_rate(100), duration=30.0))

    event = report.events[0]
    print(
        f"\nkill at t={event.at_time:.0f}s: pod {event.pod_id} lost "
        f"{event.sessions_lost} live sessions "
        f"(restarted at t={event.restarted_at:.0f}s, empty)"
    )
    print(f"requests served:   {report.total_requests}")
    print(f"availability:      {report.availability:.4%} (routing failed over)")
    print(
        f"degraded requests: {report.degraded_requests} "
        "(served with less history than the user generated)"
    )
    print(
        f"  of which recovered >= 2 items of context already: "
        f"{report.recovered_requests} "
        "- the paper's argument that lost sessions rebuild quickly"
    )
    print(
        f"sessions re-homed to surviving pods: {len(report.session_moves)}"
    )
    print(f"p90 service time during chaos: {report.latency.percentile(90) * 1e3:.2f} ms")
    print(f"pods at the end: {cluster.router.pods}")


if __name__ == "__main__":
    main()
