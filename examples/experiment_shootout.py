"""Declarative model shootout: the session-rec style experiment driver.

Builds an experiment config (also saved as JSON so you can re-run it via
``python -m repro experiment <config.json>``), executes it, and prints the
comparison table across the whole kNN family plus simple baselines.

Run with::

    python examples/experiment_shootout.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.experiments import (
    DatasetSpec,
    ExperimentConfig,
    ModelSpec,
    ProtocolSpec,
    run_experiment,
)


def main() -> None:
    config = ExperimentConfig(
        name="knn-family-shootout",
        dataset=DatasetSpec(sessions=10_000, items=1_500, days=12, seed=5),
        models=(
            ModelSpec("vmis", {"m": 500, "k": 100}),
            ModelSpec("vsknn", {"m": 500, "k": 100}),
            ModelSpec("stan", {"m": 500, "k": 100}),
            ModelSpec("sknn", {"m": 500, "k": 100}),
            ModelSpec("itemknn"),
            ModelSpec("markov"),
            ModelSpec("popularity"),
        ),
        protocol=ProtocolSpec(test_days=1, cutoff=20, max_predictions=800),
    )

    config_path = Path(tempfile.mkdtemp()) / "shootout.json"
    config.save(config_path)
    print(f"config saved to {config_path}")
    print(f"re-run any time with: python -m repro experiment {config_path}\n")

    report = run_experiment(config)
    print(report.render())
    best = report.best("mrr")
    print(
        f"\nbest by MRR@20: {best.label} "
        f"({best.result.mrr:.4f}, p90 latency {best.latency_p90_ms():.2f} ms)"
    )
    print(
        "note: the kNN family members are close and their ranking is "
        "dataset-dependent — the central finding of the comparative "
        "studies (Ludewig et al.) the paper builds on. What separates "
        "VMIS-kNN is serving latency at scale, not offline accuracy."
    )


if __name__ == "__main__":
    main()
