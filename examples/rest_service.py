"""Run the Serenade REST service and talk to it over HTTP — the paper's
online component (§4.2) end to end, including the Prometheus metrics
endpoint.

Run with::

    python examples/rest_service.py
"""

from __future__ import annotations

import json
import urllib.request

from repro.core import SessionIndex
from repro.data import generate_clickstream
from repro.serving import ServingCluster
from repro.serving.http import SerenadeHTTPServer


def post(base: str, path: str, payload: dict) -> dict:
    request = urllib.request.Request(
        f"{base}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.load(response)


def main() -> None:
    log = generate_clickstream(num_sessions=8_000, num_items=1_000, seed=13)
    index = SessionIndex.from_clicks(log, max_sessions_per_item=500)
    cluster = ServingCluster.with_index(index, num_pods=2, m=500, k=100)

    with SerenadeHTTPServer(cluster, port=0) as server:
        base = f"http://127.0.0.1:{server.port}"
        print(f"Serenade listening on {base}")

        health = json.load(urllib.request.urlopen(f"{base}/healthz", timeout=10))
        print(f"health: {health}")

        # A user browses three product pages; the frontend calls us on each.
        for item in (10, 11, 42):
            answer = post(
                base,
                "/v1/recommend",
                {
                    "session_id": "demo-visitor",
                    "item_id": item,
                    "variant": "serenade-hist",
                    "count": 5,
                },
            )
            top = [entry["item_id"] for entry in answer["items"]]
            print(
                f"after viewing item {item:>3}: top-5 {top} "
                f"(pod {answer['pod']}, {answer['latency_ms']:.2f} ms)"
            )

        # A non-consenting user gets depersonalised recommendations.
        anonymous = post(
            base,
            "/v1/recommend",
            {"session_id": "anon", "item_id": 42, "consent": False, "count": 5},
        )
        print(f"depersonalised top-5: {[e['item_id'] for e in anonymous['items']]}")

        metrics = urllib.request.urlopen(f"{base}/metrics", timeout=10).read()
        interesting = [
            line
            for line in metrics.decode("utf-8").splitlines()
            if line.startswith("serenade_requests_total")
            or line.startswith("serenade_request_latency_seconds_count")
        ]
        print("\nmetrics:")
        for line in interesting:
            print(f"  {line}")


if __name__ == "__main__":
    main()
