"""A/B test: serenade-hist and serenade-recent against the legacy
item-to-item CF system, with significance testing and cannibalisation
analysis — the §5.2.3 experiment at laptop scale.

Run with::

    python examples/ab_test.py
"""

from __future__ import annotations

from repro.baselines import ItemKNNRecommender, MarkovRecommender
from repro.cluster import ABTest, VariantRecommender, wilson_interval
from repro.core import VMISKNN
from repro.data import generate_clickstream, temporal_split
from repro.serving import ServingVariant


def main() -> None:
    log = generate_clickstream(
        num_sessions=30_000, num_items=2_500, days=14, seed=31
    )
    split = temporal_split(log, test_days=2)
    train = list(split.train)

    # The treatment: VMIS-kNN behind the two Serenade variants.
    vmis = VMISKNN.from_clicks(train, m=500, k=100, exclude_current_items=True)
    # The control: the legacy item-to-item collaborative filter.
    legacy = ItemKNNRecommender(exclude_current_items=True).fit(train)
    # The 'often bought together' slot, for the cannibalisation model.
    co_purchase_slot = MarkovRecommender(window=1).fit(train)

    experiment = ABTest(
        arms={
            "legacy": legacy,
            "serenade-hist": VariantRecommender(vmis, ServingVariant.HIST),
            "serenade-recent": VariantRecommender(vmis, ServingVariant.RECENT),
        },
        control="legacy",
        click_base=0.25,
        serendipity=0.02,
        position_decay=0.8,
        seed=97,
    )
    sessions = split.test_sequences()
    print(f"running the experiment over {len(sessions):,} held-out sessions...")
    report = experiment.run(sessions, reference_cooccurrence=co_purchase_slot)

    print()
    print(report.summary())
    print()
    for arm_name, outcome in report.arms.items():
        low, high = wilson_interval(
            outcome.slot_conversions, outcome.exposures
        )
        print(
            f"{arm_name:>16}: slot rate {outcome.slot_rate:.4f} "
            f"(95% CI {low:.4f}-{high:.4f}), "
            f"cannibalisation pressure {outcome.cannibalisation_pressure:.3f}"
        )
    print()
    for arm_name in ("serenade-hist", "serenade-recent"):
        test = report.slot_tests[arm_name]
        verdict = "significant" if test.significant() else "not significant"
        print(
            f"{arm_name}: {test.relative_uplift * 100:+.2f}% slot uplift, "
            f"p={test.p_value:.3g} ({verdict} at alpha=0.05)"
        )
    hist = report.arms["serenade-hist"]
    recent = report.arms["serenade-recent"]
    if recent.cannibalisation_pressure > hist.cannibalisation_pressure:
        print(
            "\nserenade-recent overlaps the co-purchase slot more than "
            "serenade-hist — the paper's reason to prefer serenade-hist "
            "despite the lower slot uplift."
        )


if __name__ == "__main__":
    main()
