"""Elastic scaling under a flash crowd — the §7 over-provisioning
discussion, made interactive: a reactive autoscaler rides a traffic spike
and sheds pods afterwards.

Run with::

    python examples/autoscaling.py
"""

from __future__ import annotations

from repro.cluster import (
    AutoscalePolicy,
    AutoscalingSimulator,
    TrafficGenerator,
)
from repro.core import SessionIndex
from repro.data import generate_clickstream, temporal_split


def spike_profile(t: float) -> float:
    """Calm 80 rps with a 10x flash crowd between t=30 s and t=60 s."""
    return 800.0 if 30.0 <= t < 60.0 else 80.0


def main() -> None:
    log = generate_clickstream(num_sessions=15_000, num_items=1_500, seed=12)
    split = temporal_split(log)
    index = SessionIndex.from_clicks(split.train, max_sessions_per_item=500)

    from repro.serving import ServingCluster

    cluster = ServingCluster.with_index(index, num_pods=2, m=500, k=100)
    policy = AutoscalePolicy(
        scale_up_at=0.02,
        scale_down_at=0.006,
        min_pods=2,
        max_pods=6,
        cooldown_seconds=5.0,
    )
    simulator = AutoscalingSimulator(
        cluster, policy, cores_per_pod=3, evaluation_interval=5.0
    )
    generator = TrafficGenerator(split.test, seed=6)
    print("90 s of traffic; flash crowd (10x) between t=30 s and t=60 s\n")
    result = simulator.run(
        generator.generate(spike_profile, duration=90.0, sample_fraction=0.4)
    )

    print(f"requests handled: {result.total_requests}")
    print(f"p90 latency: {result.latency.percentile(90) * 1e3:.2f} ms")
    if result.actions:
        print("\nscaling actions:")
        for action in result.actions:
            direction = "UP  " if action.to_pods > action.from_pods else "DOWN"
            print(
                f"  t={action.at_time:>5.0f}s {direction} "
                f"{action.from_pods} -> {action.to_pods} pods "
                f"(observed usage {action.observed_usage:.1%})"
            )
    else:
        print("no scaling actions were needed")
    print(f"\npods over time: {result.pods_over_time}")
    print(f"pods at the end: {len(cluster.pods)}")
    print(
        "\nnote: scale-downs lose the removed pods' sessions — the trade-off "
        "the paper accepts (§4.2) because sessions rebuild within a few "
        "clicks (see examples/fault_tolerance.py)."
    )


if __name__ == "__main__":
    main()
