"""Hyperparameter grid search over (k, m) with heatmap rendering — the
Figure 2 sweep for your own dataset.

Run with::

    python examples/hyperparameter_tuning.py
"""

from __future__ import annotations

from repro.data import load_dataset, temporal_split
from repro.eval import grid_search


def main() -> None:
    log = load_dataset("ecom-1m-sim", scale=0.03, seed=7)
    split = temporal_split(log, test_days=1)
    print(
        f"dataset: {len(log):,} clicks / {log.num_sessions():,} sessions; "
        f"{len(split.test_sequences()):,} test sessions"
    )

    result = grid_search(
        list(split.train),
        split.test_sequences(),
        ks=[50, 100, 500, 1500],
        ms=[20, 50, 100, 500, 1000],
        max_predictions=400,
    )

    for metric, label in (("mrr", "MRR@20"), ("precision", "Prec@20")):
        best = result.best(metric)
        print(f"\n{label} heatmap (lighter = better):")
        print(result.heatmap(metric))
        print(
            f"best {label}: k={best.k}, m={best.m} "
            f"-> {best.metric(metric):.4f}"
        )

    mrr_best = result.best("mrr")
    prec_best = result.best("precision")
    if (mrr_best.k, mrr_best.m) != (prec_best.k, prec_best.m):
        print(
            "\nnote: the optimum differs per metric — pick (k, m) for the "
            "metric your product actually optimises (the paper's finding)."
        )


if __name__ == "__main__":
    main()
