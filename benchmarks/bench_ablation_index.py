"""A2 — ablation: compressed index and incremental maintenance (§7).

The paper's future work proposes (i) running the similarity computation
on a compressed index and (ii) maintaining the index incrementally
instead of rebuilding daily. Both are implemented in this repository;
this benchmark quantifies them:

* compression ratio of the delta/varint index vs flat 8-byte postings,
  and the query-latency overhead of on-access decoding;
* cost of ingesting one day of new sessions incrementally vs a full
  rebuild over the grown click log.

Shapes under test: compression ratio > 2x with bounded query overhead;
incremental ingest of one day is much cheaper than a full rebuild.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.vmis import VMISKNN
from repro.data.clicklog import SECONDS_PER_DAY
from repro.index.builder import build_index
from repro.index.compression import CompressedSessionIndex, compression_ratio
from repro.index.maintenance import IncrementalIndexer

from repro.bench.report import BenchReport, HIGHER

from conftest import publish

M, K = 500, 100


def mean_query_time(model, prefixes, repeats=2):
    times = []
    for _ in range(repeats):
        for prefix in prefixes:
            started = time.perf_counter()
            model.recommend(prefix, how_many=21)
            times.append(time.perf_counter() - started)
    return float(np.mean(times)) * 1e6


@pytest.fixture(scope="module")
def compression_results(bench_index_m500, bench_prefixes):
    compressed = CompressedSessionIndex.from_index(bench_index_m500)
    prefixes = bench_prefixes[:100]
    plain_model = VMISKNN(bench_index_m500, m=M, k=K)
    compressed_model = VMISKNN(compressed, m=M, k=K)
    agreement = all(
        plain_model.recommend(p, 21) == compressed_model.recommend(p, 21)
        for p in prefixes[:40]
    )
    return {
        "ratio": compression_ratio(bench_index_m500, compressed),
        "plain_us": mean_query_time(plain_model, prefixes),
        "compressed_us": mean_query_time(compressed_model, prefixes),
        "agreement": agreement,
    }


@pytest.fixture(scope="module")
def maintenance_results(bench_log):
    _, last = bench_log.time_range()
    cutoff = last - SECONDS_PER_DAY
    history, new_day = bench_log.split_at(cutoff)

    indexer = IncrementalIndexer(max_sessions_per_item=M)
    indexer.apply_batch(list(history))
    started = time.perf_counter()
    sessions_added = indexer.apply_batch(list(new_day))
    incremental_seconds = time.perf_counter() - started

    started = time.perf_counter()
    build_index(list(bench_log), max_sessions_per_item=M)
    rebuild_seconds = time.perf_counter() - started

    return {
        "sessions_added": sessions_added,
        "incremental_seconds": incremental_seconds,
        "rebuild_seconds": rebuild_seconds,
    }


def test_ablation_compressed_index(benchmark, compression_results, bench_index_m500, bench_prefixes):
    compressed = CompressedSessionIndex.from_index(bench_index_m500)
    model = VMISKNN(compressed, m=M, k=K)
    prefixes = bench_prefixes[:60]
    benchmark(lambda: [model.recommend(p, 21) for p in prefixes])

    results = compression_results
    overhead = results["compressed_us"] / results["plain_us"]
    report = BenchReport(
        "ablation_compressed_index", metadata={"m": M, "k": K}
    )
    report.note(
        f"compression ratio: {results['ratio']:.2f}x "
        "(delta+varint arenas vs flat 8-byte entries)"
    )
    report.note(
        f"query latency: plain {results['plain_us']:.1f} us, "
        f"compressed {results['compressed_us']:.1f} us "
        f"({overhead:.2f}x overhead)"
    )
    report.check(
        "results identical on compressed index", results["agreement"]
    )
    report.metric("compression_ratio", results["ratio"], "x", HIGHER)
    report.metric("decode_overhead", overhead, "x")
    publish(report)

    assert results["ratio"] > 2.0
    assert results["agreement"]
    assert overhead < 5.0  # decoding must not blow up latency


def test_ablation_incremental_maintenance(benchmark, maintenance_results, bench_log):
    _, last = bench_log.time_range()
    history, new_day = bench_log.split_at(last - SECONDS_PER_DAY)

    def incremental_day():
        indexer = IncrementalIndexer(max_sessions_per_item=M)
        indexer.apply_batch(list(history))
        indexer.apply_batch(list(new_day))

    benchmark.pedantic(incremental_day, rounds=2, iterations=1)

    results = maintenance_results
    speedup = results["rebuild_seconds"] / max(
        results["incremental_seconds"], 1e-9
    )
    report = BenchReport(
        "ablation_incremental_maintenance",
        metadata={"sessions_added": results["sessions_added"], "m": M},
    )
    report.note(f"one-day batch: {results['sessions_added']} new sessions")
    report.note(
        f"incremental ingest: {results['incremental_seconds'] * 1e3:.1f} ms"
    )
    report.note(
        f"full rebuild:       {results['rebuild_seconds'] * 1e3:.1f} ms"
    )
    report.note(
        f"incremental speedup for the daily refresh: {speedup:.1f}x"
    )
    report.metric("incremental_speedup", speedup, "x", HIGHER)
    publish(report)

    assert results["incremental_seconds"] < results["rebuild_seconds"]
