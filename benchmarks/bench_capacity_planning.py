"""M2 — §4.2: index memory footprint ("around 13 gigabytes").

The paper's serving pods ingest the daily index artifact and need about
13 GB of memory for 111M sessions / 582M interactions / 6.5M items at
m = 500. We build a structurally matched sample index, extrapolate with
the capacity model and check the order of magnitude.

Shape under test: extrapolated total in the single-digit-to-low-tens GiB
range, and extrapolated stored interactions close to the paper's 582M.
"""

from __future__ import annotations

import pytest

from repro.core.index import SessionIndex
from repro.data.synthetic import generate_clickstream
from repro.index.capacity import NATIVE, extrapolate, measure_index

from repro.bench.report import BenchReport

from conftest import publish

PAPER_SESSIONS = 111_000_000
PAPER_ITEMS = 6_500_000
PAPER_INTERACTIONS = 582_000_000
PAPER_GIGABYTES = 13.0


@pytest.fixture(scope="module")
def capacity_estimates():
    log = generate_clickstream(
        num_sessions=60_000,
        num_items=35_000,
        num_categories=1_200,
        mean_session_length=6.6,
        length_tail=0.16,
        days=30,
        seed=4,
    )
    sample = SessionIndex.from_clicks(log, max_sessions_per_item=500)
    return (
        measure_index(sample, NATIVE),
        extrapolate(
            sample,
            target_sessions=PAPER_SESSIONS,
            target_items=PAPER_ITEMS,
            schedule=NATIVE,
        ),
    )


def test_capacity_planning(benchmark, capacity_estimates):
    sample_estimate, production_estimate = capacity_estimates

    def size_the_sample():
        log = generate_clickstream(num_sessions=5_000, num_items=2_000, seed=4)
        index = SessionIndex.from_clicks(log, max_sessions_per_item=500)
        return measure_index(index)

    benchmark(size_the_sample)

    interactions_ratio = (
        production_estimate.stored_session_items / PAPER_INTERACTIONS
    )
    report = BenchReport(
        "capacity_planning",
        metadata={
            "paper_sessions": PAPER_SESSIONS,
            "paper_items": PAPER_ITEMS,
            "paper_gigabytes": PAPER_GIGABYTES,
        },
    )
    report.note("sample index:")
    report.note(sample_estimate.render())
    report.note()
    report.note(
        f"extrapolated to the paper's production scale "
        f"({PAPER_SESSIONS / 1e6:.0f}M sessions, {PAPER_ITEMS / 1e6:.1f}M items):"
    )
    report.note(production_estimate.render())
    report.note()
    report.note(
        f"paper reports ~{PAPER_GIGABYTES:.0f} GB; "
        f"extrapolation: {production_estimate.total_gigabytes:.1f} GiB "
        "(same order; the artifact also carries Avro decode buffers)"
    )
    report.note(
        f"extrapolated stored interactions: "
        f"{production_estimate.stored_session_items / 1e6:.0f}M vs paper's "
        f"{PAPER_INTERACTIONS / 1e6:.0f}M "
        f"(ratio {interactions_ratio:.2f})"
    )
    report.metric(
        "extrapolated_gib", production_estimate.total_gigabytes, "GiB"
    )
    report.metric("interactions_ratio", interactions_ratio, "")
    publish(report)

    assert 1.0 < production_estimate.total_gigabytes < 40.0
    assert 0.5 < interactions_ratio < 2.0
