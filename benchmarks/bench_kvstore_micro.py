"""M1 — §4.2: RocksDB session-storage microbenchmark.

The paper measures 10 million operations against the colocated RocksDB
store and reports a 99th-percentile read latency of 5 microseconds and
write latency of 18 microseconds — versus ~15 ms p99.5 for a networked
BigTable lookup, the justification for colocating session state.

We run the same workload shape (session-sized values, skewed key reuse)
against the embedded KV store at reduced volume.

Shapes under test: p99 read and write latencies are single-digit-to-tens
of microseconds — three orders of magnitude below a 15 ms network read.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.kvstore.store import KVStore
from repro.serving.session_store import encode_items

from repro.bench.report import BenchReport

from conftest import publish

NUM_OPERATIONS = 200_000
NUM_SESSIONS = 20_000
NETWORK_READ_P995_MS = 15.0  # the paper's BigTable comparison point


@pytest.fixture(scope="module")
def latency_profile():
    rng = np.random.default_rng(99)
    store = KVStore(default_ttl=1800.0)
    keys = [f"session-{i}".encode() for i in range(NUM_SESSIONS)]
    value = encode_items(list(range(8)))  # a typical evolving session

    write_times = []
    key_choices = rng.integers(0, NUM_SESSIONS, size=NUM_OPERATIONS)
    for choice in key_choices:
        key = keys[choice]
        started = time.perf_counter()
        store.put(key, value)
        write_times.append(time.perf_counter() - started)

    read_times = []
    key_choices = rng.integers(0, NUM_SESSIONS, size=NUM_OPERATIONS)
    for choice in key_choices:
        key = keys[choice]
        started = time.perf_counter()
        store.get(key)
        read_times.append(time.perf_counter() - started)

    return {
        "read_p99_us": float(np.percentile(read_times, 99)) * 1e6,
        "write_p99_us": float(np.percentile(write_times, 99)) * 1e6,
        "read_p50_us": float(np.median(read_times)) * 1e6,
        "write_p50_us": float(np.median(write_times)) * 1e6,
    }


def test_kvstore_microbenchmark(benchmark, latency_profile):
    store = KVStore(default_ttl=1800.0)
    value = encode_items(list(range(8)))

    def mixed_operations():
        for i in range(1000):
            key = f"s{i % 100}".encode()
            store.put(key, value)
            store.get(key)

    benchmark(mixed_operations)

    profile = latency_profile
    report = BenchReport(
        "kvstore_microbenchmark",
        metadata={
            "operations": NUM_OPERATIONS,
            "session_keys": NUM_SESSIONS,
            "network_read_p995_ms": NETWORK_READ_P995_MS,
        },
    )
    report.note(
        f"workload: {NUM_OPERATIONS:,} reads + {NUM_OPERATIONS:,} writes over "
        f"{NUM_SESSIONS:,} session keys"
    )
    report.note(
        f"read  p50={profile['read_p50_us']:.2f} us  "
        f"p99={profile['read_p99_us']:.2f} us   (paper RocksDB: p99 = 5 us)"
    )
    report.note(
        f"write p50={profile['write_p50_us']:.2f} us  "
        f"p99={profile['write_p99_us']:.2f} us   (paper RocksDB: p99 = 18 us)"
    )
    report.note(
        f"networked store comparison point: {NETWORK_READ_P995_MS} ms p99.5"
    )
    report.note()
    report.check(
        "local p99 read is ~3 orders of magnitude below a network read",
        profile["read_p99_us"] < NETWORK_READ_P995_MS * 1e3 / 100,
    )
    report.metric("read_p99_us", profile["read_p99_us"], "us")
    report.metric("write_p99_us", profile["write_p99_us"], "us")
    publish(report)

    assert profile["read_p99_us"] < 1000.0  # well under a millisecond
    assert profile["write_p99_us"] < 1000.0
    assert profile["read_p99_us"] < NETWORK_READ_P995_MS * 1e3 / 100
