"""F2 — Figure 2: sensitivity of MRR@20 and Prec@20 to k and m.

The paper sweeps 55 (k, m) combinations per dataset and finds a unimodal
response surface whose optimum differs per metric and per dataset. We run
a reduced grid on two dataset profiles and render the same heatmaps.

Shapes under test: the surface varies (not flat), the response along the
best row/column is unimodal up to noise, and the optimum is interior or
boundary but consistent between runs (deterministic).
"""

from __future__ import annotations

import pytest

from repro.data.datasets import load_dataset
from repro.data.split import temporal_split
from repro.eval.gridsearch import grid_search

from repro.bench.report import BenchReport

from conftest import publish

KS = [50, 100, 500, 1500]
MS = [20, 50, 100, 500, 1000]
MAX_PREDICTIONS = 250


@pytest.fixture(scope="module")
def grid_results():
    results = {}
    for name, scale in (("ecom-1m-sim", 0.03), ("rsc15-sim", 0.001)):
        log = load_dataset(name, scale=scale, seed=7)
        split = temporal_split(log, test_days=1)
        results[name] = grid_search(
            list(split.train),
            split.test_sequences(),
            ks=KS,
            ms=MS,
            max_predictions=MAX_PREDICTIONS,
        )
    return results


def test_fig2_hyperparameter_sensitivity(benchmark, grid_results):
    # Time one representative grid point end to end.
    log = load_dataset("ecom-1m-sim", scale=0.01, seed=7)
    split = temporal_split(log, test_days=1)

    def one_grid_point():
        return grid_search(
            list(split.train),
            split.test_sequences(),
            ks=[100],
            ms=[500],
            max_predictions=100,
        )

    benchmark(one_grid_point)

    report = BenchReport(
        "fig2_sensitivity",
        metadata={"ks": KS, "ms": MS, "max_predictions": MAX_PREDICTIONS},
    )
    for name, result in grid_results.items():
        for metric, label in (("mrr", "MRR@20"), ("precision", "Prec@20")):
            best = result.best(metric)
            report.note(f"[{name}] {label} heatmap (lighter = better):")
            report.note(result.heatmap(metric))
            report.note(
                f"best {label}: k={best.k}, m={best.m} -> "
                f"{best.metric(metric):.4f}"
            )
            values = [p.metric(metric) for p in result.points]
            assert max(values) > min(values), "surface must not be flat"
            report.check(
                f"[{name}] {label} unimodal ridge (tolerance 10%)",
                result.is_unimodal_ridge(metric, tolerance=0.1 * max(values)),
            )
            report.note()
        mrr_best = result.best("mrr")
        prec_best = result.best("precision")
        report.note(
            f"[{name}] optimum differs per metric (paper finding): "
            f"MRR@(k={mrr_best.k},m={mrr_best.m}) vs "
            f"Prec@(k={prec_best.k},m={prec_best.m})"
        )
        report.note()
    publish(report)
