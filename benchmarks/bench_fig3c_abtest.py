"""F3c — Figure 3(c) + §5.2.3: the three-week A/B test.

The paper runs serenade-hist and serenade-recent against the legacy
item-to-item CF system for 21 days under a 200-600 rps diurnal load,
reporting: stable p90 latency around 5 ms throughout; +2.85% (hist) and
+5.72% (recent) slot-engagement uplift, both statistically significant;
and cannibalisation of other page slots by serenade-recent.

We reproduce both halves: (i) the latency/throughput timeline over a
compressed 21-day diurnal replay (sampled), and (ii) the engagement
experiment over held-out sessions with the position-bias click model.

Shapes under test: positive significant slot uplift for both variants
with recent >= hist; flat p90 under the SLA across the full timeline;
higher cannibalisation pressure for serenade-recent than serenade-hist.
"""

from __future__ import annotations

import pytest

from repro.baselines.itemknn import ItemKNNRecommender
from repro.baselines.markov import MarkovRecommender
from repro.cluster.abtest import ABTest, VariantRecommender
from repro.cluster.loadgen import TrafficGenerator, diurnal_rate
from repro.cluster.simulation import ClusterSimulator
from repro.core.vmis import VMISKNN
from repro.serving.app import ServingCluster
from repro.serving.variants import ServingVariant

from repro.bench.report import BenchReport, Column, HIGHER

from conftest import publish

# 21 days compressed: each simulated "day" is 600 s of diurnal profile,
# sampled thinly so the full three weeks stay executable.
DAY_SECONDS = 600.0
NUM_DAYS = 21
SAMPLE_FRACTION = 0.004


@pytest.fixture(scope="module")
def timeline_result(bench_index_m500, bench_split):
    cluster = ServingCluster.with_index(bench_index_m500, num_pods=2, m=500, k=100)
    generator = TrafficGenerator(bench_split.test, seed=23)
    simulator = ClusterSimulator(cluster, cores_per_pod=3)
    profile = diurnal_rate(200.0, 600.0, peak_hour=20.0)
    # Compress: map each simulated second to (86400/DAY_SECONDS) nominal
    # seconds so the diurnal cycle completes within DAY_SECONDS.
    compression = 86_400.0 / DAY_SECONDS
    arrivals = generator.generate(
        lambda t: profile(t * compression),
        duration=DAY_SECONDS * NUM_DAYS,
        sample_fraction=SAMPLE_FRACTION,
    )
    return simulator.run(
        arrivals,
        bucket_seconds=DAY_SECONDS,
        observed_fraction=SAMPLE_FRACTION,
    )


@pytest.fixture(scope="module")
def abtest_report(bench_split, bench_index_m500):
    train = list(bench_split.train)
    vmis = VMISKNN(bench_index_m500, m=500, k=100, exclude_current_items=True)
    legacy = ItemKNNRecommender(exclude_current_items=True).fit(train)
    co_slot = MarkovRecommender(window=1).fit(train)
    experiment = ABTest(
        arms={
            "legacy": legacy,
            "serenade-hist": VariantRecommender(vmis, ServingVariant.HIST),
            "serenade-recent": VariantRecommender(vmis, ServingVariant.RECENT),
        },
        control="legacy",
        click_base=0.25,
        serendipity=0.02,
        position_decay=0.8,
    )
    return experiment.run(
        bench_split.test_sequences(), reference_cooccurrence=co_slot
    )


def test_fig3c_latency_timeline(benchmark, timeline_result):
    benchmark(lambda: None)  # heavy lifting happened in the fixture

    result = timeline_result
    report = BenchReport(
        "fig3c_latency_timeline",
        metadata={
            "days": NUM_DAYS,
            "day_seconds": DAY_SECONDS,
            "sample_fraction": SAMPLE_FRACTION,
        },
    )
    report.table(
        Column("day", 4),
        Column("rps", 7, fmt=".0f"),
        Column("p75ms", 8, fmt=".2f"),
        Column("p90ms", 8, fmt=".2f"),
        Column("p99.5ms", 8, fmt=".2f"),
    )
    for day, bucket in enumerate(result.timeline, start=1):
        report.row(
            day,
            bucket.requests_per_second,
            bucket.latency_p75_ms,
            bucket.latency_p90_ms,
            bucket.latency_p995_ms,
        )
    rps_values = [b.requests_per_second for b in result.timeline]
    p90_values = [b.latency_p90_ms for b in result.timeline]
    report.note()
    report.note(
        f"load range {min(rps_values):.0f}-{max(rps_values):.0f} rps "
        "(paper: 200-600 rps)"
    )
    report.note(
        f"p90 range {min(p90_values):.2f}-{max(p90_values):.2f} ms "
        "(paper: consistently ~5 ms, always < 50 ms SLA)"
    )
    report.metric("worst_p90_ms", max(p90_values), "ms")
    publish(report)

    assert len(result.timeline) == NUM_DAYS
    assert max(p90_values) < 50.0
    assert min(rps_values) >= 150 and max(rps_values) <= 700


def test_fig3c_abtest_engagement(benchmark, abtest_report):
    benchmark(lambda: None)

    experiment = abtest_report
    hist_test = experiment.slot_tests["serenade-hist"]
    recent_test = experiment.slot_tests["serenade-recent"]
    hist_pressure = experiment.arms["serenade-hist"].cannibalisation_pressure
    recent_pressure = experiment.arms["serenade-recent"].cannibalisation_pressure
    report = BenchReport(
        "fig3c_abtest",
        metadata={"control": "legacy", "alpha": 0.1},
    )
    report.note(experiment.summary())
    report.note()
    report.note(
        f"serenade-hist   slot uplift {hist_test.relative_uplift * 100:+.2f}% "
        f"(p={hist_test.p_value:.2e})   [paper: +2.85%, significant]"
    )
    report.note(
        f"serenade-recent slot uplift {recent_test.relative_uplift * 100:+.2f}% "
        f"(p={recent_test.p_value:.2e})   [paper: +5.72%, significant]"
    )
    report.note()
    report.note("cannibalisation pressure (overlap with co-purchase slot):")
    report.note(f"  serenade-hist   {hist_pressure:.3f}")
    report.note(
        f"  serenade-recent {recent_pressure:.3f}   "
        "[paper: recent cannibalises other slots; hist preferred]"
    )
    report.metric(
        "hist_uplift_pct", hist_test.relative_uplift * 100, "%", HIGHER
    )
    report.metric(
        "recent_uplift_pct", recent_test.relative_uplift * 100, "%", HIGHER
    )
    publish(report)

    assert hist_test.relative_uplift > 0
    assert recent_test.relative_uplift > 0
    assert recent_test.relative_uplift >= hist_test.relative_uplift
    assert recent_test.significant(alpha=0.1)
    assert recent_pressure > hist_pressure
