"""E1 — §5.1.1: prediction quality, VMIS-kNN vs neural baselines.

The paper reports MAP@20 .0268 vs .0251, Prec@20 .0722 vs .0680,
R@20 .378 vs .359 and MRR@20 .286 vs .255 — VMIS-kNN ahead of the best of
GRU4Rec / NARM / STAMP on every metric, averaged over five sampled
versions of ecom-1m. We replay the protocol on sliding windows of a
sparse synthetic clickstream (same clicks-per-item regime as ecom-1m) with
scaled-down neural training budgets.

Shape under test: VMIS-kNN >= every neural baseline on MRR@20 and MAP@20.
"""

from __future__ import annotations

import pytest

from repro.baselines.neural import GRU4Rec, NARM, STAMP
from repro.core.index import SessionIndex
from repro.core.vmis import VMISKNN
from repro.data.split import sliding_window_splits
from repro.data.synthetic import generate_clickstream
from repro.eval.evaluator import evaluate_next_item

from repro.bench.report import BenchReport, Column, HIGHER

from conftest import publish

NUM_WINDOWS = 2  # the paper uses 5; reduced for laptop-scale training
MAX_PREDICTIONS = 400
NEURAL_STEPS = 2_500


@pytest.fixture(scope="module")
def quality_results():
    log = generate_clickstream(
        num_sessions=9_000, num_items=3_000, num_categories=120, days=14, seed=5
    )
    splits = sliding_window_splits(
        log, num_windows=NUM_WINDOWS, train_days=9, test_days=1
    )

    def models_for(train_clicks):
        index = SessionIndex.from_clicks(train_clicks, max_sessions_per_item=1000)
        return {
            "VMIS-kNN": VMISKNN(index, m=500, k=100),
            "GRU4Rec": GRU4Rec(
                epochs=2, max_steps_per_epoch=NEURAL_STEPS, embedding_dim=24
            ).fit(train_clicks),
            "NARM": NARM(
                epochs=2, max_steps_per_epoch=NEURAL_STEPS, embedding_dim=24
            ).fit(train_clicks),
            "STAMP": STAMP(
                epochs=2, max_steps_per_epoch=NEURAL_STEPS, embedding_dim=24
            ).fit(train_clicks),
        }

    totals: dict[str, dict[str, float]] = {}
    for split in splits:
        models = models_for(list(split.train))
        sequences = split.test_sequences()
        for name, model in models.items():
            result = evaluate_next_item(
                model, sequences, cutoff=20, max_predictions=MAX_PREDICTIONS
            )
            bucket = totals.setdefault(
                name, {"mrr": 0.0, "map": 0.0, "prec": 0.0, "recall": 0.0}
            )
            bucket["mrr"] += result.mrr / len(splits)
            bucket["map"] += result.map / len(splits)
            bucket["prec"] += result.precision / len(splits)
            bucket["recall"] += result.recall / len(splits)
    return totals


def test_e1_prediction_quality(benchmark, quality_results, bench_index_m500, bench_prefixes):
    model = VMISKNN(bench_index_m500, m=500, k=100)

    def predict_batch():
        for prefix in bench_prefixes[:50]:
            model.recommend(prefix, how_many=20)

    benchmark(predict_batch)

    report = BenchReport(
        "e1_prediction_quality",
        metadata={
            "windows": NUM_WINDOWS,
            "max_predictions": MAX_PREDICTIONS,
            "neural_steps": NEURAL_STEPS,
        },
    )
    report.table(
        Column("model", 10, align="<"),
        Column("MRR@20", 8, fmt=".4f"),
        Column("MAP@20", 8, fmt=".4f"),
        Column("Prec@20", 8, fmt=".4f"),
        Column("R@20", 8, fmt=".4f"),
    )
    for name, metrics in quality_results.items():
        report.row(
            name,
            metrics["mrr"],
            metrics["map"],
            metrics["prec"],
            metrics["recall"],
        )
    vmis = quality_results["VMIS-kNN"]
    best_neural_mrr = max(
        quality_results[n]["mrr"] for n in ("GRU4Rec", "NARM", "STAMP")
    )
    best_neural_map = max(
        quality_results[n]["map"] for n in ("GRU4Rec", "NARM", "STAMP")
    )
    report.note()
    report.check(
        f"VMIS-kNN MRR {vmis['mrr']:.4f} >= best neural {best_neural_mrr:.4f}",
        vmis["mrr"] >= best_neural_mrr,
    )
    report.check(
        f"VMIS-kNN MAP {vmis['map']:.4f} >= best neural {best_neural_map:.4f}",
        vmis["map"] >= best_neural_map,
    )
    report.metric("vmis_mrr_at_20", vmis["mrr"], "", HIGHER)
    report.metric("vmis_map_at_20", vmis["map"], "", HIGHER)
    publish(report)

    assert vmis["mrr"] >= best_neural_mrr
    assert vmis["map"] >= best_neural_map
