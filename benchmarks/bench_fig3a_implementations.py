"""F3a(top) — Figure 3(a) top: per-session latency across implementations.

The paper compares the Rust VMIS-kNN against VS-Py (the research
reference), VMIS-Diff (Differential Dataflow), VMIS-Java (hashmaps on a
managed runtime) and VMIS-SQL (DuckDB) over datasets of increasing size,
plotting median and p90 prediction latency; the Python, Java and SQL
baselines fail with memory errors (X) on the large datasets, and the Java
baseline's p90 trails by an order of magnitude despite decent medians.

Our engines enforce explicit intermediate-result budgets calibrated so
that the quadratic-intermediate implementations (VS-Py's candidate union,
VMIS-SQL's materialised joins) exceed them exactly on the largest
workload, reproducing the X marks deterministically.

Shapes under test on the largest completing workload: VMIS-kNN has the
lowest p90; the dataflow and SQL engines trail badly at p90; the
budget-limited engines fail on the largest dataset with explicit memory
errors while VMIS-kNN and VMIS-Diff always complete.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.index import SessionIndex
from repro.core.vmis import VMISKNN
from repro.data.split import temporal_split
from repro.data.synthetic import generate_clickstream
from repro.engines import (
    DataflowVMIS,
    HashmapVMIS,
    MemoryBudgetExceeded,
    ReferenceVSKNN,
    SQLVMIS,
)

from repro.bench.report import BenchReport, Column

from conftest import publish

DATASET_SIZES = {"small-sim": 6_000, "medium-sim": 18_000, "large-sim": 45_000}
M, K = 500, 100
PREFIX_LIMIT = 100
# Calibrated so the medium workload fits and the large one does not
# (max observed: VS-Py union ~5.9k/10.9k rows, SQL ~42k/95k rows).
VSPY_BUDGET = 8_000
SQL_BUDGET = 60_000


def measure(engine, prefixes):
    times = []
    for prefix in prefixes:
        if hasattr(engine, "reset"):
            engine.reset()
        started = time.perf_counter()
        engine.recommend(prefix, how_many=21)
        times.append(time.perf_counter() - started)
    return (
        float(np.median(times)) * 1e6,
        float(np.percentile(times, 90)) * 1e6,
    )


@pytest.fixture(scope="module")
def implementation_results():
    results: dict[str, dict[str, tuple | str]] = {}
    for dataset_name, num_sessions in DATASET_SIZES.items():
        log = generate_clickstream(
            num_sessions=num_sessions,
            num_items=max(400, num_sessions // 40),
            num_categories=30,
            mean_session_length=8.0,
            length_tail=0.2,
            days=14,
            seed=33,
        )
        split = temporal_split(log, test_days=1)
        train = list(split.train)
        full_index = SessionIndex.from_clicks(train, max_sessions_per_item=2**62)
        m_index = SessionIndex.from_clicks(train, max_sessions_per_item=M)
        prefixes = []
        for sequence in split.test_sequences().values():
            for cut in range(1, len(sequence)):
                prefixes.append(sequence[:cut])
        prefixes = prefixes[:PREFIX_LIMIT]

        engines = {
            "VS-Py": ReferenceVSKNN(
                full_index, m=M, k=K, intermediate_budget=VSPY_BUDGET
            ),
            "VMIS-Diff": DataflowVMIS(m_index, m=M, k=K),
            "VMIS-Java": HashmapVMIS(full_index, m=M, k=K),
            "VMIS-SQL": SQLVMIS(
                full_index, m=M, k=K, intermediate_budget=SQL_BUDGET
            ),
            "VMIS-kNN": VMISKNN(m_index, m=M, k=K),
        }
        results[dataset_name] = {}
        for engine_name, engine in engines.items():
            try:
                results[dataset_name][engine_name] = measure(engine, prefixes)
            except MemoryBudgetExceeded:
                results[dataset_name][engine_name] = "X"
    return results


def test_fig3a_implementation_comparison(benchmark, implementation_results):
    log = generate_clickstream(
        num_sessions=8_000, num_items=600, mean_session_length=8.0, days=10, seed=34
    )
    split = temporal_split(log)
    index = SessionIndex.from_clicks(split.train, max_sessions_per_item=M)
    model = VMISKNN(index, m=M, k=K)
    sequences = list(split.test_sequences().values())[:30]

    def serve_growing_sessions():
        for sequence in sequences:
            for cut in range(1, len(sequence)):
                model.recommend(sequence[:cut], how_many=21)

    benchmark(serve_growing_sessions)

    report = BenchReport(
        "fig3a_implementations",
        metadata={
            "dataset_sizes": DATASET_SIZES,
            "m": M,
            "k": K,
            "vspy_budget": VSPY_BUDGET,
            "sql_budget": SQL_BUDGET,
        },
    )
    report.table(
        Column("dataset", 12, align="<"),
        Column("engine", 10, align="<"),
        Column("median us", 10),
        Column("p90 us", 10),
    )
    for dataset_name, engines in implementation_results.items():
        for engine_name, outcome in engines.items():
            if outcome == "X":
                report.row(dataset_name, engine_name, "X", "X")
            else:
                median, p90 = outcome
                report.row(
                    dataset_name, engine_name, f"{median:.1f}", f"{p90:.1f}"
                )

    largest = implementation_results["large-sim"]
    completing = {
        name: outcome for name, outcome in largest.items() if outcome != "X"
    }
    failures = [name for name, outcome in largest.items() if outcome == "X"]
    vmis_p90 = completing["VMIS-kNN"][1]
    report.note()
    report.check(
        "VMIS-kNN lowest p90 among completing engines on the largest dataset",
        all(vmis_p90 <= o[1] for o in completing.values()),
    )
    report.note(
        f"paper shape check: memory failures on the largest dataset (X): "
        f"{failures} (paper: Python/Java/SQL fail on ecom-60m+)"
    )
    report.note(
        "paper shape check: VMIS-Diff always completes but trails VMIS-kNN "
        "badly (indexing of intermediates), VMIS-SQL slowest completing "
        "engine where it completes"
    )
    report.metric("vmis_p90_us", vmis_p90, "us")
    publish(report)

    assert all(vmis_p90 <= outcome[1] for outcome in completing.values())
    assert "VS-Py" in failures and "VMIS-SQL" in failures
    assert "VMIS-kNN" not in failures and "VMIS-Diff" not in failures
