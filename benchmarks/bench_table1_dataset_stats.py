"""T1 — Table 1: dataset statistics.

Regenerates the paper's Table 1 for all six dataset profiles (at reduced
scale; the `paper` columns of DESIGN.md record the full-size numbers).
The shape under test: clicks-per-session percentiles — p50 around 2-4,
p75 around 4-7 and a long tail at p99 — and the public/proprietary size
ordering.
"""

from __future__ import annotations

import pytest

from repro.data.datasets import DATASET_PROFILES, load_dataset
from repro.data.stats import dataset_statistics, format_table

from repro.bench.report import BenchReport

from conftest import publish

SCALE = 0.004
SEED = 11


@pytest.fixture(scope="module")
def all_stats():
    rows = []
    for name in DATASET_PROFILES:
        log = load_dataset(name, scale=SCALE, seed=SEED)
        rows.append(dataset_statistics(log, name=f"{name}@{SCALE}"))
    return rows


def test_table1_dataset_statistics(benchmark, all_stats):
    """Times one profile generation + statistics pass; prints Table 1."""

    def regenerate_one():
        log = load_dataset("ecom-1m-sim", scale=SCALE, seed=SEED)
        return dataset_statistics(log)

    benchmark(regenerate_one)

    report = BenchReport(
        "table1_dataset_stats", metadata={"scale": SCALE, "seed": SEED}
    )
    report.note(format_table(all_stats))
    report.note()
    report.note("shape checks (paper: p50 in 2-4, long p99 tail):")
    for stats in all_stats:
        assert 2 <= stats.clicks_per_session_p50 <= 6, stats.name
        assert stats.clicks_per_session_p99 >= 12, stats.name
        report.check(
            f"{stats.name}: p50={stats.clicks_per_session_p50:.0f} "
            f"p99={stats.clicks_per_session_p99:.0f}",
            True,
        )
    publish(report)
