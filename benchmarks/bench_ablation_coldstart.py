"""A3 — ablation: the daily-rebuild cold-start window (§4.1).

"Serenade will thus only see sessions for new items on the platform with
a delay of one day" — the index is rebuilt once per day, so items that
first appear *today* cannot be recommended until tomorrow's index rolls
out. The paper accepts this because a separate system handles new/trending
items.

This ablation quantifies the window: we introduce a batch of brand-new
items on the final day, then measure (i) how often yesterday's index can
recommend them (it can't), (ii) recovery after the daily rebuild, and
(iii) how incremental maintenance (the §7 future-work path implemented in
this repo) closes the gap without a full rebuild.

Shapes under test: zero coverage of new items before the rebuild; full
parity between rebuild and incremental ingest after.
"""

from __future__ import annotations

import pytest

from repro.core.types import Click
from repro.core.vmis import VMISKNN
from repro.data.clicklog import ClickLog
from repro.data.synthetic import generate_clickstream
from repro.index.builder import build_index
from repro.index.maintenance import IncrementalIndexer

from repro.bench.report import BenchReport, HIGHER

from conftest import publish

NUM_NEW_ITEMS = 25
SESSIONS_PER_NEW_ITEM = 8


@pytest.fixture(scope="module")
def coldstart_setup():
    log = generate_clickstream(
        num_sessions=12_000, num_items=1_500, days=12, seed=44
    )
    _, last = log.time_range()
    # Brand-new items appear on a "new day" after the log ends, each in a
    # handful of sessions alongside one established item.
    new_items = [10_000 + i for i in range(NUM_NEW_ITEMS)]
    new_clicks = []
    session_id = 10**6
    timestamp = last + 3_600
    for new_item in new_items:
        for _ in range(SESSIONS_PER_NEW_ITEM):
            anchor = (new_item * 7) % 1_500
            new_clicks.append(Click(session_id, anchor, timestamp))
            new_clicks.append(Click(session_id, new_item, timestamp + 30))
            session_id += 1
            timestamp += 600
    return log, ClickLog(new_clicks), new_items


def recommendable(model: VMISKNN, new_items, probe_sessions) -> float:
    """Fraction of probes whose top-50 list contains any new item."""
    hits = 0
    for probe in probe_sessions:
        recommended = {s.item_id for s in model.recommend(probe, how_many=50)}
        if recommended & set(new_items):
            hits += 1
    return hits / len(probe_sessions)


def test_ablation_coldstart_window(benchmark, coldstart_setup):
    log, new_day, new_items = coldstart_setup
    # Probe sessions: users click the anchors that co-occur with new items.
    probes = [
        [(item * 7) % 1_500, item] for item in new_items[:10]
    ]
    # The user has clicked the new item itself plus its anchor; even so,
    # yesterday's index knows nothing about the new item.
    stale_index = build_index(list(log), max_sessions_per_item=500)
    stale = VMISKNN(stale_index, m=500, k=100)
    stale_coverage = recommendable(stale, new_items, probes)

    # After the daily rebuild over log + new day.
    fresh_index = build_index(
        list(log) + list(new_day), max_sessions_per_item=500
    )
    fresh = VMISKNN(fresh_index, m=500, k=100)
    fresh_coverage = recommendable(fresh, new_items, probes)

    # The incremental path: ingest only the new day's sessions.
    indexer = IncrementalIndexer(max_sessions_per_item=500)
    indexer.apply_batch(list(log))
    indexer.apply_batch(list(new_day))
    incremental = VMISKNN(indexer.index, m=500, k=100)
    incremental_coverage = recommendable(incremental, new_items, probes)

    benchmark(lambda: recommendable(fresh, new_items, probes))

    report = BenchReport(
        "ablation_coldstart",
        metadata={
            "new_items": NUM_NEW_ITEMS,
            "sessions_per_new_item": SESSIONS_PER_NEW_ITEM,
        },
    )
    report.note(
        f"{NUM_NEW_ITEMS} new items x {SESSIONS_PER_NEW_ITEM} sessions "
        "introduced after the last index build"
    )
    report.note()
    report.note(
        f"stale index (yesterday's build):  new-item coverage "
        f"{stale_coverage:.0%}   [paper: new items invisible for a day]"
    )
    report.note(
        f"daily rebuild:                    new-item coverage "
        f"{fresh_coverage:.0%}"
    )
    report.note(
        f"incremental ingest (section 7):   new-item coverage "
        f"{incremental_coverage:.0%}"
    )
    report.note()
    report.check("stale index sees no new items", stale_coverage == 0.0)
    report.check("daily rebuild recovers coverage", fresh_coverage > 0.5)
    report.check(
        "incremental ingest matches rebuild",
        incremental_coverage == fresh_coverage,
    )
    report.metric("fresh_coverage", fresh_coverage, "", HIGHER)
    publish(report)

    assert stale_coverage == 0.0
    assert fresh_coverage > 0.5
    assert incremental_coverage == fresh_coverage
