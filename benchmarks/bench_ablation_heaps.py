"""A1 — ablation: early stopping and heap arity (§3 micro-optimisations).

The paper credits early stopping and octonary (d=8) heaps with a 6-12%
latency win over the unoptimised variant. This ablation isolates the two
knobs on the same index and workload:

* early stopping on/off at fixed arity;
* arity 2 vs 4 vs 8 at fixed early stopping.

Shape under test: early stopping never hurts and the fully optimised
configuration beats the fully unoptimised one.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.vmis import VMISKNN

from repro.bench.report import BenchReport, Column, HIGHER

from conftest import publish

M, K = 500, 100


@pytest.fixture(scope="module")
def ablation_results(bench_index, bench_prefixes):
    """Interleaved measurement: every round times every configuration, so
    cache warm-up and machine noise hit all variants equally."""
    prefixes = bench_prefixes[:120]
    configurations = {
        "arity=8, early-stop on (default)": dict(heap_arity=8, early_stopping=True),
        "arity=8, early-stop off": dict(heap_arity=8, early_stopping=False),
        "arity=4, early-stop on": dict(heap_arity=4, early_stopping=True),
        "arity=2, early-stop on": dict(heap_arity=2, early_stopping=True),
        "arity=2, early-stop off (no-opt)": dict(heap_arity=2, early_stopping=False),
    }
    models = {
        name: VMISKNN(bench_index, m=M, k=K, **config)
        for name, config in configurations.items()
    }
    # Warm-up: touch every posting list once through each model.
    for model in models.values():
        for prefix in prefixes[:30]:
            model.find_neighbors(prefix)

    totals = {name: [] for name in models}
    for _ in range(4):  # interleaved rounds
        for name, model in models.items():
            started = time.perf_counter()
            for prefix in prefixes:
                model.find_neighbors(prefix)
            totals[name].append(time.perf_counter() - started)
    return {
        name: float(np.min(durations)) / len(prefixes) * 1e6
        for name, durations in totals.items()
    }


@pytest.mark.parametrize("arity", [2, 8])
def test_ablation_heap_arity(benchmark, bench_index, bench_prefixes, arity):
    model = VMISKNN(bench_index, m=M, k=K, heap_arity=arity)
    prefixes = bench_prefixes[:80]
    benchmark(lambda: [model.find_neighbors(p) for p in prefixes])


def test_ablation_summary(benchmark, ablation_results):
    benchmark(lambda: None)

    report = BenchReport("ablation_heaps", metadata={"m": M, "k": K})
    report.table(
        Column("configuration", 36, align="<"),
        Column("mean us", 9, fmt=".1f"),
    )
    for name, mean_us in sorted(ablation_results.items(), key=lambda kv: kv[1]):
        report.row(name, mean_us)
    default = ablation_results["arity=8, early-stop on (default)"]
    no_opt = ablation_results["arity=2, early-stop off (no-opt)"]
    no_early = ablation_results["arity=8, early-stop off"]
    report.note()
    report.note(
        f"optimised vs no-opt: {no_opt / default:.3f}x "
        "(paper: optimisations worth 6-12%)"
    )
    report.note(
        f"early stopping alone: {no_early / default:.3f}x at arity 8"
    )
    report.metric("noopt_speedup", no_opt / default, "x", HIGHER)
    publish(report)

    assert default <= no_opt * 1.02  # optimised config wins (2% noise floor)
    assert default <= no_early * 1.02  # early stopping never hurts
