"""F3a(bottom) — Figure 3(a) bottom: VS-kNN vs VMIS-kNN microbenchmark.

The paper compares the similarity computation of VS-kNN, VMIS-kNN-no-opt
and VMIS-kNN on ecom-1m for m in {100, 250, 500, 1000} at k=100, finding
VMIS-kNN 3-5x faster than VS-kNN and the optimisations (early stopping +
octonary heaps) worth 6-12% over the no-opt variant.

The workload uses long posting lists relative to m (the paper's regime:
hundreds of historical sessions per item), since that is exactly where the
index-based candidate generation pays off over materialising and sorting
the full candidate union.

Shapes under test: VMIS-kNN beats VS-kNN at every m; the optimised
variant beats no-opt on aggregate.
"""

from __future__ import annotations

import time

import pytest

from repro.core.index import SessionIndex
from repro.core.vmis import VMISKNN
from repro.core.vsknn import VSKNN
from repro.data.split import temporal_split
from repro.data.synthetic import generate_clickstream

from repro.bench.report import BenchReport, Column, HIGHER

from conftest import publish

MS = [100, 250, 500, 1000]
K = 100


@pytest.fixture(scope="module")
def micro_workload():
    """Heavy-posting-list workload: ~226 sessions per item on average."""
    log = generate_clickstream(
        num_sessions=50_000,
        num_items=1_200,
        num_categories=40,
        mean_session_length=8.0,
        length_tail=0.2,
        days=14,
        seed=2022,
    )
    split = temporal_split(log, test_days=1)
    index = SessionIndex.from_clicks(split.train, max_sessions_per_item=2**62)
    prefixes = []
    for sequence in split.test_sequences().values():
        for cut in range(1, len(sequence)):
            prefixes.append(sequence[:cut])
    return index, prefixes[:150]


def best_of_rounds(models: dict, prefixes, rounds=3) -> dict[str, float]:
    """Interleaved best-of-N per model (µs per call), after warm-up."""
    for model in models.values():
        for prefix in prefixes[:20]:
            model.find_neighbors(prefix)
    best = {name: float("inf") for name in models}
    for _ in range(rounds):
        for name, model in models.items():
            started = time.perf_counter()
            for prefix in prefixes:
                model.find_neighbors(prefix)
            elapsed = (time.perf_counter() - started) / len(prefixes) * 1e6
            best[name] = min(best[name], elapsed)
    return best


@pytest.fixture(scope="module")
def micro_results(micro_workload):
    index, prefixes = micro_workload
    rows = {}
    for m in MS:
        rows[m] = best_of_rounds(
            {
                "VS-kNN": VSKNN(index, m=m, k=K),
                "VMIS-kNN-no-opt": VMISKNN.no_opt(index, m=m, k=K),
                "VMIS-kNN": VMISKNN(index, m=m, k=K),
            },
            prefixes,
        )
    return rows


@pytest.mark.parametrize("m", MS)
def test_fig3a_micro_vmis(benchmark, micro_workload, m):
    index, prefixes = micro_workload
    model = VMISKNN(index, m=m, k=K)
    subset = prefixes[:60]
    benchmark(lambda: [model.find_neighbors(p) for p in subset])


@pytest.mark.parametrize("m", MS)
def test_fig3a_micro_vsknn(benchmark, micro_workload, m):
    index, prefixes = micro_workload
    model = VSKNN(index, m=m, k=K)
    subset = prefixes[:60]
    benchmark(lambda: [model.find_neighbors(p) for p in subset])


def test_fig3a_microbenchmark_summary(benchmark, micro_results):
    benchmark(lambda: None)  # the work happened in the fixture

    report = BenchReport(
        "fig3a_microbenchmark",
        metadata={"k": K, "ms": MS, "regime": "heavy posting lists"},
    )
    report.table(
        Column("m", 6),
        Column("VS-kNN us", 10, fmt=".1f"),
        Column("no-opt us", 10, fmt=".1f"),
        Column("VMIS us", 10, fmt=".1f"),
        Column("speedup", 8, fmt=".2f"),
    )
    for m, row in micro_results.items():
        report.row(
            m,
            row["VS-kNN"],
            row["VMIS-kNN-no-opt"],
            row["VMIS-kNN"],
            row["VS-kNN"] / row["VMIS-kNN"],
        )

    total_vs = sum(row["VS-kNN"] for row in micro_results.values())
    total_noopt = sum(row["VMIS-kNN-no-opt"] for row in micro_results.values())
    total_vmis = sum(row["VMIS-kNN"] for row in micro_results.values())
    report.note()
    report.check(
        "VMIS faster than VS-kNN at every m (paper)",
        all(r["VMIS-kNN"] < r["VS-kNN"] for r in micro_results.values()),
    )
    report.check(
        "optimisations help on aggregate "
        f"(no-opt {total_noopt:.0f}us vs opt {total_vmis:.0f}us, paper: 6-12%)",
        total_vmis <= total_noopt,
    )
    report.note(
        f"aggregate VS-kNN/VMIS speedup: {total_vs / total_vmis:.2f}x "
        "(paper: 3-5x)"
    )
    report.metric("aggregate_speedup", total_vs / total_vmis, "x", HIGHER)
    report.metric("vmis_total_us", total_vmis, "us")
    publish(report)

    assert all(r["VMIS-kNN"] < r["VS-kNN"] for r in micro_results.values())
    assert total_vmis <= total_noopt * 1.05  # allow 5% timing noise


@pytest.mark.parametrize("m", [100, 500])
def test_fig3a_micro_vmis_skewed_traffic(benchmark, skewed_workload, m):
    """VMIS-kNN under the adversarial generator the oracle sweeps.

    Power-law popularity concentrates postings on a few head items and
    bot sessions inflate their lists further — the regime where the
    m-recency truncation does the most work. Uses the same seeded
    generator as the correctness suites (repro.testing.generators).
    """
    index = SessionIndex.from_clicks(
        skewed_workload.clicks(), max_sessions_per_item=2**62
    )
    queries = skewed_workload.query_sessions(60)
    model = VMISKNN(index, m=m, k=K)
    benchmark(lambda: [model.find_neighbors(q) for q in queries])
