"""Shared fixtures and reporting helpers for the benchmark suite.

Every benchmark module reproduces one table or figure of the paper (see
DESIGN.md §4). Besides the pytest-benchmark timings, each module builds
a typed :class:`repro.bench.BenchReport` — structured tables, shape
checks and headline metrics — and hands it to :func:`publish`, which
renders the human-readable ``benchmarks/results/<exp>.txt`` artifact and
its machine-readable ``<exp>.json`` sibling in one step.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.report import BenchReport
from repro.core.index import SessionIndex
from repro.data.clicklog import ClickLog
from repro.data.split import TrainTestSplit, temporal_split
from repro.data.synthetic import generate_clickstream
from repro.testing.generators import WorkloadConfig, WorkloadGenerator

RESULTS_DIR = Path(__file__).parent / "results"


def publish(report: BenchReport) -> None:
    """Render a report, print it, and persist both artifacts."""
    text = report.write(RESULTS_DIR)
    print(f"\n=== {report.name} ===\n{text}\n")


@pytest.fixture(scope="session")
def bench_log() -> ClickLog:
    """The main benchmark workload: ~25k sessions, sparse catalog."""
    return generate_clickstream(
        num_sessions=25_000, num_items=3_000, num_categories=120, days=14, seed=2022
    )


@pytest.fixture(scope="session")
def bench_split(bench_log) -> TrainTestSplit:
    return temporal_split(bench_log, test_days=1)


@pytest.fixture(scope="session")
def bench_index(bench_split) -> SessionIndex:
    """Index over the benchmark training data, untruncated postings."""
    return SessionIndex.from_clicks(bench_split.train, max_sessions_per_item=2**62)


@pytest.fixture(scope="session")
def bench_index_m500(bench_split) -> SessionIndex:
    return SessionIndex.from_clicks(bench_split.train, max_sessions_per_item=500)


@pytest.fixture(scope="session")
def skewed_workload() -> WorkloadGenerator:
    """A seeded adversarial workload shared with the correctness suites.

    Power-law popularity plus bot bursts — the same generator the
    differential oracle sweeps (:mod:`repro.testing.generators`), sized
    up for timing runs, so benchmarks and tests exercise one traffic
    model instead of two drifting ones.
    """
    return WorkloadGenerator(
        WorkloadConfig(
            seed=2022,
            num_sessions=10_000,
            num_items=2_000,
            max_session_length=8,
            popularity_exponent=1.2,
            bot_fraction=0.01,
            bot_session_length=40,
        )
    )


@pytest.fixture(scope="session")
def bench_prefixes(bench_split) -> list[list[int]]:
    """Growing-session prediction inputs from the held-out day."""
    prefixes = []
    for sequence in bench_split.test_sequences().values():
        for cut in range(1, len(sequence)):
            prefixes.append(sequence[:cut])
    return prefixes[:400]
