"""F3b — Figure 3(b): offline load test at more than 1,000 rps.

The paper deploys two pods (three cores each), ramps replayed traffic past
1,000 requests per second and observes: p90 latency below 7 ms, p99.5
below 15 ms, and each pod using roughly one of its three cores.

We reproduce the setup with the discrete-event cluster simulator: the
compute path is the real serving code; the nominal rate ramps from 200 to
1,200 rps (executing a thinned sample so a single process can keep up).

Shapes under test: p90 under the 50 ms SLA with wide margin, p99.5 above
p90 but bounded, and per-pod core usage well below 100% of one core.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.cluster.loadgen import TrafficGenerator, ramp_rate
from repro.cluster.simulation import ClusterSimulator, format_timeline
from repro.core.batch import BatchPredictionEngine
from repro.core.vmis import VMISKNN
from repro.serving.app import ServingCluster
from repro.serving.server import RecommendationRequest
from repro.serving.variants import ServingVariant, session_view

from repro.bench.report import BenchReport, HIGHER

from conftest import publish

SAMPLE_FRACTION = 0.05
DURATION = 120.0
CORES_PER_POD = 3
REPLAY_EPOCHS = 3
BATCH_SIZE = 256


@pytest.fixture(scope="module")
def load_test_result(bench_index_m500, bench_split):
    cluster = ServingCluster.with_index(
        bench_index_m500, num_pods=2, m=500, k=100
    )
    generator = TrafficGenerator(bench_split.test, seed=17)
    simulator = ClusterSimulator(cluster, cores_per_pod=CORES_PER_POD)
    arrivals = generator.generate(
        ramp_rate(200, 1200, DURATION * 0.8),
        duration=DURATION,
        sample_fraction=SAMPLE_FRACTION,
    )
    return simulator.run(
        arrivals, bucket_seconds=30.0, observed_fraction=SAMPLE_FRACTION
    )


def test_fig3b_load_test(benchmark, load_test_result, bench_index_m500):
    cluster = ServingCluster.with_index(bench_index_m500, num_pods=2, m=500, k=100)

    def handle_hundred_requests():
        for i in range(100):
            cluster.handle(RecommendationRequest(f"bench-user-{i % 10}", i % 500))

    benchmark(handle_hundred_requests)

    result = load_test_result
    summary = result.latency.summary_ms()
    peak_rps = max(b.requests_per_second for b in result.timeline)
    peak_usage = max(
        max(b.core_usage_percent.values()) for b in result.timeline
    )
    # §5.2.3: "well-behaved linear scaling (with a gentle slope) of the
    # core usage with the number of requests per second".
    rps_series = [b.requests_per_second for b in result.timeline]
    usage_series = [
        sum(b.core_usage_percent.values()) / max(len(b.core_usage_percent), 1)
        for b in result.timeline
    ]
    usage_rps_correlation = float(np.corrcoef(rps_series, usage_series)[0, 1])
    slope = float(np.polyfit(rps_series, usage_series, 1)[0])

    report = BenchReport(
        "fig3b_load_test",
        metadata={
            "sample_fraction": SAMPLE_FRACTION,
            "duration_s": DURATION,
            "cores_per_pod": CORES_PER_POD,
            "pods": 2,
        },
    )
    report.note(format_timeline(result.timeline))
    report.note()
    report.note(
        f"core usage vs rps: correlation {usage_rps_correlation:.3f}, "
        f"slope {slope * 1000:.1f}% per 1000 rps "
        "(paper: linear with a gentle slope)"
    )
    report.note(
        f"total requests executed: {result.total_requests} "
        f"(sampled at {SAMPLE_FRACTION:.0%} of nominal load)"
    )
    report.note(f"peak nominal load: {peak_rps:.0f} rps (paper: >1000 rps)")
    report.note(
        f"latency p75={summary['p75']:.2f} ms p90={summary['p90']:.2f} ms "
        f"p99.5={summary['p99.5']:.2f} ms (paper: p90 < 7 ms, p99.5 < 15 ms)"
    )
    report.note(f"SLA (50 ms) attainment: {result.sla_attainment:.4f}")
    report.note(
        f"peak per-pod core usage: {peak_usage:.0f}% of {CORES_PER_POD} cores "
        "(paper: about one core of three in use)"
    )
    report.metric("peak_nominal_rps", peak_rps, "rps", HIGHER)
    report.metric("latency_p90_ms", summary["p90"], "ms")
    report.metric("sla_attainment", result.sla_attainment, "", HIGHER)
    publish(report)

    assert peak_rps > 1000
    assert summary["p90"] < 50.0
    assert summary["p90"] <= summary["p99.5"]
    assert result.sla_attainment > 0.99
    assert peak_usage < 100.0 * CORES_PER_POD
    assert usage_rps_correlation > 0.9  # linear scaling of core usage


def test_fig3b_batched_throughput(bench_index_m500, bench_split):
    """The batched arm: sustained hot-session traffic through the engine.

    The production workload is the *serenade-hist* variant — every request
    sees only the last two session items, so sustained traffic repeats the
    same small set of suffixes over and over. We replay the held-out day's
    prediction steps through that view for ``REPLAY_EPOCHS`` passes, once
    serially through ``recommend`` and once through a cached, threaded
    :class:`BatchPredictionEngine`, and compare throughput.

    On this single-core runner the speedup comes from the LRU result cache
    (the report states the hit rate); worker threads additionally overlap
    on multi-core hardware.
    """
    model = VMISKNN(bench_index_m500, m=500, k=100, exclude_current_items=True)

    views: list[list[int]] = []
    for sequence in bench_split.test_sequences().values():
        for cut in range(1, len(sequence)):
            views.append(session_view(sequence[:cut], ServingVariant.HIST))
    views = views[:4000] * REPLAY_EPOCHS
    how_many = 21

    started = time.perf_counter()
    serial_results = [model.recommend(view, how_many=how_many) for view in views]
    serial_seconds = time.perf_counter() - started

    with BatchPredictionEngine(
        model, num_workers=4, cache_size=8192
    ) as engine:
        started = time.perf_counter()
        batched_results: list = []
        for start in range(0, len(views), BATCH_SIZE):
            batched_results.extend(
                engine.recommend_batch(
                    views[start : start + BATCH_SIZE], how_many=how_many
                )
            )
        batched_seconds = time.perf_counter() - started
        cache = engine.cache_info()

    assert batched_results == serial_results  # bit-identical to the loop

    serial_rps = len(views) / serial_seconds
    batched_rps = len(views) / batched_seconds
    speedup = batched_rps / serial_rps
    report = BenchReport(
        "fig3b_batched_throughput",
        metadata={
            "requests": len(views),
            "replay_epochs": REPLAY_EPOCHS,
            "batch_size": BATCH_SIZE,
            "variant": "serenade-hist",
        },
    )
    report.note(
        f"workload: {len(views)} serenade-hist requests "
        f"({len(views) // REPLAY_EPOCHS} steps x {REPLAY_EPOCHS} epochs)"
    )
    report.note(
        f"serial recommend(): {serial_rps:,.0f} rps ({serial_seconds:.2f} s)"
    )
    report.note(
        f"batched engine (4 workers, cache 8192): {batched_rps:,.0f} rps "
        f"({batched_seconds:.2f} s)"
    )
    report.note(
        f"throughput: {speedup:.1f}x serial "
        f"(cache hit rate {cache['hit_rate']:.1%}, "
        f"{cache['hits']}/{cache['hits'] + cache['misses']} lookups; "
        "single-core runner, so the gain is cache-driven)"
    )
    report.metric("serial_rps", serial_rps, "rps", HIGHER)
    report.metric("batched_rps", batched_rps, "rps", HIGHER)
    report.metric("batched_speedup", speedup, "x", HIGHER)
    report.metric("cache_hit_rate", cache["hit_rate"], "", HIGHER)
    publish(report)

    assert speedup >= 2.0
    assert cache["hit_rate"] > 0.5


def test_fig3b_degraded_mode(bench_index_m500):
    """The guardrail arm: a misbehaving primary under the 50 ms SLA.

    Every 10th call into the primary stalls for 200 ms (a deterministic
    stand-in for GC pauses, page-cache misses or a sick replica). Without
    guardrails those stalls land on the caller; with the resilience layer
    the stall is abandoned at the deadline and a fallback answers inside
    the budget. The report compares p90 and SLA attainment, and states
    the degraded-request rate the guardrails traded for it.
    """
    from repro.cluster.metrics import LatencyRecorder
    from repro.serving.resilience import ResiliencePolicy, popularity_from_index

    SLOW_EVERY = 10
    SLOW_SECONDS = 0.2
    REQUESTS = 300

    class StallingVMIS:
        """Deterministically stalls every ``SLOW_EVERY``-th call."""

        def __init__(self):
            self._model = VMISKNN(
                bench_index_m500, m=500, k=100, exclude_current_items=True
            )
            self.calls = 0

        def recommend(self, session_items, how_many=21):
            self.calls += 1
            if self.calls % SLOW_EVERY == 0:
                time.sleep(SLOW_SECONDS)
            return self._model.recommend(session_items, how_many=how_many)

        def recommend_batch(self, sessions, how_many=21):
            return [self.recommend(s, how_many) for s in sessions]

    def run_arm(resilience):
        popularity = popularity_from_index(bench_index_m500)
        cluster = ServingCluster(
            StallingVMIS,
            num_pods=2,
            resilience=resilience,
            fallback_factory=(lambda: popularity) if resilience else None,
            static_items=(
                popularity.recommend([], how_many=50) if resilience else ()
            ),
        )
        latency = LatencyRecorder()
        degraded = 0
        for i in range(REQUESTS):
            started = time.perf_counter()
            response = cluster.handle(
                RecommendationRequest(f"deg-user-{i % 20}", i % 500)
            )
            latency.record(time.perf_counter() - started)
            if response.degraded:
                degraded += 1
        return latency, degraded

    policy = ResiliencePolicy(budget_ms=50.0, fallback_reserve_ms=10.0)
    raw_latency, raw_degraded = run_arm(None)
    guarded_latency, guarded_degraded = run_arm(policy)

    raw_p90 = raw_latency.percentile(90) * 1e3
    guarded_p90 = guarded_latency.percentile(90) * 1e3
    raw_sla = raw_latency.fraction_within(0.050)
    guarded_sla = guarded_latency.fraction_within(0.050)
    raw_max = max(raw_latency.samples) * 1e3
    guarded_max = max(guarded_latency.samples) * 1e3

    report = BenchReport(
        "fig3b_degraded_mode",
        metadata={
            "requests": REQUESTS,
            "slow_every": SLOW_EVERY,
            "slow_seconds": SLOW_SECONDS,
            "budget_ms": 50.0,
        },
    )
    report.note(
        f"workload: {REQUESTS} requests, primary stalls "
        f"{SLOW_SECONDS * 1e3:.0f} ms on 1 in {SLOW_EVERY} calls (10%)"
    )
    report.note(
        f"guardrails off: p90={raw_p90:.2f} ms max={raw_max:.0f} ms "
        f"SLA(50ms) attainment={raw_sla:.3f} degraded=0"
    )
    report.note(
        f"guardrails on (50 ms budget): p90={guarded_p90:.2f} ms "
        f"max={guarded_max:.0f} ms SLA(50ms) attainment={guarded_sla:.3f} "
        f"degraded={guarded_degraded}/{REQUESTS} "
        f"({guarded_degraded / REQUESTS:.1%})"
    )
    report.note(
        "every stalled call was abandoned at its deadline and served by a "
        "fallback stage inside the budget"
    )
    report.metric("guarded_p90_ms", guarded_p90, "ms")
    report.metric("guarded_sla", guarded_sla, "", HIGHER)
    report.metric("degraded_fraction", guarded_degraded / REQUESTS, "")
    publish(report)

    assert raw_sla < 1.0  # the stalls do break the raw path's SLA
    assert raw_max >= SLOW_SECONDS * 1e3
    assert guarded_sla == 1.0  # guardrails: every request inside 50 ms
    assert guarded_max < 50.0
    # The price: roughly the stall rate is served degraded.
    assert guarded_degraded >= REQUESTS // SLOW_EVERY // 2
